"""Luby's randomized maximal independent set algorithm (random-priority variant).

Each phase, every undecided node draws a fresh uniformly random priority and
joins the MIS if its priority beats every undecided neighbour's priority;
neighbours of joiners are removed.  Luby's analysis shows that each phase
removes a constant fraction of the *edges* in expectation, which is the basis
of the paper's observation that Luby's algorithm has edge-averaged complexity
``O(1)`` (under the "at least one endpoint decided" convention) and
node-averaged complexity ``O(1)`` on constant-degree graphs — but, by
Theorem 16, **not** ``O(1)`` node-averaged complexity in general.

Each phase costs two communication rounds:

1. exchange priorities; local maxima commit ``True`` (they join the MIS);
2. joiners announce themselves; their neighbours commit ``False``.

Undecided nodes recognise decided neighbours by their silence in the next
phase, so no extra bookkeeping round is needed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.local.algorithm import Broadcast
from repro.local.coroutine import CoroutineAlgorithm
from repro.local.engine import ArrayAlgorithm, ArrayState, ArrayTopology
from repro.local.node import NodeRuntime

__all__ = ["LubyMIS", "LubyMISArray", "luby_joins"]


class LubyMIS(CoroutineAlgorithm):
    """Luby's MIS with random priorities (commits a boolean per node)."""

    name = "luby-mis"
    randomized = True
    uses_identifiers = True  # only for tie breaking

    def run(self, node: NodeRuntime):
        if node.degree == 0:
            node.commit(True)
            return

        while not node.has_committed:
            priority = (node.rng.random(), node.identifier)
            inbox = yield Broadcast(priority)
            # Neighbours that are still undecided sent a priority this round;
            # decided neighbours are silent and are ignored.  (`>` against the
            # max is `all(...)` over the values, in one C-level reduction.)
            if not inbox or priority > max(inbox.values()):
                node.commit(True)

            joined = node.has_committed
            inbox = yield Broadcast(joined)
            if not node.has_committed and any(inbox.values()):
                node.commit(False)

    def as_array_algorithm(self) -> "LubyMISArray":
        return LubyMISArray()


def luby_joins(
    priorities: np.ndarray,
    undecided: np.ndarray,
    topology: ArrayTopology,
    identifiers: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Mask of undecided nodes whose priority beats every undecided neighbour.

    ``priorities`` is per-vertex (entries of decided vertices are ignored);
    comparisons are lexicographic on ``(priority, identifier)``, exactly the
    coroutine twin's tuple comparison — the identifier only matters on exact
    float ties, which a continuous draw hits with probability zero but a
    test (or an adversarial caller) can force.  An undecided node with no
    undecided neighbour joins unconditionally, like its coroutine twin does
    when its inbox is empty.
    """
    us, vs = topology.edge_us, topology.edge_vs
    ids = topology.identifiers if identifiers is None else identifiers
    live = undecided[us] & undecided[vs]
    lu, lv = us[live], vs[live]
    best = np.full(topology.n, -1.0)
    np.maximum.at(best, lu, priorities[lv])
    np.maximum.at(best, lv, priorities[lu])
    joins = undecided & (priorities > best)
    ties = undecided & (priorities == best)
    if ties.any():
        # Exact priority tie against the neighbourhood maximum: the winner
        # is the larger identifier among the tied (measure-zero for real
        # draws; exercised directly by the unit tests).
        best_id = np.full(topology.n, -1, dtype=np.int64)
        tie_lo = priorities[lu] == priorities[lv]
        tu, tv = lu[tie_lo], lv[tie_lo]
        np.maximum.at(best_id, tu, ids[tv])
        np.maximum.at(best_id, tv, ids[tu])
        joins |= ties & (ids > best_id)
    return joins


class LubyMISArray(ArrayAlgorithm):
    """Array-engine twin of :class:`LubyMIS` (vectorised rounds over CSR).

    Phase ``k`` spans rounds ``2k−1`` (priority exchange) and ``2k``
    (joiner announcement), with exactly the coroutine twin's timeline:

    * round 0: isolated nodes commit ``True``;
    * round ``2k−1``: every node still undecided at phase start draws a
      fresh uniform priority (one ``rng.random`` block, ascending vertex
      order — the engine's documented seed schedule); local maxima over the
      undecided neighbourhood commit ``True`` at round ``2k−1``;
    * round ``2k``: undecided neighbours of round-``2k−1`` joiners commit
      ``False`` at round ``2k``; joiners and removed nodes halt.

    Messages: every phase-``k`` participant broadcasts in both rounds of the
    phase (priorities, then the joined flag), so each executed round adds
    the summed degree of the phase's starting undecided set — the coroutine
    twin's count exactly.
    """

    name = "luby-mis"
    labels_nodes = True

    def init_arrays(
        self, topology: ArrayTopology, rng: np.random.Generator
    ) -> ArrayState:
        state = ArrayState(topology.n, topology.m, nodes=True, edges=False)
        isolated = topology.degrees == 0
        if isolated.any():
            state.node_rounds[isolated] = 0
            state.node_values[isolated] = True
            state.halted |= isolated
        state.extra["undecided"] = ~isolated
        state.extra["phase_joined"] = None
        state.extra["phase_messages"] = 0
        return state

    def step(
        self,
        round_index: int,
        state: ArrayState,
        topology: ArrayTopology,
        rng: np.random.Generator,
    ) -> None:
        extra = state.extra
        undecided = extra["undecided"]
        if round_index % 2 == 1:
            # Priority round (2k−1): one uniform per undecided node,
            # ascending vertex order.
            participants = np.flatnonzero(undecided)
            priorities = np.full(topology.n, -1.0)
            priorities[participants] = rng.random(participants.size)
            joins = luby_joins(priorities, undecided, topology)
            state.node_rounds[joins] = round_index
            state.node_values[joins] = True
            undecided &= ~joins
            extra["phase_joined"] = joins
            extra["phase_messages"] = int(topology.degrees[participants].sum())
            state.messages += extra["phase_messages"]
        else:
            # Announcement round (2k): undecided neighbours of joiners
            # commit False and everyone decided retires.
            joined = extra["phase_joined"]
            us, vs = topology.edge_us, topology.edge_vs
            near_joiner = np.zeros(topology.n, dtype=bool)
            near_joiner[vs[joined[us]]] = True
            near_joiner[us[joined[vs]]] = True
            removed = undecided & near_joiner
            state.node_rounds[removed] = round_index
            # node_values stays False in removed slots.
            undecided &= ~removed
            np.logical_not(undecided, out=state.halted)
            state.messages += extra["phase_messages"]
