"""Luby's randomized maximal independent set algorithm (random-priority variant).

Each phase, every undecided node draws a fresh uniformly random priority and
joins the MIS if its priority beats every undecided neighbour's priority;
neighbours of joiners are removed.  Luby's analysis shows that each phase
removes a constant fraction of the *edges* in expectation, which is the basis
of the paper's observation that Luby's algorithm has edge-averaged complexity
``O(1)`` (under the "at least one endpoint decided" convention) and
node-averaged complexity ``O(1)`` on constant-degree graphs — but, by
Theorem 16, **not** ``O(1)`` node-averaged complexity in general.

Each phase costs two communication rounds:

1. exchange priorities; local maxima commit ``True`` (they join the MIS);
2. joiners announce themselves; their neighbours commit ``False``.

Undecided nodes recognise decided neighbours by their silence in the next
phase, so no extra bookkeeping round is needed.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.local.algorithm import Broadcast
from repro.local.coroutine import CoroutineAlgorithm
from repro.local.engine import (
    ArrayAlgorithm,
    ArrayState,
    ArrayTopology,
    BatchState,
)
from repro.local.faults import RoundFaults
from repro.local.node import NodeRuntime

__all__ = ["LubyMIS", "LubyMISArray", "luby_joins"]


class LubyMIS(CoroutineAlgorithm):
    """Luby's MIS with random priorities (commits a boolean per node)."""

    name = "luby-mis"
    randomized = True
    uses_identifiers = True  # only for tie breaking

    def run(self, node: NodeRuntime):
        if node.degree == 0:
            node.commit(True)
            return

        while not node.has_committed:
            priority = (node.rng.random(), node.identifier)
            inbox = yield Broadcast(priority)
            # Neighbours that are still undecided sent a priority this round;
            # decided neighbours are silent and are ignored.  (`>` against the
            # max is `all(...)` over the values, in one C-level reduction.)
            if not inbox or priority > max(inbox.values()):
                node.commit(True)

            joined = node.has_committed
            inbox = yield Broadcast(joined)
            if not node.has_committed and any(inbox.values()):
                node.commit(False)

    def as_array_algorithm(self) -> "LubyMISArray":
        return LubyMISArray()


def luby_joins(
    priorities: np.ndarray,
    undecided: np.ndarray,
    topology: ArrayTopology,
    identifiers: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Mask of undecided nodes whose priority beats every undecided neighbour.

    ``priorities`` is per-vertex (entries of decided vertices are ignored);
    comparisons are lexicographic on ``(priority, identifier)``, exactly the
    coroutine twin's tuple comparison — the identifier only matters on exact
    float ties, which a continuous draw hits with probability zero but a
    test (or an adversarial caller) can force.  An undecided node with no
    undecided neighbour joins unconditionally, like its coroutine twin does
    when its inbox is empty.
    """
    us, vs = topology.edge_us, topology.edge_vs
    ids = topology.identifiers if identifiers is None else identifiers
    live = undecided[us] & undecided[vs]
    lu, lv = us[live], vs[live]
    best = np.full(topology.n, -1.0)
    np.maximum.at(best, lu, priorities[lv])
    np.maximum.at(best, lv, priorities[lu])
    joins = undecided & (priorities > best)
    ties = undecided & (priorities == best)
    if ties.any():
        # Exact priority tie against the neighbourhood maximum: the winner
        # is the larger identifier among the tied (measure-zero for real
        # draws; exercised directly by the unit tests).
        best_id = np.full(topology.n, -1, dtype=np.int64)
        tie_lo = priorities[lu] == priorities[lv]
        tu, tv = lu[tie_lo], lv[tie_lo]
        np.maximum.at(best_id, tu, ids[tv])
        np.maximum.at(best_id, tv, ids[tu])
        joins |= ties & (ids > best_id)
    return joins


def _luby_joins_masked(
    priorities: np.ndarray,
    participants: np.ndarray,
    topology: ArrayTopology,
    deliver_uv: np.ndarray,
    deliver_vu: np.ndarray,
    identifiers: Optional[np.ndarray] = None,
) -> np.ndarray:
    """:func:`luby_joins` under per-direction delivery masks (fault mode).

    ``participants`` is the mask of alive, still-undecided nodes;
    ``deliver_uv`` / ``deliver_vu`` say which directed messages of the
    priority round arrive.  A participant beats only the priorities it
    *received* — exactly the coroutine semantics, where a dropped or
    crashed neighbour is as silent as a decided one (a participant whose
    whole inbox was dropped joins unconditionally).
    """
    us, vs = topology.edge_us, topology.edge_vs
    ids = topology.identifiers if identifiers is None else identifiers
    both = participants[us] & participants[vs]
    live_uv = both & deliver_uv
    live_vu = both & deliver_vu
    best = np.full(topology.n, -1.0)
    np.maximum.at(best, vs[live_uv], priorities[us[live_uv]])
    np.maximum.at(best, us[live_vu], priorities[vs[live_vu]])
    joins = participants & (priorities > best)
    ties = participants & (priorities == best)
    if ties.any():
        best_id = np.full(topology.n, -1, dtype=np.int64)
        tie = priorities[us] == priorities[vs]
        e_uv = live_uv & tie
        e_vu = live_vu & tie
        np.maximum.at(best_id, vs[e_uv], ids[us[e_uv]])
        np.maximum.at(best_id, us[e_vu], ids[vs[e_vu]])
        joins |= ties & (ids > best_id)
    return joins


# Flat batch indices are always int64: numpy's advanced-indexing fast path
# only fires for intp index arrays, and int32 gathers measure ~3× slower.


class LubyMISArray(ArrayAlgorithm):
    """Array-engine twin of :class:`LubyMIS` (vectorised rounds over CSR).

    Phase ``k`` spans rounds ``2k−1`` (priority exchange) and ``2k``
    (joiner announcement), with exactly the coroutine twin's timeline:

    * round 0: isolated nodes commit ``True``;
    * round ``2k−1``: every node still undecided at phase start draws a
      fresh uniform priority (one ``rng.random`` block, ascending vertex
      order — the engine's documented seed schedule); local maxima over the
      undecided neighbourhood commit ``True`` at round ``2k−1``;
    * round ``2k``: undecided neighbours of round-``2k−1`` joiners commit
      ``False`` at round ``2k``; joiners and removed nodes halt.

    Messages: every phase-``k`` participant broadcasts in both rounds of the
    phase (priorities, then the joined flag), so each executed round adds
    the summed degree of the phase's starting undecided set — the coroutine
    twin's count exactly.

    Fault mode (``faults`` is a :class:`~repro.local.faults.RoundFaults`):
    only alive undecided nodes participate — the priority block is drawn
    over them in ascending vertex order — and a priority / announcement only
    counts at its receiver if the schedule delivered that direction; a
    crashed or silenced neighbour looks exactly like a decided one, as in
    the coroutine.  A joiner that crashes at the announcement round never
    announces, so its neighbours stay undecided.  Message counts charge the
    degrees of the alive senders of each round — the coroutine count
    exactly, drops included (drops lose deliveries, not sends).

    Delay mode consumes the round view's ``late_uv`` / ``late_vu`` carry
    masks with the coroutine's one-round-buffer semantics: a stale message
    is *visible* iff its sender actually broadcast in the previous round and
    no fresh same-direction delivery overwrites it this round.  Because the
    phases alternate message types, a visible straggler always crosses
    phases, exactly as in the coroutine:

    * a stale **priority** arriving at an announcement round is a truthy
      payload in the receiver's flag inbox — an undecided alive receiver
      spuriously commits ``False``;
    * a stale **announcement flag** arriving at a priority round makes the
      receiver's ``max``-over-inbox comparison heterogeneous — the
      coroutine raises ``TypeError``, and the array twin raises the same
      type for the same structural condition (a visible cross-phase
      straggler at a participant).  The *seed* at which this fires differs
      between engines (different RNG schedules reach different undecided
      sets), which is why the differential tests pin fault-*event* parity,
      not outcome parity, under delays.
    """

    name = "luby-mis"
    labels_nodes = True
    supports_faults = True
    supports_batch = True

    def init_arrays(
        self, topology: ArrayTopology, rng: np.random.Generator
    ) -> ArrayState:
        state = ArrayState(topology.n, topology.m, nodes=True, edges=False)
        isolated = topology.degrees == 0
        if isolated.any():
            state.node_rounds[isolated] = 0
            state.node_values[isolated] = True
            state.halted |= isolated
        state.extra["undecided"] = ~isolated
        state.extra["phase_joined"] = None
        state.extra["phase_participants"] = None
        state.extra["phase_messages"] = 0
        state.extra["prev_senders"] = None
        return state

    # Scratch buffers for the batched kernel, cached on the algorithm
    # instance and reused across the chunks of a `run_batch` call (and
    # across calls on the same topology/chunk shape).  Steady-state
    # stepping then allocates nothing: every multi-megabyte temporary
    # would otherwise cross the allocator's mmap threshold and be
    # mapped, faulted and zeroed afresh on every round.
    _scratch_for: Optional[Tuple[ArrayTopology, int]] = None
    _scratch: Optional[dict] = None

    def _batch_scratch(self, topology: ArrayTopology, trials: int) -> dict:
        if self._scratch_for != (topology, trials):
            n, m = topology.n, topology.m
            flat_m = trials * m
            flat_n = trials * n
            # The initial worklist: flat block-diagonal endpoint indices
            # (``t·n + u`` / ``t·n + v``), one entry per (trial, edge)
            # pair, trial-major with ascending edge order inside each
            # trial.  Edge endpoints are never isolated, so every edge is
            # live at phase 1.  Shared read-only across chunks;
            # compression writes into the double-buffered slots below.
            base = (np.arange(trials, dtype=np.int64) * n)[:, None]
            wl0_fu = (base + topology.edge_us).ravel()
            wl0_fv = (base + topology.edge_vs).ravel()
            wl0_fu.setflags(write=False)
            wl0_fv.setflags(write=False)
            self._scratch = {
                "wl0_fu": wl0_fu,
                "wl0_fv": wl0_fv,
                "wlA_fu": np.empty(flat_m, dtype=np.int64),
                "wlA_fv": np.empty(flat_m, dtype=np.int64),
                "wlB_fu": np.empty(flat_m, dtype=np.int64),
                "wlB_fv": np.empty(flat_m, dtype=np.int64),
                "pu": np.empty(flat_m),
                "pv": np.empty(flat_m),
                "gu": np.empty(flat_m, dtype=bool),
                "gv": np.empty(flat_m, dtype=bool),
                "best": np.empty(flat_n),
                "near": np.empty(flat_n, dtype=bool),
                "joins": np.empty((trials, n), dtype=bool),
                "ties": np.empty((trials, n), dtype=bool),
                "priorities": np.empty((trials, n)),
                "undecided": np.empty((trials, n), dtype=bool),
            }
            self._scratch_for = (topology, trials)
        return self._scratch

    def init_batch(
        self, topology: ArrayTopology, rngs: Sequence[np.random.Generator]
    ) -> BatchState:
        # Round 0 draws no randomness, so the batched init is the
        # single-trial init broadcast over the trial axis.
        trials = len(rngs)
        n = topology.n
        batch = BatchState(trials, n, topology.m, nodes=True, edges=False)
        isolated = topology.degrees == 0
        if isolated.any():
            batch.node_rounds[:, isolated] = 0
            batch.node_values[:, isolated] = True
            batch.halted[:, isolated] = True
        scratch = self._batch_scratch(topology, trials)
        undecided = scratch["undecided"]
        undecided[:] = ~isolated
        batch.extra["undecided"] = undecided
        # Priorities persist across rounds with the invariant that decided
        # (or never-participating) slots hold −1.0: a decided neighbour then
        # contributes the neutral element to every max-reduction, which is
        # exactly the coroutine's "decided neighbours are silent" rule and
        # lets the worklist kernel skip explicit liveness masks.
        priorities = scratch["priorities"]
        priorities.fill(-1.0)
        batch.extra["priorities"] = priorities
        batch.extra["phase_joined"] = None
        batch.extra["phase_messages"] = np.zeros(trials, dtype=np.int64)
        # Summed degree of each trial's undecided set, maintained
        # incrementally as nodes decide: the per-phase message count
        # without a per-trial gather-and-sum in the RNG loop.  (A
        # completed trial's sum has decayed to zero, so it accrues
        # nothing — the single-trial early-exit semantics.)
        batch.extra["live_degsum"] = np.full(
            trials, int(topology.degrees.sum()), dtype=np.int64
        )
        # The round kernels run over a compressed worklist, one entry per
        # still-live (trial, edge) pair, re-compressed each announcement
        # round so kernel work tracks the shrinking live sets.
        batch.extra["wl_fu"] = scratch["wl0_fu"]
        batch.extra["wl_fv"] = scratch["wl0_fv"]
        batch.extra["wl_slot"] = "A"
        batch.extra["scratch"] = scratch
        return batch

    def batch_complete(self, batch: BatchState) -> np.ndarray:
        # Every undecided node has degree ≥ 1 (isolated nodes commit at
        # init), so a zero live-degree sum means the undecided set is
        # empty, i.e. every node committed — O(trials), vs. the engine's
        # generic (trials, n) reduction.
        return batch.extra["live_degsum"] == 0

    def step_batch(
        self,
        round_index: int,
        batch: BatchState,
        topology: ArrayTopology,
        rngs: Sequence[np.random.Generator],
        active: np.ndarray,
    ) -> None:
        extra = batch.extra
        scratch = extra["scratch"]
        undecided = extra["undecided"]
        undec_flat = undecided.ravel()
        trials, n = batch.trials, topology.n
        priorities = extra["priorities"]
        pri_flat = priorities.ravel()
        wl_fu = extra["wl_fu"]
        wl_fv = extra["wl_fv"]
        live_count = wl_fu.size
        degrees = topology.degrees
        if round_index % 2 == 1:
            # Priority round (2k−1).  Each *active* trial draws its own
            # uniform block from its own generator — one per still-undecided
            # vertex, ascending order — exactly the single-trial schedule;
            # inactive trials consume nothing.  Decided slots hold −1.0 (the
            # neutral element), so neighbourhood maxima need no liveness
            # masks anywhere in the kernel.
            phase_messages = extra["phase_messages"]
            np.copyto(phase_messages, extra["live_degsum"])
            for t in np.flatnonzero(active):
                participants = np.flatnonzero(undecided[t])
                priorities[t, participants] = rngs[t].random(participants.size)
            # Scatter-max over the compressed worklist.  The announcement
            # round already re-compressed it to exactly this phase's live
            # edges (both endpoints still undecided), so every entry
            # carries two fresh draws and no liveness pass is needed; a
            # full reset of the scratch block is a streaming fill, far
            # cheaper than tracking stale slots.
            best = scratch["best"]
            best.fill(-1.0)
            pu = np.take(pri_flat, wl_fu, out=scratch["pu"][:live_count], mode="clip")
            pv = np.take(pri_flat, wl_fv, out=scratch["pv"][:live_count], mode="clip")
            np.maximum.at(best, wl_fu, pv)
            np.maximum.at(best, wl_fv, pu)
            best_rows = best.reshape(trials, n)
            joins = scratch["joins"]
            np.greater(priorities, best_rows, out=joins)
            joins &= undecided
            ties = scratch["ties"]
            np.equal(priorities, best_rows, out=ties)
            ties &= undecided
            if ties.any():
                # Exact priority tie against the neighbourhood maximum: the
                # winner is the larger identifier among the tied
                # (measure-zero for real draws; exercised by unit tests).
                ids = topology.identifiers
                best_id = np.full(trials * n, -1, dtype=np.int64)
                tie_lo = pu == pv
                tfu, tfv = wl_fu[tie_lo], wl_fv[tie_lo]
                np.maximum.at(best_id, tfu, ids[tfv % n])
                np.maximum.at(best_id, tfv, ids[tfu % n])
                joins |= ties & (ids[None, :] > best_id.reshape(trials, n))
            # Stamp through flat indices: one scan of the mask plus
            # join-count-sized scatters beats four full-width boolean-mask
            # assignments.
            jidx = np.flatnonzero(joins)
            batch.node_rounds.ravel()[jidx] = round_index
            batch.node_values.ravel()[jidx] = True
            undec_flat[jidx] = False
            pri_flat[jidx] = -1.0
            extra["live_degsum"] -= np.bincount(
                jidx // n, weights=degrees[jidx % n], minlength=trials
            ).astype(np.int64)
            extra["phase_joined"] = joins
            batch.messages += phase_messages
        else:
            # Announcement round (2k).  A trial that completed at round
            # 2k−1 exited the single-trial loop before this round: its row
            # must not execute it — no removals (self-gated: nothing is
            # undecided) and, crucially, no second phase_messages accrual.
            # The worklist still holds the phase's live edges (a joiner was
            # undecided at phase start), so joiner neighbourhoods are two
            # gathers plus two scatter-ORs; an edge to an already-decided
            # neighbour is absent but irrelevant (removal is gated on
            # ``undecided``).
            joined_flat = extra["phase_joined"].ravel()
            gu = np.take(joined_flat, wl_fu, out=scratch["gu"][:live_count], mode="clip")
            gv = np.take(joined_flat, wl_fv, out=scratch["gv"][:live_count], mode="clip")
            near = scratch["near"]
            near.fill(False)
            # Joiner-adjacency scatter via compress-then-assign (the idle
            # worklist buffers serve as index scratch; they are rewritten
            # by the compression below only after these reads are done) —
            # `logical_or.at` computes the same thing an order of
            # magnitude slower.
            slot = extra["wl_slot"]
            idle_fu = scratch["wl%s_fu" % slot]
            idle_fv = scratch["wl%s_fv" % slot]
            k = int(np.count_nonzero(gu))
            near[np.compress(gu, wl_fv, out=idle_fu[:k])] = True
            k = int(np.count_nonzero(gv))
            near[np.compress(gv, wl_fu, out=idle_fv[:k])] = True
            np.logical_and(near, undec_flat, out=near)
            ridx = np.flatnonzero(near)
            batch.node_rounds.ravel()[ridx] = round_index
            # node_values stays False in removed slots.
            undec_flat[ridx] = False
            pri_flat[ridx] = -1.0
            extra["live_degsum"] -= np.bincount(
                ridx // n, weights=degrees[ridx % n], minlength=trials
            ).astype(np.int64)
            # Full-width halt refresh: completed rows are all-decided and
            # unchanged, so overwriting every row is the same result
            # without the fancy-indexed row copies.
            np.logical_not(undecided, out=batch.halted)
            batch.messages[active] += extra["phase_messages"][active]
            # Re-compress the worklist against the post-removal undecided
            # sets: entries that survive are exactly the next phase's live
            # edges, so the priority round runs gather-scatter only, with
            # no liveness bookkeeping of its own.  (Cheap here — two
            # byte-sized gathers — where the priority round would need
            # float passes.)  Output goes to the idle double-buffer slot;
            # the live set only shrinks, so the buffers never overflow.
            lu = np.take(undec_flat, wl_fu, out=scratch["gu"][:live_count], mode="clip")
            lv = np.take(undec_flat, wl_fv, out=scratch["gv"][:live_count], mode="clip")
            lu &= lv
            kept = int(np.count_nonzero(lu))
            if kept != live_count:
                out_fu = idle_fu
                out_fv = idle_fv
                np.compress(lu, wl_fu, out=out_fu[:kept])
                np.compress(lu, wl_fv, out=out_fv[:kept])
                extra["wl_fu"] = out_fu[:kept]
                extra["wl_fv"] = out_fv[:kept]
                extra["wl_slot"] = "B" if slot == "A" else "A"

    @staticmethod
    def _visible_stale(
        faults: RoundFaults,
        topology: ArrayTopology,
        prev_senders: Optional[np.ndarray],
        senders_now: np.ndarray,
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Directed masks of last round's delayed messages visible this round.

        Visible along ``u → v`` iff the schedule delayed that direction last
        round, ``u`` actually broadcast then, and no fresh ``u → v``
        delivery overwrites the stale payload now (the coroutine's
        ``delayed_messages``-before-fresh-sends order).
        """
        if faults.late_uv is None or prev_senders is None:
            return None
        us, vs = topology.edge_us, topology.edge_vs
        stale_uv = (
            faults.late_uv
            & prev_senders[us]
            & ~(senders_now[us] & faults.deliver_uv)
        )
        stale_vu = (
            faults.late_vu
            & prev_senders[vs]
            & ~(senders_now[vs] & faults.deliver_vu)
        )
        if not stale_uv.any() and not stale_vu.any():
            return None
        return stale_uv, stale_vu

    def step(
        self,
        round_index: int,
        state: ArrayState,
        topology: ArrayTopology,
        rng: np.random.Generator,
        faults: Optional[RoundFaults] = None,
    ) -> None:
        extra = state.extra
        undecided = extra["undecided"]
        if round_index % 2 == 1:
            # Priority round (2k−1): one uniform per (alive) undecided node,
            # ascending vertex order.
            if faults is None:
                participants_mask = undecided
            else:
                participants_mask = undecided & faults.alive
                stale = self._visible_stale(
                    faults, topology, extra["prev_senders"], participants_mask
                )
                if stale is not None:
                    stale_uv, stale_vu = stale
                    us, vs = topology.edge_us, topology.edge_vs
                    struck = np.zeros(topology.n, dtype=bool)
                    struck[vs[stale_uv]] = True
                    struck[us[stale_vu]] = True
                    if (struck & participants_mask).any():
                        # A stale announcement flag in a priority inbox: the
                        # coroutine's max-over-inbox comparison mixes bool
                        # and tuple payloads and raises — same type here.
                        raise TypeError(
                            "'>' not supported between cross-phase straggler "
                            "payloads: a delayed announcement flag reached a "
                            "priority-round inbox"
                        )
            participants = np.flatnonzero(participants_mask)
            priorities = np.full(topology.n, -1.0)
            priorities[participants] = rng.random(participants.size)
            if faults is None:
                joins = luby_joins(priorities, undecided, topology)
            else:
                joins = _luby_joins_masked(
                    priorities,
                    participants_mask,
                    topology,
                    faults.deliver_uv,
                    faults.deliver_vu,
                )
            state.node_rounds[joins] = round_index
            state.node_values[joins] = True
            undecided &= ~joins
            extra["phase_joined"] = joins
            extra["phase_participants"] = participants_mask if faults is not None else None
            extra["phase_messages"] = int(topology.degrees[participants].sum())
            extra["prev_senders"] = participants_mask if faults is not None else None
            state.messages += extra["phase_messages"]
        else:
            # Announcement round (2k): undecided neighbours of joiners
            # commit False and everyone decided retires.
            joined = extra["phase_joined"]
            us, vs = topology.edge_us, topology.edge_vs
            if faults is None:
                near_joiner = np.zeros(topology.n, dtype=bool)
                near_joiner[vs[joined[us]]] = True
                near_joiner[us[joined[vs]]] = True
                removed = undecided & near_joiner
                state.node_rounds[removed] = round_index
                # node_values stays False in removed slots.
                undecided &= ~removed
                np.logical_not(undecided, out=state.halted)
                state.messages += extra["phase_messages"]
            else:
                # A joiner crashed at this round never announces; delivery
                # masks silence the dropped directions.
                alive = faults.alive
                announcer = joined & alive
                # Senders this round: the phase's participants (joiners and
                # all) that are still alive — they all broadcast the flag.
                senders = extra["phase_participants"] & alive
                heard = np.zeros(topology.n, dtype=bool)
                heard[vs[announcer[us] & faults.deliver_uv]] = True
                heard[us[announcer[vs] & faults.deliver_vu]] = True
                stale = self._visible_stale(
                    faults, topology, extra["prev_senders"], senders
                )
                if stale is not None:
                    # A stale priority tuple is truthy in the flag inbox, so
                    # its receiver "hears a joiner" whether or not one is
                    # adjacent — the coroutine's spurious-False-commit path.
                    stale_uv, stale_vu = stale
                    heard[vs[stale_uv]] = True
                    heard[us[stale_vu]] = True
                removed = undecided & alive & heard
                state.node_rounds[removed] = round_index
                undecided &= ~removed
                np.logical_not(undecided, out=state.halted)
                extra["prev_senders"] = senders
                state.messages += int(topology.degrees[senders].sum())
