"""Luby's randomized maximal independent set algorithm (random-priority variant).

Each phase, every undecided node draws a fresh uniformly random priority and
joins the MIS if its priority beats every undecided neighbour's priority;
neighbours of joiners are removed.  Luby's analysis shows that each phase
removes a constant fraction of the *edges* in expectation, which is the basis
of the paper's observation that Luby's algorithm has edge-averaged complexity
``O(1)`` (under the "at least one endpoint decided" convention) and
node-averaged complexity ``O(1)`` on constant-degree graphs — but, by
Theorem 16, **not** ``O(1)`` node-averaged complexity in general.

Each phase costs two communication rounds:

1. exchange priorities; local maxima commit ``True`` (they join the MIS);
2. joiners announce themselves; their neighbours commit ``False``.

Undecided nodes recognise decided neighbours by their silence in the next
phase, so no extra bookkeeping round is needed.
"""

from __future__ import annotations

from repro.local.algorithm import Broadcast
from repro.local.coroutine import CoroutineAlgorithm
from repro.local.node import NodeRuntime

__all__ = ["LubyMIS"]


class LubyMIS(CoroutineAlgorithm):
    """Luby's MIS with random priorities (commits a boolean per node)."""

    name = "luby-mis"
    randomized = True
    uses_identifiers = True  # only for tie breaking

    def run(self, node: NodeRuntime):
        if node.degree == 0:
            node.commit(True)
            return

        while not node.has_committed:
            priority = (node.rng.random(), node.identifier)
            inbox = yield Broadcast(priority)
            # Neighbours that are still undecided sent a priority this round;
            # decided neighbours are silent and are ignored.  (`>` against the
            # max is `all(...)` over the values, in one C-level reduction.)
            if not inbox or priority > max(inbox.values()):
                node.commit(True)

            joined = node.has_committed
            inbox = yield Broadcast(joined)
            if not node.has_committed and any(inbox.values()):
                node.commit(False)
