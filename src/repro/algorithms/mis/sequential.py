"""Sequential (centralised) reference constructions for MIS and related sets.

These are not distributed algorithms; they provide ground-truth solutions and
size baselines for tests and benchmarks (e.g. the independence numbers used
when analysing the lower-bound clusters, or a quick check that a distributed
MIS has a sensible size).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Set

import networkx as nx

__all__ = [
    "sequential_greedy_mis",
    "random_order_mis",
    "greedy_independent_set_lower_bound",
    "exact_maximum_independent_set",
]


def sequential_greedy_mis(graph: nx.Graph, order: Optional[Sequence[int]] = None) -> Set[int]:
    """Greedy MIS scanning nodes in the given order (default: sorted order)."""
    if order is None:
        order = sorted(graph.nodes())
    selected: Set[int] = set()
    blocked: Set[int] = set()
    for v in order:
        if v in blocked or v in selected:
            continue
        selected.add(v)
        blocked.update(graph.neighbors(v))
    return selected


def random_order_mis(graph: nx.Graph, seed: int = 0) -> Set[int]:
    """Greedy MIS over a uniformly random node order."""
    order: List[int] = list(graph.nodes())
    random.Random(seed).shuffle(order)
    return sequential_greedy_mis(graph, order)


def greedy_independent_set_lower_bound(graph: nx.Graph, attempts: int = 8, seed: int = 0) -> int:
    """A lower bound on the independence number via repeated greedy runs."""
    best = 0
    for i in range(max(1, attempts)):
        best = max(best, len(random_order_mis(graph, seed=seed + i)))
    # Minimum-degree-first greedy is usually the strongest single heuristic.
    order = sorted(graph.nodes(), key=lambda v: graph.degree(v))
    best = max(best, len(sequential_greedy_mis(graph, order)))
    return best


def exact_maximum_independent_set(graph: nx.Graph, size_limit: int = 30) -> Set[int]:
    """Exact maximum independent set by branch and bound (small graphs only).

    Raises ``ValueError`` if the graph has more than ``size_limit`` nodes, to
    prevent accidental exponential blow-ups; the lower-bound analysis only
    needs exact independence numbers of small cluster subgraphs.
    """
    if graph.number_of_nodes() > size_limit:
        raise ValueError(
            f"exact independent set limited to {size_limit} nodes "
            f"(got {graph.number_of_nodes()}); use the greedy bound instead"
        )
    vertices = list(graph.nodes())
    adjacency = {v: set(graph.neighbors(v)) for v in vertices}
    best: Set[int] = set()

    def branch(candidates: List[int], current: Set[int]) -> None:
        nonlocal best
        if len(current) + len(candidates) <= len(best):
            return
        if not candidates:
            if len(current) > len(best):
                best = set(current)
            return
        # Branch on the highest-degree candidate: either exclude it or include it.
        v = max(candidates, key=lambda u: len(adjacency[u]))
        rest = [u for u in candidates if u != v]
        branch(rest, current)
        allowed = [u for u in rest if u not in adjacency[v]]
        branch(allowed, current | {v})

    branch(vertices, set())
    return best
