"""Degree-adaptive randomized MIS (Ghaffari's algorithm, SODA'16 style).

Every undecided node maintains a desire level ``p_v`` (initially 1/2).  In
each phase it marks itself with probability ``p_v``; a marked node with no
marked undecided neighbour joins the MIS.  The desire level is then halved if
the neighbourhood is "heavy" (``Σ_u p_u ≥ 2``) and doubled (capped at 1/2)
otherwise.  Ghaffari's analysis shows that each node is decided after
``O(log deg)`` phases with probability ``1 - 1/poly(deg)``, which is the
mechanism behind the ``O(log Δ / log log Δ)`` node-averaged upper bound the
paper attributes to [BYCHGS17]-style algorithms: most nodes decide quickly,
and the node-averaged complexity of MIS is therefore
``O(log Δ / log log Δ)`` — matching the lower bound of Theorem 16 for small Δ.

Two communication rounds per phase (mark exchange, join announcement).
"""

from __future__ import annotations

from repro.local.coroutine import CoroutineAlgorithm
from repro.local.node import NodeRuntime

__all__ = ["GhaffariMIS"]


class GhaffariMIS(CoroutineAlgorithm):
    """Randomized MIS with dynamically adapted marking probabilities."""

    name = "ghaffari-mis"
    randomized = True
    uses_identifiers = False

    def __init__(self, initial_desire: float = 0.5) -> None:
        if not 0 < initial_desire <= 0.5:
            raise ValueError("initial_desire must lie in (0, 1/2]")
        self.initial_desire = initial_desire

    def run(self, node: NodeRuntime):
        if node.degree == 0:
            node.commit(True)
            return

        desire = self.initial_desire
        while not node.has_committed:
            marked = node.rng.random() < desire
            inbox = yield {u: (desire, marked) for u in node.neighbors}
            neighbor_desire = sum(p for p, _ in inbox.values())
            neighbor_marked = any(m for _, m in inbox.values())
            if marked and not neighbor_marked:
                node.commit(True)

            joined = node.has_committed
            inbox = yield {u: joined for u in node.neighbors}
            if not node.has_committed and any(inbox.values()):
                node.commit(False)
            if node.has_committed:
                return

            if neighbor_desire >= 2.0:
                desire = desire / 2.0
            else:
                desire = min(2.0 * desire, 0.5)
