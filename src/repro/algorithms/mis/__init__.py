"""Maximal independent set algorithms."""

from repro.algorithms.mis.ghaffari import GhaffariMIS
from repro.algorithms.mis.local_minimum import LocalMinimumMIS
from repro.algorithms.mis.luby import LubyMIS
from repro.algorithms.mis.sequential import (
    exact_maximum_independent_set,
    greedy_independent_set_lower_bound,
    random_order_mis,
    sequential_greedy_mis,
)

__all__ = [
    "LubyMIS",
    "GhaffariMIS",
    "LocalMinimumMIS",
    "sequential_greedy_mis",
    "random_order_mis",
    "greedy_independent_set_lower_bound",
    "exact_maximum_independent_set",
]
