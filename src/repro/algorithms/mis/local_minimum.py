"""Deterministic MIS by iterated local minima of identifiers.

In every phase each undecided node whose identifier is smaller than the
identifiers of all its undecided neighbours joins the MIS, and its neighbours
drop out.  This is the textbook deterministic greedy MIS:

* it is always correct (the joined set is independent and maximal),
* its worst-case round complexity can be Θ(n) (an increasing identifier path
  decides one node per phase), which is why the paper's deterministic results
  rely on colour-reduction machinery instead,
* with uniformly random identifiers it decides most nodes within a few
  phases, making it a convenient deterministic *post-processing* step for
  the small residual instances that appear at the end of Theorem 3's ruling
  set algorithm (our stand-in for the ``O(Δ + log* n)`` MIS of [BEK15]).

Two communication rounds per phase (identifier exchange, join announcement).
"""

from __future__ import annotations

from repro.local.coroutine import CoroutineAlgorithm
from repro.local.node import NodeRuntime

__all__ = ["LocalMinimumMIS"]


class LocalMinimumMIS(CoroutineAlgorithm):
    """Deterministic MIS: local identifier minima join, neighbours retire."""

    name = "local-minimum-mis"
    randomized = False
    uses_identifiers = True

    def run(self, node: NodeRuntime):
        if node.degree == 0:
            node.commit(True)
            return

        while not node.has_committed:
            inbox = yield {u: node.identifier for u in node.neighbors}
            if all(node.identifier < other for other in inbox.values()):
                node.commit(True)

            joined = node.has_committed
            inbox = yield {u: joined for u in node.neighbors}
            if not node.has_committed and any(inbox.values()):
                node.commit(False)
