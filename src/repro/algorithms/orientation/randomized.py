"""Randomized sinkless orientation with node-averaged complexity O(1).

The paper observes (Section 3.3) that the randomized sinkless-orientation
algorithm of Ghaffari and Su already has node-averaged complexity O(1): each
node secures an out-edge with constant probability per attempt.  We implement
that property with the request/grant consent protocol of
:mod:`repro.algorithms.orientation.protocol` (see DESIGN.md, substitutions):
an unsatisfied node requests a uniformly random unoriented incident edge each
phase, and requests are granted whenever the granting endpoint can afford to
lose the edge.  On minimum-degree-3 graphs a request is granted with constant
probability, so the expected number of two-round phases until a node is
satisfied is O(1) — the node-averaged complexity of the algorithm is O(1)
while its worst case is O(log n)-flavoured.

Nodes of degree below the minimum degree never need an outgoing edge (the
problem is posed for minimum degree ≥ 3) and behave as already satisfied.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.algorithms.orientation.protocol import orientation_phases
from repro.local.coroutine import CoroutineAlgorithm
from repro.local.node import NodeRuntime

__all__ = ["RandomizedSinklessOrientation"]


class RandomizedSinklessOrientation(CoroutineAlgorithm):
    """Randomized sinkless orientation; edge outputs are the head vertices."""

    name = "randomized-sinkless-orientation"
    randomized = True
    uses_identifiers = True  # tie breaking and leftover-edge orientation

    def __init__(self, min_degree: int = 3) -> None:
        """Nodes of degree below ``min_degree`` are exempt from needing an out-edge."""
        if min_degree < 1:
            raise ValueError("min_degree must be positive")
        self.min_degree = min_degree

    def run(self, node: NodeRuntime):
        unoriented: Set[int] = set(node.neighbors)
        if not unoriented:
            return
        secured = node.degree < self.min_degree
        yield from orientation_phases(node, unoriented, secured, self._choose_request)

    @staticmethod
    def _choose_request(
        node: NodeRuntime, unoriented: Set[int], neighbor_secured: Dict[int, bool]
    ) -> int:
        """Request a uniformly random unoriented incident edge."""
        choices = sorted(unoriented)
        return choices[node.rng.randrange(len(choices))]
