"""Sinkless orientation algorithms (Theorem 6 and the randomized baseline)."""

from repro.algorithms.orientation.deterministic import DeterministicSinklessOrientation
from repro.algorithms.orientation.protocol import orientation_phases
from repro.algorithms.orientation.randomized import RandomizedSinklessOrientation

__all__ = [
    "RandomizedSinklessOrientation",
    "DeterministicSinklessOrientation",
    "orientation_phases",
]
