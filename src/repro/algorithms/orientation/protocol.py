"""Shared request/grant protocol for sinkless-orientation algorithms.

Both the randomized and the deterministic sinkless-orientation algorithms in
this package secure out-edges through the same two-round *consent* protocol;
only the policy an unsatisfied node uses to choose which edge to request
differs.  The protocol is designed so that an edge is only ever oriented
towards a node that can afford it, which keeps every execution sink-free.

**Phase structure** (two rounds per phase):

Round 1 (requests).  Every node sends, over each of its unoriented edges, its
status ``(satisfied?, #unoriented, identifier, requested?, wave?, stream)``
where ``requested`` marks the single edge an unsatisfied node asks to have
oriented away from itself.

Round 2 (answers).  Every node answers the requests it received and then both
endpoints of every edge evaluate the same deterministic function of the
exchanged messages, so they always commit the same orientation:

* a satisfied node (one with an out-edge, or exempt by degree) grants every
  request;
* an unsatisfied node grants greedily, smallest requester identifier first,
  but always keeps a safety margin: two unoriented edges, or one if that one
  leads to a satisfied neighbour (such an edge is a guaranteed fallback,
  because satisfied neighbours grant everything);
* mutual requests on the same edge are conceded by the endpoint with the
  larger ``(count, identifier)``, within the same safety margin;
* granted request → the edge points from the requester to the granter;
* an unoriented edge whose endpoints are both satisfied and neither of which
  requested it points to the smaller-identifier endpoint, so every edge is
  eventually oriented.

**Ring resolution.**  The only configuration in which no request can be
granted is a cycle of unsatisfied nodes that each hold exactly two unoriented
edges (both on the cycle): everyone's safety margin forbids every grant.  The
protocol resolves such cycles exactly, without ever risking a sink:

1. A node that detects the stuck pattern (unsatisfied, no satisfied
   neighbour, exactly two unoriented edges, requests repeatedly denied)
   enters *ring mode* and starts forwarding directional min-identifier
   streams: on each of its two ring edges it sends the smallest identifier
   received from the *other* edge (with a hop count), injecting its own.
2. The unique node whose own identifier comes back to it has seen its
   identifier survive a full tour of the cycle, so it is the global minimum
   of the cycle — a correctly elected leader.  False minima never confirm.
3. The leader starts a *wave*: it requests one of its ring edges with a wave
   flag.  A wave request is always granted (the granter keeps its one other
   ring edge), and granting a wave while unsatisfied passes the wave on: the
   granter requests its remaining ring edge with the wave flag next phase.
   The wave travels once around the cycle, orienting it consistently, and
   terminates at the (by then satisfied) leader.

Because only one leader per stuck cycle can ever confirm, there is exactly
one wave per cycle and no two waves can collide, so the safety margin is
never violated and the protocol terminates on every input it can reach.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from repro.local.node import NodeRuntime

__all__ = ["orientation_phases"]

#: Chooses which unoriented edge an unsatisfied node requests this phase.
#: Receives (node, unoriented neighbours, neighbour-satisfied map).
RequestChooser = Callable[[NodeRuntime, Set[int], Dict[int, bool]], int]

#: Phases of consecutive denials before a node considers itself stuck.
_RING_PATIENCE = 3

Stream = Optional[Tuple[int, int]]  # (smallest identifier seen, hop count)


def orientation_phases(
    node: NodeRuntime,
    unoriented: Set[int],
    secured: bool,
    choose_request: RequestChooser,
):
    """Generator implementing the request/grant phases (two rounds each).

    Args:
        node: the executing node.
        unoriented: incident edges (by neighbour vertex) that still need an
            orientation; mutated in place as edges get committed.
        secured: whether the node already has an outgoing edge or is exempt.
        choose_request: policy picking the requested edge for an unsatisfied
            node (randomized or deterministic).
    """
    neighbor_secured: Dict[int, bool] = {}
    denied_streak = 0
    streams: Dict[int, Stream] = {}
    wave_holder = False

    while unoriented:
        count = len(unoriented)
        fallbacks = sum(1 for u in unoriented if neighbor_secured.get(u))
        ring_mode = (
            not secured
            and not wave_holder
            and fallbacks == 0
            and count == 2
            and denied_streak >= _RING_PATIENCE
        )

        # ---------------- choose this phase's request --------------------
        request_target: Optional[int] = None
        wave_request = False
        if not secured:
            if wave_holder:
                # A wave holder forwards the wave over its remaining ring edge.
                request_target = min(unoriented)
                wave_request = True
            else:
                request_target = choose_request(node, unoriented, neighbor_secured)

        leader = False
        if ring_mode:
            leader = any(
                stream is not None and stream[0] == node.identifier
                for stream in streams.values()
            )
            if leader:
                # Leadership confirmed: start the wave on the edge the
                # confirmation arrived from (any ring edge works).
                confirm_from = [
                    u for u, s in streams.items() if s is not None and s[0] == node.identifier
                ]
                request_target = min(confirm_from)
                wave_request = True
                wave_holder = True

        # ---------------- Round 1: statuses, requests, streams -----------
        outbox: Dict[int, tuple] = {}
        ring_edges = sorted(unoriented) if ring_mode else []
        for u in unoriented:
            stream_out: Stream = None
            if ring_mode and len(ring_edges) == 2:
                other = ring_edges[0] if u == ring_edges[1] else ring_edges[1]
                incoming = streams.get(other)
                if incoming is None or node.identifier <= incoming[0]:
                    stream_out = (node.identifier, 0)
                else:
                    stream_out = (incoming[0], incoming[1] + 1)
            outbox[u] = (
                "req",
                secured,
                count,
                node.identifier,
                request_target == u,
                wave_request and request_target == u,
                stream_out,
            )
        inbox = yield outbox
        statuses: Dict[int, tuple] = {
            u: msg for u, msg in inbox.items() if u in unoriented and msg[0] == "req"
        }
        for u, msg in statuses.items():
            neighbor_secured[u] = msg[1]
            streams[u] = msg[6]

        # ---------------- grant decisions --------------------------------
        requesters = sorted(
            (msg[3], u) for u, msg in statuses.items() if msg[4]
        )
        grants: Set[int] = set()
        wave_granted: Optional[int] = None
        if secured:
            budget = count
        else:
            budget = max(0, count - max(1, 2 - fallbacks))
        for their_id, u in requesters:
            msg = statuses[u]
            their_count, is_wave = msg[2], msg[5]
            if is_wave and (secured or count - len(grants) >= 2):
                # Wave requests are always honoured while the safety margin
                # (one remaining edge) can be preserved.
                grants.add(u)
                if not secured:
                    wave_granted = u
                if budget > 0:
                    budget -= 1
                continue
            if budget <= 0:
                continue
            if request_target == u:
                # Mutual request: the endpoint with the larger (count, id)
                # concedes; the other one keeps the edge as its out-edge.
                if (count, node.identifier) <= (their_count, their_id):
                    continue
            grants.add(u)
            budget -= 1

        # ---------------- Round 2: answers -------------------------------
        inbox = yield {
            u: ("ans", u in grants, secured, node.identifier) for u in unoriented
        }
        answers = {u: msg for u, msg in inbox.items() if u in unoriented and msg[0] == "ans"}

        request_granted = False
        for u in list(unoriented):
            head: Optional[int] = None
            answer = answers.get(u)
            granted_to_me = answer is not None and answer[1]
            if u in grants:
                head = node.vertex  # I granted: the edge points towards me.
            elif granted_to_me and request_target == u:
                head = u  # my request was granted: the edge leaves me.
                secured = True
                request_granted = True
            elif answer is not None:
                _, _, their_secured_now, their_id = answer
                status = statuses.get(u)
                they_requested = bool(status[4]) if status else False
                if secured and their_secured_now and not they_requested and request_target != u:
                    # Leftover edge between two satisfied nodes.
                    head = node.vertex if node.identifier < their_id else u
            if head is None:
                continue
            node.commit_edge(u, head)
            unoriented.discard(u)
            streams.pop(u, None)
            if head == u:
                secured = True

        if wave_granted is not None and not secured:
            # Granting a wave while unsatisfied passes the wave on.
            wave_holder = True
        if secured:
            wave_holder = False

        if secured or request_target is None or request_granted:
            denied_streak = 0
        else:
            denied_streak += 1
