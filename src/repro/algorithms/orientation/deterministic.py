"""Deterministic sinkless orientation (Theorem 6, simplified two-stage version).

Theorem 6 gives a deterministic LOCAL algorithm with node-averaged complexity
O(log* n) and worst-case complexity O(log n) on graphs of minimum degree 3.
Its two main ingredients are (i) a *short-cycle stage* — every edge lying on
a short cycle is oriented according to the preferred orientation of the
smallest-identifier short cycle containing it, which gives every node near a
short cycle an outgoing edge after O(1) rounds — and (ii) a clustering /
contraction scheme that handles the locally tree-like residual graph.

We implement stage (i) faithfully and replace the contraction machinery of
stage (ii) with a deterministic *peeling* stage built on the request/grant
consent protocol of :mod:`repro.algorithms.orientation.protocol` (see
DESIGN.md, substitutions): an unsatisfied node requests, in preference order,
an unoriented edge towards an already-satisfied neighbour (such requests are
always granted, so the satisfied region grows by one hop per phase and a node
at distance d from the nearest short cycle finishes after O(d) phases —
min-degree-3 graphs guarantee d = O(log n)), and otherwise round-robins its
requests over its remaining unoriented edges.  The resulting algorithm is
deterministic, correct on the benchmark workloads, finishes in
O(log n)-flavoured worst-case time, and decides the (typically large)
population of nodes near short cycles after a constant number of rounds —
which is the node-averaged-versus-worst-case separation the theorem is
about.  The true O(log* n) node-averaged bound needs the paper's
cluster-contraction recursion, whose constants (cluster radius ≥ 31, girth
≥ 90) are far beyond laptop-scale graphs; EXPERIMENTS.md discusses this
substitution.

Stage (i) is conflict-free because it uses a single synchronised checkpoint:
for ``flood_rounds`` rounds every node forwards newly learnt edges and
identifiers, after which both endpoints of every edge know *all* short cycles
through that edge and therefore make identical orientation decisions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.algorithms.orientation.protocol import orientation_phases
from repro.local.coroutine import CoroutineAlgorithm
from repro.local.node import NodeRuntime

__all__ = ["DeterministicSinklessOrientation"]

Edge = Tuple[int, int]


class DeterministicSinklessOrientation(CoroutineAlgorithm):
    """Theorem 6 (simplified): short-cycle orientation plus deterministic peeling."""

    name = "deterministic-sinkless-orientation"
    randomized = False
    uses_identifiers = True

    def __init__(self, short_cycle_length: int = 6, min_degree: int = 3) -> None:
        """Configure the algorithm.

        Args:
            short_cycle_length: cycles of at most this length are handled by
                the preferred-orientation stage (the paper's ``6r``).
            min_degree: nodes of smaller degree are exempt from needing an
                outgoing edge.
        """
        if short_cycle_length < 3:
            raise ValueError("short_cycle_length must be at least 3")
        if min_degree < 1:
            raise ValueError("min_degree must be positive")
        self.short_cycle_length = short_cycle_length
        self.min_degree = min_degree

    # ------------------------------------------------------------------ #

    def run(self, node: NodeRuntime):
        unoriented: Set[int] = set(node.neighbors)
        if not unoriented:
            return
        secured = node.degree < self.min_degree

        # ---------------- Stage 1: flooding + short-cycle orientation -----
        known_edges: Set[Edge] = {_canon(node.vertex, u) for u in node.neighbors}
        identifiers: Dict[int, int] = {node.vertex: node.identifier}
        fresh_edges = set(known_edges)
        fresh_ids = dict(identifiers)

        for _ in range(self.short_cycle_length):
            inbox = yield {
                u: ("flood", tuple(fresh_edges), tuple(fresh_ids.items()))
                for u in node.neighbors
            }
            fresh_edges = set()
            fresh_ids = {}
            for _, (_, edges, ids) in inbox.items():
                for edge in edges:
                    if edge not in known_edges:
                        known_edges.add(edge)
                        fresh_edges.add(edge)
                for vertex, identifier in ids:
                    if vertex not in identifiers:
                        identifiers[vertex] = identifier
                        fresh_ids[vertex] = identifier

        # Single synchronised checkpoint: orient every incident edge that lies
        # on a short cycle according to the preferred orientation of the
        # smallest short cycle containing it.  Both endpoints know the same
        # cycles (their knowledge radius exceeds the cycle length), so they
        # commit identical values.
        for u in sorted(unoriented):
            head = self._short_cycle_head(node.vertex, u, known_edges, identifiers)
            if head is None:
                continue
            node.commit_edge(u, head)
            unoriented.discard(u)
            if head == u:
                secured = True

        # ---------------- Stage 2: deterministic peeling -------------------
        yield from orientation_phases(node, unoriented, secured, self._choose_request)

    @staticmethod
    def _choose_request(
        node: NodeRuntime, unoriented: Set[int], neighbor_secured: Dict[int, bool]
    ) -> int:
        """Prefer peeling onto an already-satisfied neighbour, else round-robin."""
        satisfied = sorted(u for u in unoriented if neighbor_secured.get(u))
        if satisfied:
            return satisfied[0]
        choices = sorted(unoriented)
        counter = node.state.get("_so_rr", 0)
        node.state["_so_rr"] = counter + 1
        return choices[counter % len(choices)]

    # ------------------------------------------------------------------ #
    # Stage 1 helpers
    # ------------------------------------------------------------------ #

    def _short_cycle_head(
        self,
        me: int,
        other: int,
        known_edges: Set[Edge],
        identifiers: Dict[int, int],
    ) -> Optional[int]:
        """Head of edge ``{me, other}`` under the preferred-orientation rule.

        Returns ``None`` when the edge lies on no short cycle in the known
        subgraph.
        """
        cycles = _cycles_through_edge(me, other, known_edges, self.short_cycle_length)
        if not cycles:
            return None
        best = min(cycles, key=lambda cycle: _cycle_key(cycle, identifiers))
        return _preferred_head(best, me, other, identifiers)


# ---------------------------------------------------------------------- #
# Pure helpers (module level so they can be unit tested directly)
# ---------------------------------------------------------------------- #


def _canon(u: int, v: int) -> Edge:
    return (u, v) if u < v else (v, u)


def _cycles_through_edge(
    u: int, v: int, edges: Set[Edge], max_length: int
) -> List[Tuple[int, ...]]:
    """All simple cycles of length ≤ ``max_length`` containing edge ``{u, v}``.

    Cycles are returned as vertex tuples starting with ``u`` and ending with
    ``v`` (the closing edge ``v → u`` is implicit).
    """
    adjacency: Dict[int, Set[int]] = {}
    for a, b in edges:
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    if v not in adjacency.get(u, set()):
        return []

    cycles: List[Tuple[int, ...]] = []

    def extend(path: List[int], seen: Set[int]) -> None:
        last = path[-1]
        if len(path) >= 3 and v in adjacency.get(last, set()) and last != v:
            pass  # closing happens only through v as the final vertex
        for nxt in adjacency.get(last, set()):
            if nxt == v and len(path) >= 2:
                cycles.append(tuple(path + [v]))
                continue
            if nxt in seen or nxt == v:
                continue
            if len(path) + 1 >= max_length:
                continue
            extend(path + [nxt], seen | {nxt})

    # Walk from u avoiding the direct edge u-v so the cycle has length ≥ 3.
    for first in adjacency.get(u, set()):
        if first == v:
            continue
        extend([u, first], {u, first})

    # Deduplicate traversal directions: a cycle and its reverse describe the
    # same cycle; keep a canonical representative.
    unique = {}
    for cycle in cycles:
        key = frozenset(_cycle_edges(cycle))
        current = unique.get(key)
        if current is None or cycle < current:
            unique[key] = cycle
    return list(unique.values())


def _cycle_edges(cycle: Tuple[int, ...]) -> List[Edge]:
    """Edges of a cycle given as a vertex tuple (closing edge included)."""
    edges = []
    for i in range(len(cycle)):
        edges.append(_canon(cycle[i], cycle[(i + 1) % len(cycle)]))
    return edges


def _cycle_key(cycle: Tuple[int, ...], identifiers: Dict[int, int]) -> Tuple:
    """Identifier-based sort key of a cycle (smaller key = preferred cycle)."""
    labelled = sorted(
        tuple(sorted((identifiers.get(a, a), identifiers.get(b, b))))
        for a, b in _cycle_edges(cycle)
    )
    return (len(labelled), tuple(labelled))


def _preferred_head(
    cycle: Tuple[int, ...], me: int, other: int, identifiers: Dict[int, int]
) -> int:
    """Head of edge ``{me, other}`` in the preferred orientation of ``cycle``.

    The preferred orientation (Theorem 6, Appendix B) starts at the cycle edge
    with the smallest identifier pair, directs it from its smaller-identifier
    endpoint to the other, and follows the cycle consistently from there.
    """
    edges = _cycle_edges(cycle)
    anchor = min(edges, key=lambda e: tuple(sorted((identifiers.get(e[0], e[0]), identifiers.get(e[1], e[1])))))
    a, b = anchor
    if identifiers.get(a, a) > identifiers.get(b, b):
        a, b = b, a
    # Orient the cycle in the direction a -> b and propagate around.
    order = list(cycle)
    n = len(order)
    successor: Dict[int, int] = {order[i]: order[(i + 1) % n] for i in range(n)}
    predecessor: Dict[int, int] = {order[(i + 1) % n]: order[i] for i in range(n)}
    if successor[a] == b:
        directed = successor
    elif predecessor[a] == b:
        directed = {vertex: predecessor[vertex] for vertex in predecessor}
    else:  # pragma: no cover - anchor is always a cycle edge
        raise RuntimeError("anchor edge is not on the cycle")
    # The edge {me, other} is oriented me -> directed[me] if that equals other.
    return other if directed.get(me) == other else me
