"""Randomized ``(degree + 1)``-list colouring with O(1) node-averaged complexity.

Section 1.2 of the paper observes (crediting [Lub93, Joh99, BT19]) that the
classic "try a random free colour" algorithm colours every node with constant
probability per attempt, so the randomized node-averaged complexity of
``(Δ+1)``-colouring is ``O(1)``.  This module implements that algorithm:

* every node uses the palette ``{0, …, deg(v)}``,
* in each phase an uncoloured node picks a uniformly random colour from the
  palette colours not already taken by permanently coloured neighbours,
* it keeps the colour if no neighbour (coloured or simultaneously trying)
  chose the same colour this phase, and commits it.

Each phase is two communication rounds (tentative colours, confirmations).
"""

from __future__ import annotations

from repro.local.coroutine import CoroutineAlgorithm
from repro.local.node import NodeRuntime

__all__ = ["RandomizedColoring"]


class RandomizedColoring(CoroutineAlgorithm):
    """Randomized ``(degree+1)``-colouring; node outputs are colour integers."""

    name = "randomized-coloring"
    randomized = True
    uses_identifiers = False

    def run(self, node: NodeRuntime):
        if node.degree == 0:
            node.commit(0)
            return

        palette = set(range(node.degree + 1))
        taken = set()

        while not node.has_committed:
            available = sorted(palette - taken)
            # The palette has degree+1 colours and at most degree neighbours can
            # occupy colours, so `available` is never empty.
            tentative = available[node.rng.randrange(len(available))]
            inbox = yield {u: ("try", tentative) for u in node.neighbors}
            conflict = any(
                kind == "try" and colour == tentative for kind, colour in inbox.values()
            )
            if not conflict:
                node.commit(tentative)

            final = ("fix", tentative) if node.has_committed else ("none", None)
            inbox = yield {u: final for u in node.neighbors}
            for kind, colour in inbox.values():
                if kind == "fix":
                    taken.add(colour)
