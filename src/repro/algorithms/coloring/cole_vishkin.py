"""Cole–Vishkin iterated colour reduction primitives.

The deterministic ``O(log* n)`` machinery of the paper's upper bounds
(Theorem 3's dominating-set iterations, Linial-style subroutines) rests on
the Cole–Vishkin bit trick: a node holding colour ``c`` and seeing its
parent's colour ``p`` (in a rooted forest / pseudo-forest) computes the new
colour ``2·i + bit_i(c)`` where ``i`` is the lowest bit position in which
``c`` and ``p`` differ.  One such step shrinks colours of ``L`` bits to
``O(log L)`` bits while preserving properness along parent edges, so
``O(log* n)`` iterations reach a constant-size palette.

This module provides the single-step function, the deterministic iteration
schedule (how many steps are needed for a given identifier bit length), and a
small helper that finishes the reduction down to a constant palette bound.
All functions are pure so they can be reused inside coroutine algorithms and
unit-tested directly.
"""

from __future__ import annotations

__all__ = [
    "cv_step",
    "colors_after_step",
    "cv_rounds_needed",
    "FINAL_COLOR_BOUND",
]

#: After the full Cole–Vishkin schedule colours are guaranteed to lie in
#: ``[0, FINAL_COLOR_BOUND)``.
FINAL_COLOR_BOUND = 8


def cv_step(own_color: int, parent_color: int) -> int:
    """One Cole–Vishkin reduction step.

    Args:
        own_color: this node's current colour (non-negative integer).
        parent_color: the parent's current colour; must differ from
            ``own_color`` (roots pass a virtual parent colour, conventionally
            their own colour with the lowest bit flipped).

    Returns:
        The new colour ``2·i + bit_i(own_color)`` where ``i`` is the index of
        the lowest-order bit in which the two colours differ.
    """
    if own_color < 0 or parent_color < 0:
        raise ValueError("colours must be non-negative")
    if own_color == parent_color:
        raise ValueError("own and parent colours must differ for a Cole-Vishkin step")
    diff = own_color ^ parent_color
    index = (diff & -diff).bit_length() - 1
    bit = (own_color >> index) & 1
    return 2 * index + bit


def colors_after_step(bit_length: int) -> int:
    """Bit length of colours after one step, starting from ``bit_length`` bits."""
    if bit_length <= 0:
        return 1
    max_new_color = 2 * (bit_length - 1) + 1
    return max(1, max_new_color.bit_length())


def cv_rounds_needed(initial_bits: int) -> int:
    """Number of Cole–Vishkin steps to reach colours below :data:`FINAL_COLOR_BOUND`.

    The schedule is deterministic and only depends on the initial colour bit
    length, so every node can compute it locally from the global knowledge of
    the identifier space (standard in the LOCAL model).
    """
    if initial_bits <= 0:
        return 0
    bits = initial_bits
    rounds = 0
    # 3 bits means colours < 8 = FINAL_COLOR_BOUND.
    while bits > 3:
        bits = colors_after_step(bits)
        rounds += 1
        if rounds > 64:  # pragma: no cover - defensive, cannot trigger for int inputs
            raise RuntimeError("Cole-Vishkin schedule failed to converge")
    # One extra step once at 3 bits keeps the palette strictly below 8 even in
    # the corner case where the reduction stalls at exactly 3 bits.
    return rounds + (1 if initial_bits > 3 else 0)
