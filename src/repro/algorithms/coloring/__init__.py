"""Vertex colouring algorithms and colour-reduction primitives."""

from repro.algorithms.coloring.cole_vishkin import (
    FINAL_COLOR_BOUND,
    colors_after_step,
    cv_rounds_needed,
    cv_step,
)
from repro.algorithms.coloring.random_coloring import RandomizedColoring

__all__ = [
    "RandomizedColoring",
    "cv_step",
    "cv_rounds_needed",
    "colors_after_step",
    "FINAL_COLOR_BOUND",
]
