"""Randomized maximal matching with edge-averaged complexity O(1) (Theorem 4).

Each iteration works on the graph induced by the still-undecided edges:

1. endpoints exchange their current degrees (number of undecided incident
   edges) and identifiers;
2. the lower-identifier endpoint of each undecided edge ``e = {u, v}`` marks
   ``e`` with probability ``1 / (4 (d_u + d_v))`` and tells the other
   endpoint;
3. a marked edge with no other marked edge incident to either endpoint joins
   the matching; both its endpoints become matched and immediately commit all
   their other undecided edges as "not in the matching";
4. newly matched nodes announce themselves so their neighbours can commit the
   shared edges as "not in the matching" too, and retire.

Theorem 4 (and the classical Israeli–Itai analysis) shows each iteration
removes a constant fraction of the undecided edges in expectation: at least
half of the edges touch a "good" node (one with at least a third of its
neighbours of no larger degree), and each good node is matched with constant
probability.  Hence the edge-averaged complexity is O(1) while the worst case
is O(log n) w.h.p. — whereas the node-averaged complexity of maximal matching
is Ω(min{log Δ / log log Δ, √(log n / log log n)}) by Theorem 17.

Each iteration costs four communication rounds.
"""

from __future__ import annotations

from typing import Dict, Set

import numpy as np

from typing import Optional

from repro.local.coroutine import CoroutineAlgorithm
from repro.local.engine import ArrayAlgorithm, ArrayState, ArrayTopology
from repro.local.faults import RoundFaults
from repro.local.node import NodeRuntime

__all__ = ["RandomizedMaximalMatching", "RandomizedMatchingArray"]


class RandomizedMaximalMatching(CoroutineAlgorithm):
    """Theorem 4: Luby/Israeli–Itai style randomized maximal matching."""

    name = "randomized-maximal-matching"
    randomized = True
    uses_identifiers = True  # used to designate the marking endpoint of an edge

    def __init__(self, marking_factor: float = 4.0) -> None:
        """``marking_factor`` is the constant in the 1/(factor·(d_u+d_v)) marking rate."""
        if marking_factor <= 0:
            raise ValueError("marking_factor must be positive")
        self.marking_factor = marking_factor

    def run(self, node: NodeRuntime):
        undecided: Set[int] = set(node.neighbors)
        matched = False

        while undecided:
            # Round 1: exchange (degree in the undecided graph, identifier).
            my_degree = len(undecided)
            inbox = yield dict.fromkeys(undecided, (my_degree, node.identifier))
            info: Dict[int, tuple] = {u: p for u, p in inbox.items() if u in undecided}

            # Round 2: the smaller-identifier endpoint marks each edge.
            marks: Dict[int, bool] = {}
            outbox: Dict[int, object] = {}
            for u, (their_degree, their_id) in info.items():
                if node.identifier < their_id:
                    probability = 1.0 / (self.marking_factor * (my_degree + their_degree))
                    marks[u] = node.rng.random() < probability
                    outbox[u] = ("mark", marks[u])
                else:
                    outbox[u] = ("mark", None)
            inbox = yield outbox
            for u, (_, mark) in inbox.items():
                if u in info and mark is not None:
                    marks[u] = mark

            # Round 3: an isolated marked edge joins the matching.
            marked_count = sum(1 for flag in marks.values() if flag)
            outbox = {
                u: ("others", marked_count - (1 if marks.get(u) else 0)) for u in info
            }
            inbox = yield outbox
            partner = None
            for u, (_, their_other_marks) in inbox.items():
                if u not in info or not marks.get(u):
                    continue
                my_other_marks = marked_count - 1
                if my_other_marks == 0 and their_other_marks == 0:
                    partner = u
                    break
            if partner is not None:
                matched = True
                node.commit_edge(partner, True)
                undecided.discard(partner)
                for u in list(undecided):
                    node.commit_edge(u, False)

            # Round 4: matched nodes announce themselves and retire; everyone
            # else records the edges decided by a newly matched neighbour.
            inbox = yield dict.fromkeys(undecided, ("matched", matched))
            for u, (_, neighbor_matched) in inbox.items():
                if neighbor_matched and u in undecided:
                    node.commit_edge(u, False)
                    undecided.discard(u)
            if matched:
                return

    def as_array_algorithm(self) -> "RandomizedMatchingArray":
        return RandomizedMatchingArray(self.marking_factor)


class RandomizedMatchingArray(ArrayAlgorithm):
    """Array-engine twin of :class:`RandomizedMaximalMatching`.

    Iteration ``k`` spans rounds ``4k−3`` (undecided-degree exchange),
    ``4k−2`` (edge marking), ``4k−1`` (isolated marked edges join; matched
    nodes commit all their undecided edges) and ``4k`` (matched nodes
    announce and retire).  Round stamps follow the coroutine twin exactly:

    * a matched edge commits ``True`` at round ``4k−1``;
    * every other undecided edge incident to a matched node commits
      ``False`` at round ``4k−1`` (the matched endpoint's commit; the other
      endpoint's duplicate round-``4k`` commit never lowers the recorded
      minimum, so it is not re-recorded);
    * completion is therefore always reached at a round ``≡ 3 (mod 4)``
      (or round 0 on edgeless graphs), exactly as with the coroutine twin.

    Marking draws one uniform per still-undecided edge at round ``4k−2``,
    in canonical edge-slot order (the engine's documented seed schedule);
    the edge is marked with probability ``1 / (factor · (d_u + d_v))`` over
    the iteration-start undecided degrees — the coroutine rate exactly
    (there the lower-identifier endpoint draws; here the engine draws per
    edge — the same per-edge Bernoulli, one draw per undecided edge either
    way).

    Messages: rounds ``4k−3``/``4k−2``/``4k−1`` each send one message per
    direction of every undecided edge (``2·U_k``); round ``4k`` sends
    ``2·U_k − 2·M_k`` (the ``M_k`` matched partners dropped each other
    before announcing), matching the coroutine count round for round.

    Fault mode (``faults`` per round).  An edge participates in iteration
    ``k`` iff it is undecided, both endpoints are alive, and *both*
    directions of the degree exchange were delivered; per-node degrees stay
    the global undecided counts (each node reports its own undecided
    degree, which drops and crashes cannot change).  The mark block is
    drawn over the iteration's participating edges in canonical slot order;
    a mark is voided when the marker's notification direction (the
    lower-identifier endpoint tells the other) was dropped — unlike the
    coroutine, where one-sided mark knowledge can make the endpoints
    disagree and commit conflicting values (a legitimate structured failure
    under drops), the array model keeps mark knowledge symmetric, so its
    fault-mode executions always commit conflict-free.  A match requires
    both endpoints alive at the commit round with both ``others``-exchange
    directions delivered.  Commit rounds and completion (edges with a dead
    endpoint are excused by the engine) follow the coroutine timeline;
    fault-mode *message* counts are engine-native approximations
    (``2·|participating edges|`` per round) and not part of the cross-engine
    parity contract — outputs, rounds and fault events are.

    Delay mode: the matching's payloads carry no cross-round meaning (a
    stale degree or mark from the previous round is filtered by the
    coroutine's ``u in undecided`` / ``u in info`` guards or superseded by
    the fresh exchange), so the array twin treats a delayed direction
    simply as *not delivered this round* — ``deliver_uv`` / ``deliver_vu``
    already exclude delayed fates, and the edge sits out the iteration.
    This is an engine-native approximation, like the message counts: under
    delays the coroutine's surviving one-sided payloads can still commit
    conflicting edge values (a structured failure), which the symmetric
    array model never reproduces; outputs agree with the coroutine under
    crash+drop schedules, and fault events agree under all schedules.
    """

    name = "randomized-maximal-matching"
    labels_edges = True
    supports_faults = True

    def __init__(self, marking_factor: float = 4.0) -> None:
        if marking_factor <= 0:
            raise ValueError("marking_factor must be positive")
        self.marking_factor = marking_factor

    def init_arrays(
        self, topology: ArrayTopology, rng: np.random.Generator
    ) -> ArrayState:
        state = ArrayState(topology.n, topology.m, nodes=False, edges=True)
        state.halted |= topology.degrees == 0
        state.extra["undecided"] = np.ones(topology.m, dtype=bool)
        return state

    def step(
        self,
        round_index: int,
        state: ArrayState,
        topology: ArrayTopology,
        rng: np.random.Generator,
        faults: Optional[RoundFaults] = None,
    ) -> None:
        extra = state.extra
        undecided = extra["undecided"]
        us, vs = topology.edge_us, topology.edge_vs
        phase = round_index % 4
        if phase == 1:
            # Degree exchange (4k−3): snapshot the iteration's undecided
            # edge set and per-node undecided degrees.
            if faults is None:
                live = np.flatnonzero(undecided)
                state.messages += 2 * live.size
            else:
                # Participation needs both exchange directions through;
                # messages are still charged per alive sender and undecided
                # incident edge (sends happen whether or not they arrive).
                live = np.flatnonzero(
                    undecided & faults.deliver_uv & faults.deliver_vu
                )
                every = np.flatnonzero(undecided)
                alive = faults.alive
                state.messages += int(
                    alive[us[every]].sum() + alive[vs[every]].sum()
                )
            # Degrees over *all* undecided edges: each node reports its own
            # undecided degree, which message faults cannot alter.
            every = np.flatnonzero(undecided)
            degrees = np.bincount(us[every], minlength=topology.n) + np.bincount(
                vs[every], minlength=topology.n
            )
            extra["iter_edges"] = live
            extra["iter_degrees"] = degrees
        elif phase == 2:
            # Marking (4k−2): one uniform per participating edge, edge-slot
            # order — the documented seed schedule.
            live = extra["iter_edges"]
            degrees = extra["iter_degrees"]
            rate = 1.0 / (
                self.marking_factor * (degrees[us[live]] + degrees[vs[live]])
            )
            marked = rng.random(live.size) < rate
            if faults is not None:
                alive = faults.alive
                marked &= alive[us[live]] & alive[vs[live]]
                # Void marks whose marker → other notification was dropped
                # (marker = lower-identifier endpoint), keeping mark
                # knowledge symmetric.
                ids = topology.identifiers
                marker_is_u = ids[us[live]] < ids[vs[live]]
                notified = np.where(
                    marker_is_u, faults.deliver_uv[live], faults.deliver_vu[live]
                )
                marked &= notified
            extra["marked"] = marked
            state.messages += 2 * live.size
        elif phase == 3:
            # Matching commits (4k−1): a marked edge with no other marked
            # edge at either endpoint joins; its endpoints commit every
            # undecided incident edge.
            live = extra["iter_edges"]
            marked_mask = extra["marked"]
            if faults is not None:
                alive = faults.alive
                marked_mask = marked_mask & alive[us[live]] & alive[vs[live]]
            marked = live[marked_mask]
            mark_count = np.bincount(us[marked], minlength=topology.n) + np.bincount(
                vs[marked], minlength=topology.n
            )
            isolated = (mark_count[us[marked]] == 1) & (mark_count[vs[marked]] == 1)
            if faults is not None:
                # The mutual "no other marks" confirmation needs both
                # directions delivered this round.
                isolated &= faults.deliver_uv[marked] & faults.deliver_vu[marked]
            matched = marked[isolated]
            matched_node = np.zeros(topology.n, dtype=bool)
            matched_node[us[matched]] = True
            matched_node[vs[matched]] = True
            if faults is None:
                removed = live[matched_node[us[live]] | matched_node[vs[live]]]
            else:
                # A matched node commits *all* its undecided edges, not just
                # the iteration's participating ones (edges to crashed or
                # silenced neighbours included) — coroutine semantics.
                removed = np.flatnonzero(
                    undecided & (matched_node[us] | matched_node[vs])
                )
            state.edge_rounds[removed] = round_index
            state.edge_values[matched] = True
            undecided[removed] = False
            extra["iter_matched"] = int(matched.size)
            state.messages += 2 * live.size
        else:
            # Announcement (4k): matched nodes tell their remaining
            # neighbours and retire; no first-time commits happen here.
            state.messages += 2 * extra["iter_edges"].size - 2 * extra["iter_matched"]
            still = np.flatnonzero(undecided)
            active = np.zeros(topology.n, dtype=bool)
            active[us[still]] = True
            active[vs[still]] = True
            np.logical_not(active, out=state.halted)
