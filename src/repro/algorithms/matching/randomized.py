"""Randomized maximal matching with edge-averaged complexity O(1) (Theorem 4).

Each iteration works on the graph induced by the still-undecided edges:

1. endpoints exchange their current degrees (number of undecided incident
   edges) and identifiers;
2. the lower-identifier endpoint of each undecided edge ``e = {u, v}`` marks
   ``e`` with probability ``1 / (4 (d_u + d_v))`` and tells the other
   endpoint;
3. a marked edge with no other marked edge incident to either endpoint joins
   the matching; both its endpoints become matched and immediately commit all
   their other undecided edges as "not in the matching";
4. newly matched nodes announce themselves so their neighbours can commit the
   shared edges as "not in the matching" too, and retire.

Theorem 4 (and the classical Israeli–Itai analysis) shows each iteration
removes a constant fraction of the undecided edges in expectation: at least
half of the edges touch a "good" node (one with at least a third of its
neighbours of no larger degree), and each good node is matched with constant
probability.  Hence the edge-averaged complexity is O(1) while the worst case
is O(log n) w.h.p. — whereas the node-averaged complexity of maximal matching
is Ω(min{log Δ / log log Δ, √(log n / log log n)}) by Theorem 17.

Each iteration costs four communication rounds.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

import numpy as np

from typing import Optional, Sequence

from repro.local.coroutine import CoroutineAlgorithm
from repro.local.engine import (
    ArrayAlgorithm,
    ArrayState,
    ArrayTopology,
    BatchState,
)
from repro.local.faults import RoundFaults
from repro.local.node import NodeRuntime

__all__ = ["RandomizedMaximalMatching", "RandomizedMatchingArray"]


class RandomizedMaximalMatching(CoroutineAlgorithm):
    """Theorem 4: Luby/Israeli–Itai style randomized maximal matching."""

    name = "randomized-maximal-matching"
    randomized = True
    uses_identifiers = True  # used to designate the marking endpoint of an edge

    def __init__(self, marking_factor: float = 4.0) -> None:
        """``marking_factor`` is the constant in the 1/(factor·(d_u+d_v)) marking rate."""
        if marking_factor <= 0:
            raise ValueError("marking_factor must be positive")
        self.marking_factor = marking_factor

    def run(self, node: NodeRuntime):
        undecided: Set[int] = set(node.neighbors)
        matched = False

        while undecided:
            # Round 1: exchange (degree in the undecided graph, identifier).
            my_degree = len(undecided)
            inbox = yield dict.fromkeys(undecided, (my_degree, node.identifier))
            info: Dict[int, tuple] = {u: p for u, p in inbox.items() if u in undecided}

            # Round 2: the smaller-identifier endpoint marks each edge.
            marks: Dict[int, bool] = {}
            outbox: Dict[int, object] = {}
            for u, (their_degree, their_id) in info.items():
                if node.identifier < their_id:
                    probability = 1.0 / (self.marking_factor * (my_degree + their_degree))
                    marks[u] = node.rng.random() < probability
                    outbox[u] = ("mark", marks[u])
                else:
                    outbox[u] = ("mark", None)
            inbox = yield outbox
            for u, (_, mark) in inbox.items():
                if u in info and mark is not None:
                    marks[u] = mark

            # Round 3: an isolated marked edge joins the matching.
            marked_count = sum(1 for flag in marks.values() if flag)
            outbox = {
                u: ("others", marked_count - (1 if marks.get(u) else 0)) for u in info
            }
            inbox = yield outbox
            partner = None
            for u, (_, their_other_marks) in inbox.items():
                if u not in info or not marks.get(u):
                    continue
                my_other_marks = marked_count - 1
                if my_other_marks == 0 and their_other_marks == 0:
                    partner = u
                    break
            if partner is not None:
                matched = True
                node.commit_edge(partner, True)
                undecided.discard(partner)
                for u in list(undecided):
                    node.commit_edge(u, False)

            # Round 4: matched nodes announce themselves and retire; everyone
            # else records the edges decided by a newly matched neighbour.
            inbox = yield dict.fromkeys(undecided, ("matched", matched))
            for u, (_, neighbor_matched) in inbox.items():
                if neighbor_matched and u in undecided:
                    node.commit_edge(u, False)
                    undecided.discard(u)
            if matched:
                return

    def as_array_algorithm(self) -> "RandomizedMatchingArray":
        return RandomizedMatchingArray(self.marking_factor)


class RandomizedMatchingArray(ArrayAlgorithm):
    """Array-engine twin of :class:`RandomizedMaximalMatching`.

    Iteration ``k`` spans rounds ``4k−3`` (undecided-degree exchange),
    ``4k−2`` (edge marking), ``4k−1`` (isolated marked edges join; matched
    nodes commit all their undecided edges) and ``4k`` (matched nodes
    announce and retire).  Round stamps follow the coroutine twin exactly:

    * a matched edge commits ``True`` at round ``4k−1``;
    * every other undecided edge incident to a matched node commits
      ``False`` at round ``4k−1`` (the matched endpoint's commit; the other
      endpoint's duplicate round-``4k`` commit never lowers the recorded
      minimum, so it is not re-recorded);
    * completion is therefore always reached at a round ``≡ 3 (mod 4)``
      (or round 0 on edgeless graphs), exactly as with the coroutine twin.

    Marking draws one uniform per still-undecided edge at round ``4k−2``,
    in canonical edge-slot order (the engine's documented seed schedule);
    the edge is marked with probability ``1 / (factor · (d_u + d_v))`` over
    the iteration-start undecided degrees — the coroutine rate exactly
    (there the lower-identifier endpoint draws; here the engine draws per
    edge — the same per-edge Bernoulli, one draw per undecided edge either
    way).

    Messages: rounds ``4k−3``/``4k−2``/``4k−1`` each send one message per
    direction of every undecided edge (``2·U_k``); round ``4k`` sends
    ``2·U_k − 2·M_k`` (the ``M_k`` matched partners dropped each other
    before announcing), matching the coroutine count round for round.

    Fault mode (``faults`` per round).  An edge participates in iteration
    ``k`` iff it is undecided, both endpoints are alive, and *both*
    directions of the degree exchange were delivered; per-node degrees stay
    the global undecided counts (each node reports its own undecided
    degree, which drops and crashes cannot change).  The mark block is
    drawn over the iteration's participating edges in canonical slot order;
    a mark is voided when the marker's notification direction (the
    lower-identifier endpoint tells the other) was dropped — unlike the
    coroutine, where one-sided mark knowledge can make the endpoints
    disagree and commit conflicting values (a legitimate structured failure
    under drops), the array model keeps mark knowledge symmetric, so its
    fault-mode executions always commit conflict-free.  A match requires
    both endpoints alive at the commit round with both ``others``-exchange
    directions delivered.  Commit rounds and completion (edges with a dead
    endpoint are excused by the engine) follow the coroutine timeline;
    fault-mode *message* counts are engine-native approximations
    (``2·|participating edges|`` per round) and not part of the cross-engine
    parity contract — outputs, rounds and fault events are.

    Delay mode: the matching's payloads carry no cross-round meaning (a
    stale degree or mark from the previous round is filtered by the
    coroutine's ``u in undecided`` / ``u in info`` guards or superseded by
    the fresh exchange), so the array twin treats a delayed direction
    simply as *not delivered this round* — ``deliver_uv`` / ``deliver_vu``
    already exclude delayed fates, and the edge sits out the iteration.
    This is an engine-native approximation, like the message counts: under
    delays the coroutine's surviving one-sided payloads can still commit
    conflicting edge values (a structured failure), which the symmetric
    array model never reproduces; outputs agree with the coroutine under
    crash+drop schedules, and fault events agree under all schedules.
    """

    name = "randomized-maximal-matching"
    labels_edges = True
    supports_faults = True
    supports_batch = True

    # One scratch set per (topology, trials) shape, reused across every
    # run_batch chunk: the flat worklist double-buffers, gather/compress
    # targets and node-mask scratch are multi-MB and would otherwise be
    # mapped, faulted and zeroed afresh every iteration.  Identity compare
    # is safe — ArrayTopology has no __eq__ and the engine caches it.
    _scratch_for: Optional[Tuple[ArrayTopology, int]] = None
    _scratch: Optional[dict] = None

    def _batch_scratch(self, topology: ArrayTopology, trials: int) -> dict:
        if self._scratch_for != (topology, trials):
            n, m = topology.n, topology.m
            flat = trials * m
            # Flat indices are always int64: numpy's advanced-indexing fast
            # path only fires for intp index arrays, and int32 gathers
            # measure ~3× slower.
            base_e = (np.arange(trials, dtype=np.int64) * m)[:, None]
            base_n = (np.arange(trials, dtype=np.int64) * n)[:, None]
            wl0_fe = (base_e + np.arange(m, dtype=np.int64)).ravel()
            wl0_fu = (base_n + topology.edge_us).ravel()
            wl0_fv = (base_n + topology.edge_vs).ravel()
            for arr in (wl0_fe, wl0_fu, wl0_fv):
                arr.setflags(write=False)
            self._scratch = {
                "wl0": (wl0_fe, wl0_fu, wl0_fv),
                "wlA": tuple(np.empty(flat, dtype=np.int64) for _ in range(3)),
                "wlB": tuple(np.empty(flat, dtype=np.int64) for _ in range(3)),
                "du": np.empty(flat, dtype=np.int64),
                "dv": np.empty(flat, dtype=np.int64),
                "rate": np.empty(flat),
                "draws": np.empty(flat),
                "marked": np.empty(flat, dtype=bool),
                "rem": np.empty(flat, dtype=bool),
                # `nodes` and `mcount` carry an all-False / all-zero
                # invariant between rounds: users reset exactly the
                # entries they touched, so tail iterations with a handful
                # of live edges never pay an O(trials·n) fill.
                "nodes": np.zeros(trials * n, dtype=bool),
                "mcount": np.zeros(trials * n, dtype=np.int64),
                "deg": np.empty(trials * n, dtype=np.int64),
            }
            self._scratch_for = (topology, trials)
        return self._scratch

    def __init__(self, marking_factor: float = 4.0) -> None:
        if marking_factor <= 0:
            raise ValueError("marking_factor must be positive")
        self.marking_factor = marking_factor

    def init_arrays(
        self, topology: ArrayTopology, rng: np.random.Generator
    ) -> ArrayState:
        state = ArrayState(topology.n, topology.m, nodes=False, edges=True)
        state.halted |= topology.degrees == 0
        state.extra["undecided"] = np.ones(topology.m, dtype=bool)
        return state

    def init_batch(
        self, topology: ArrayTopology, rngs: Sequence[np.random.Generator]
    ) -> BatchState:
        trials = len(rngs)
        batch = BatchState(trials, topology.n, topology.m, nodes=False, edges=True)
        batch.halted[:, topology.degrees == 0] = True
        scratch = self._batch_scratch(topology, trials)
        extra = batch.extra
        extra["undecided"] = np.ones((trials, topology.m), dtype=bool)
        # The worklist holds every still-undecided (trial, edge) as flat
        # indices — edge slot (t·m+e) plus both endpoint slots (t·n+u,
        # t·n+v) — trial-major with ascending edge slots inside each
        # trial's segment.  Boolean compression preserves that order, so
        # each trial's marking block stays in canonical slot order and the
        # per-trial RNG streams match the single-trial engine bit for bit.
        extra["wl"] = scratch["wl0"]
        extra["wl_len"] = scratch["wl0"][0].size
        extra["wl_slot"] = "A"
        extra["counts"] = np.full(trials, topology.m, dtype=np.int64)
        # Per-node undecided degrees, maintained incrementally: committed
        # edges decrement both endpoints at the commit round, so the
        # degree-exchange round reads them for free.
        scratch["deg"].reshape(trials, topology.n)[:] = topology.degrees
        extra["scratch"] = scratch
        return batch

    def batch_complete(self, batch: BatchState) -> np.ndarray:
        # A trial is complete exactly when every edge committed, i.e. its
        # undecided count hit zero — O(trials), vs. the engine's generic
        # (trials, m) reduction.
        return batch.extra["counts"] == 0

    def step_batch(
        self,
        round_index: int,
        batch: BatchState,
        topology: ArrayTopology,
        rngs: Sequence[np.random.Generator],
        active: np.ndarray,
    ) -> None:
        extra = batch.extra
        scratch = extra["scratch"]
        trials, n, m = batch.trials, topology.n, topology.m
        counts = extra["counts"]
        wl_fe, wl_fu, wl_fv = extra["wl"]
        length = extra["wl_len"]
        phase = round_index % 4
        if phase == 1:
            # Degree exchange (4k−3): the worklist already equals the
            # undecided edge set and the per-node undecided degrees are
            # maintained incrementally at the commit rounds, so the
            # snapshot is just a copy of the per-trial live counts
            # (mutated at phase 3).
            extra["iter_count"] = counts.copy()
            batch.messages[active] += 2 * counts[active]
        elif phase == 2:
            # Marking (4k−2): rate from the snapshot degrees, then each
            # active trial draws one contiguous uniform block over its
            # worklist segment — the single-trial schedule exactly;
            # inactive trials consume nothing.
            deg = scratch["deg"]
            du = np.take(deg, wl_fu[:length], out=scratch["du"][:length], mode="clip")
            dv = np.take(deg, wl_fv[:length], out=scratch["dv"][:length], mode="clip")
            np.add(du, dv, out=du)
            rate = scratch["rate"][:length]
            np.divide(1.0 / self.marking_factor, du, out=rate)
            draws = scratch["draws"]
            offsets = np.zeros(trials + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            for t in np.flatnonzero(active):
                size = int(counts[t])
                if size:
                    rngs[t].random(out=draws[offsets[t] : offsets[t] + size])
            marked = scratch["marked"][:length]
            np.less(draws[:length], rate, out=marked)
            batch.messages[active] += 2 * extra["iter_count"][active]
        elif phase == 3:
            # Matching commits (4k−1): isolated marked edges join; their
            # endpoints commit every live incident edge.  Everything runs
            # over the compressed worklist, so per-round cost tracks the
            # live edge sets, never (T, m).
            # Marked edges are a small fraction of the worklist (the
            # marking rate is 1/(factor·(d_u+d_v))), so they are pulled
            # out with one boolean scan plus O(marked) gathers rather than
            # full-length compress passes.
            marked = scratch["marked"][:length]
            midx = np.flatnonzero(marked)
            mk_fe = wl_fe[midx]
            mk_fu = wl_fu[midx]
            mk_fv = wl_fv[midx]
            mcount = scratch["mcount"]
            np.add.at(mcount, mk_fu, 1)
            np.add.at(mcount, mk_fv, 1)
            isolated = (mcount[mk_fu] == 1) & (mcount[mk_fv] == 1)
            mcount[mk_fu] = 0
            mcount[mk_fv] = 0
            mt_fe = mk_fe[isolated]
            mt_fu = mk_fu[isolated]
            mt_fv = mk_fv[isolated]
            nodes = scratch["nodes"]
            nodes[mt_fu] = True
            nodes[mt_fv] = True
            rem = np.take(nodes, wl_fu[:length], out=scratch["rem"][:length], mode="clip")
            other = np.take(nodes, wl_fv[:length], out=marked, mode="clip")
            rem |= other
            nodes[mt_fu] = False
            nodes[mt_fv] = False
            ridx = np.flatnonzero(rem)
            rm_count = ridx.size
            extra["iter_matched"] = np.bincount(mt_fe // m, minlength=trials)
            batch.messages[active] += 2 * extra["iter_count"][active]
            if rm_count:
                rm_fe = wl_fe[ridx]
                batch.edge_rounds.reshape(-1)[rm_fe] = round_index
                batch.edge_values.reshape(-1)[mt_fe] = True
                extra["undecided"].reshape(-1)[rm_fe] = False
                counts -= np.bincount(rm_fe // m, minlength=trials)
                deg = scratch["deg"]
                np.subtract.at(deg, wl_fu[ridx], 1)
                np.subtract.at(deg, wl_fv[ridx], 1)
                # Compress the worklist down to the surviving undecided
                # edges (keep = ¬removed) into the idle buffer set.
                keep = rem
                np.logical_not(rem, out=keep)
                kept = length - rm_count
                slot = extra["wl_slot"]
                out_fe, out_fu, out_fv = scratch["wl" + slot]
                np.compress(keep, wl_fe[:length], out=out_fe[:kept])
                np.compress(keep, wl_fu[:length], out=out_fu[:kept])
                np.compress(keep, wl_fv[:length], out=out_fv[:kept])
                extra["wl"] = (out_fe, out_fu, out_fv)
                extra["wl_len"] = kept
                extra["wl_slot"] = "B" if slot == "A" else "A"
        else:
            # Announcement (4k): no first-time commits.  A trial that
            # completed at round 4k−1 exited the single-trial loop before
            # this round, so its messages and halted mask stay untouched.
            batch.messages[active] += (
                2 * extra["iter_count"][active] - 2 * extra["iter_matched"][active]
            )
            # A node participates while it has an undecided incident edge,
            # i.e. while its maintained undecided degree is nonzero — no
            # worklist scatter needed.
            deg_rows = scratch["deg"].reshape(trials, n)
            batch.halted[active] = deg_rows[active] == 0

    def step(
        self,
        round_index: int,
        state: ArrayState,
        topology: ArrayTopology,
        rng: np.random.Generator,
        faults: Optional[RoundFaults] = None,
    ) -> None:
        extra = state.extra
        undecided = extra["undecided"]
        us, vs = topology.edge_us, topology.edge_vs
        phase = round_index % 4
        if phase == 1:
            # Degree exchange (4k−3): snapshot the iteration's undecided
            # edge set and per-node undecided degrees.
            if faults is None:
                live = np.flatnonzero(undecided)
                state.messages += 2 * live.size
            else:
                # Participation needs both exchange directions through;
                # messages are still charged per alive sender and undecided
                # incident edge (sends happen whether or not they arrive).
                live = np.flatnonzero(
                    undecided & faults.deliver_uv & faults.deliver_vu
                )
                every = np.flatnonzero(undecided)
                alive = faults.alive
                state.messages += int(
                    alive[us[every]].sum() + alive[vs[every]].sum()
                )
            # Degrees over *all* undecided edges: each node reports its own
            # undecided degree, which message faults cannot alter.
            every = np.flatnonzero(undecided)
            degrees = np.bincount(us[every], minlength=topology.n) + np.bincount(
                vs[every], minlength=topology.n
            )
            extra["iter_edges"] = live
            extra["iter_degrees"] = degrees
        elif phase == 2:
            # Marking (4k−2): one uniform per participating edge, edge-slot
            # order — the documented seed schedule.
            live = extra["iter_edges"]
            degrees = extra["iter_degrees"]
            rate = 1.0 / (
                self.marking_factor * (degrees[us[live]] + degrees[vs[live]])
            )
            marked = rng.random(live.size) < rate
            if faults is not None:
                alive = faults.alive
                marked &= alive[us[live]] & alive[vs[live]]
                # Void marks whose marker → other notification was dropped
                # (marker = lower-identifier endpoint), keeping mark
                # knowledge symmetric.
                ids = topology.identifiers
                marker_is_u = ids[us[live]] < ids[vs[live]]
                notified = np.where(
                    marker_is_u, faults.deliver_uv[live], faults.deliver_vu[live]
                )
                marked &= notified
            extra["marked"] = marked
            state.messages += 2 * live.size
        elif phase == 3:
            # Matching commits (4k−1): a marked edge with no other marked
            # edge at either endpoint joins; its endpoints commit every
            # undecided incident edge.
            live = extra["iter_edges"]
            marked_mask = extra["marked"]
            if faults is not None:
                alive = faults.alive
                marked_mask = marked_mask & alive[us[live]] & alive[vs[live]]
            marked = live[marked_mask]
            mark_count = np.bincount(us[marked], minlength=topology.n) + np.bincount(
                vs[marked], minlength=topology.n
            )
            isolated = (mark_count[us[marked]] == 1) & (mark_count[vs[marked]] == 1)
            if faults is not None:
                # The mutual "no other marks" confirmation needs both
                # directions delivered this round.
                isolated &= faults.deliver_uv[marked] & faults.deliver_vu[marked]
            matched = marked[isolated]
            matched_node = np.zeros(topology.n, dtype=bool)
            matched_node[us[matched]] = True
            matched_node[vs[matched]] = True
            if faults is None:
                removed = live[matched_node[us[live]] | matched_node[vs[live]]]
            else:
                # A matched node commits *all* its undecided edges, not just
                # the iteration's participating ones (edges to crashed or
                # silenced neighbours included) — coroutine semantics.
                removed = np.flatnonzero(
                    undecided & (matched_node[us] | matched_node[vs])
                )
            state.edge_rounds[removed] = round_index
            state.edge_values[matched] = True
            undecided[removed] = False
            extra["iter_matched"] = int(matched.size)
            state.messages += 2 * live.size
        else:
            # Announcement (4k): matched nodes tell their remaining
            # neighbours and retire; no first-time commits happen here.
            state.messages += 2 * extra["iter_edges"].size - 2 * extra["iter_matched"]
            still = np.flatnonzero(undecided)
            active = np.zeros(topology.n, dtype=bool)
            active[us[still]] = True
            active[vs[still]] = True
            np.logical_not(active, out=state.halted)
