"""Randomized maximal matching with edge-averaged complexity O(1) (Theorem 4).

Each iteration works on the graph induced by the still-undecided edges:

1. endpoints exchange their current degrees (number of undecided incident
   edges) and identifiers;
2. the lower-identifier endpoint of each undecided edge ``e = {u, v}`` marks
   ``e`` with probability ``1 / (4 (d_u + d_v))`` and tells the other
   endpoint;
3. a marked edge with no other marked edge incident to either endpoint joins
   the matching; both its endpoints become matched and immediately commit all
   their other undecided edges as "not in the matching";
4. newly matched nodes announce themselves so their neighbours can commit the
   shared edges as "not in the matching" too, and retire.

Theorem 4 (and the classical Israeli–Itai analysis) shows each iteration
removes a constant fraction of the undecided edges in expectation: at least
half of the edges touch a "good" node (one with at least a third of its
neighbours of no larger degree), and each good node is matched with constant
probability.  Hence the edge-averaged complexity is O(1) while the worst case
is O(log n) w.h.p. — whereas the node-averaged complexity of maximal matching
is Ω(min{log Δ / log log Δ, √(log n / log log n)}) by Theorem 17.

Each iteration costs four communication rounds.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.local.coroutine import CoroutineAlgorithm
from repro.local.node import NodeRuntime

__all__ = ["RandomizedMaximalMatching"]


class RandomizedMaximalMatching(CoroutineAlgorithm):
    """Theorem 4: Luby/Israeli–Itai style randomized maximal matching."""

    name = "randomized-maximal-matching"
    randomized = True
    uses_identifiers = True  # used to designate the marking endpoint of an edge

    def __init__(self, marking_factor: float = 4.0) -> None:
        """``marking_factor`` is the constant in the 1/(factor·(d_u+d_v)) marking rate."""
        if marking_factor <= 0:
            raise ValueError("marking_factor must be positive")
        self.marking_factor = marking_factor

    def run(self, node: NodeRuntime):
        undecided: Set[int] = set(node.neighbors)
        matched = False

        while undecided:
            # Round 1: exchange (degree in the undecided graph, identifier).
            my_degree = len(undecided)
            inbox = yield dict.fromkeys(undecided, (my_degree, node.identifier))
            info: Dict[int, tuple] = {u: p for u, p in inbox.items() if u in undecided}

            # Round 2: the smaller-identifier endpoint marks each edge.
            marks: Dict[int, bool] = {}
            outbox: Dict[int, object] = {}
            for u, (their_degree, their_id) in info.items():
                if node.identifier < their_id:
                    probability = 1.0 / (self.marking_factor * (my_degree + their_degree))
                    marks[u] = node.rng.random() < probability
                    outbox[u] = ("mark", marks[u])
                else:
                    outbox[u] = ("mark", None)
            inbox = yield outbox
            for u, (_, mark) in inbox.items():
                if u in info and mark is not None:
                    marks[u] = mark

            # Round 3: an isolated marked edge joins the matching.
            marked_count = sum(1 for flag in marks.values() if flag)
            outbox = {
                u: ("others", marked_count - (1 if marks.get(u) else 0)) for u in info
            }
            inbox = yield outbox
            partner = None
            for u, (_, their_other_marks) in inbox.items():
                if u not in info or not marks.get(u):
                    continue
                my_other_marks = marked_count - 1
                if my_other_marks == 0 and their_other_marks == 0:
                    partner = u
                    break
            if partner is not None:
                matched = True
                node.commit_edge(partner, True)
                undecided.discard(partner)
                for u in list(undecided):
                    node.commit_edge(u, False)

            # Round 4: matched nodes announce themselves and retire; everyone
            # else records the edges decided by a newly matched neighbour.
            inbox = yield dict.fromkeys(undecided, ("matched", matched))
            for u, (_, neighbor_matched) in inbox.items():
                if neighbor_matched and u in undecided:
                    node.commit_edge(u, False)
                    undecided.discard(u)
            if matched:
                return
