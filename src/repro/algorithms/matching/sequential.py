"""Sequential (centralised) matching references.

Used by tests and benchmarks as ground truth for matching sizes and as a
baseline when analysing the two-copy lower-bound construction (which contains
a perfect matching that any maximal matching must almost entirely contain).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set, Tuple

import networkx as nx

__all__ = ["sequential_greedy_matching", "random_order_matching", "maximum_matching_size"]

Edge = Tuple[int, int]


def sequential_greedy_matching(
    graph: nx.Graph, order: Optional[Sequence[Edge]] = None
) -> Set[Edge]:
    """Greedy maximal matching scanning edges in the given order."""
    if order is None:
        order = sorted(tuple(sorted(e)) for e in graph.edges())
    matched_nodes: Set[int] = set()
    matching: Set[Edge] = set()
    for u, v in order:
        if u in matched_nodes or v in matched_nodes:
            continue
        matching.add((u, v) if u < v else (v, u))
        matched_nodes.add(u)
        matched_nodes.add(v)
    return matching


def random_order_matching(graph: nx.Graph, seed: int = 0) -> Set[Edge]:
    """Greedy maximal matching over a uniformly random edge order."""
    edges: List[Edge] = [tuple(sorted(e)) for e in graph.edges()]
    random.Random(seed).shuffle(edges)
    return sequential_greedy_matching(graph, edges)


def maximum_matching_size(graph: nx.Graph) -> int:
    """Size of a maximum (not just maximal) matching, via networkx."""
    return len(nx.max_weight_matching(graph, maxcardinality=True))
