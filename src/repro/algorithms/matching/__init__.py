"""Maximal matching algorithms (Theorems 4 and 5)."""

from repro.algorithms.matching.deterministic import DeterministicMaximalMatching
from repro.algorithms.matching.randomized import RandomizedMaximalMatching
from repro.algorithms.matching.sequential import (
    maximum_matching_size,
    random_order_matching,
    sequential_greedy_matching,
)

__all__ = [
    "RandomizedMaximalMatching",
    "DeterministicMaximalMatching",
    "sequential_greedy_matching",
    "random_order_matching",
    "maximum_matching_size",
]
