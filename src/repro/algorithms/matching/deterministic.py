"""Deterministic maximal matching (Theorem 5 iteration structure).

Theorem 5 computes, in every iteration, an integral matching whose weight
(under the edge weights ``w_e = d_u + d_v``) is a constant fraction of
``|E|`` — obtained in the paper by rounding the fractional matching
``f_e = 1/(d_u + d_v)`` with the deterministic algorithm of Ahmadi, Kuhn and
Oshman — and then removes the matched nodes, which kills at least a constant
fraction of the edges.  Repeating for ``Θ(log Δ)`` iterations also halves the
number of non-isolated nodes, giving edge-averaged complexity
``O(log² Δ + log* n)`` and node-averaged complexity ``O(log³ Δ + log* n)``.

As documented in DESIGN.md (substitutions), we keep the accounting — pick
heavy edges, add them, remove the incident edges — but compute the
per-iteration matching with a deterministic *local-maximum* rule instead of
the full AKO rounding: an undecided edge joins the matching when its key
``(d_u + d_v, ID-pair)`` is strictly larger than the key of every adjacent
undecided edge.  Local-maximum edges are heavy by construction (they beat all
their neighbours' weights) and at least one exists in every connected piece
of undecided edges, so the algorithm is correct and makes progress every
iteration; empirically it removes a constant fraction of the edges per
iteration on the benchmark workloads, reproducing the paper's
"edge-averaged ≪ node-averaged ≪ worst-case" separation.

Each iteration costs three communication rounds.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.local.coroutine import CoroutineAlgorithm
from repro.local.node import NodeRuntime

__all__ = ["DeterministicMaximalMatching"]

EdgeKey = Tuple[int, int, int]


class DeterministicMaximalMatching(CoroutineAlgorithm):
    """Theorem 5 (substituted rounding): deterministic weight-ranked matching."""

    name = "deterministic-maximal-matching"
    randomized = False
    uses_identifiers = True

    def run(self, node: NodeRuntime):
        undecided: Set[int] = set(node.neighbors)
        matched = False

        while undecided:
            # Round 1: exchange (current degree, identifier) with the
            # endpoints of the undecided incident edges.
            my_degree = len(undecided)
            inbox = yield {u: (my_degree, node.identifier) for u in undecided}
            info = {u: p for u, p in inbox.items() if u in undecided}

            # Both endpoints derive the same comparable key for each edge:
            # heavier edges (larger endpoint-degree sum) win, identifiers
            # break ties.
            keys: Dict[int, EdgeKey] = {}
            for u, (their_degree, their_id) in info.items():
                keys[u] = (
                    my_degree + their_degree,
                    max(node.identifier, their_id),
                    min(node.identifier, their_id),
                )

            # Round 2: report, per edge, the best key among my *other* edges.
            best_other: Dict[int, Optional[EdgeKey]] = {}
            for u in keys:
                others = [keys[w] for w in keys if w != u]
                best_other[u] = max(others) if others else None
            inbox = yield {u: ("other", best_other[u]) for u in keys}

            # Decide: an edge that beats both endpoints' other edges is a
            # local maximum and joins the matching.
            for u, (_, their_best_other) in inbox.items():
                if u not in keys or matched:
                    continue
                key = keys[u]
                beats_mine = best_other[u] is None or key > best_other[u]
                beats_theirs = their_best_other is None or key > tuple(their_best_other)
                if beats_mine and beats_theirs:
                    matched = True
                    node.commit_edge(u, True)
                    undecided.discard(u)
                    for w in list(undecided):
                        node.commit_edge(w, False)

            # Round 3: matched nodes announce themselves and retire.
            inbox = yield {u: ("matched", matched) for u in undecided}
            for u, (_, neighbor_matched) in inbox.items():
                if neighbor_matched and u in undecided:
                    node.commit_edge(u, False)
                    undecided.discard(u)
            if matched:
                return
