"""Self-stabilising variants of Luby MIS and randomized matching.

The plain algorithms of :mod:`repro.algorithms.mis` /
:mod:`repro.algorithms.matching` treat crash-stop faults as *graceful
degradation*: survivors finish, crashed nodes are excused, and the surviving
configuration is scored leniently (a crashed-but-committed MIS member still
covers its neighbours).  The algorithms here go one step further — they
**recover**: when a neighbour crashes, affected survivors revoke their
outputs (:meth:`~repro.local.node.NodeRuntime.revoke` /
:meth:`~repro.local.node.NodeRuntime.revoke_edge`) and locally re-run the
protocol until the configuration is valid *for the survivors alone*.  The
engines record the per-round :class:`~repro.core.metrics.RecoveryTimeline`
(pending outputs and strict induced-subnetwork validity), from which
:func:`repro.core.metrics.measure` derives time-to-restabilise statistics.

Both algorithms are **perpetual** protocols: decided nodes keep participating
(an MIS member beacons its membership forever; a matched node announces its
match forever), because those standing signals are exactly what lets a
neighbour detect, after a crash, whether its own decision is still
justified.  Only nodes that can never interact again halt (isolated nodes).

Self-stabilisation guarantees hold under **crash faults** (any schedule of
crash-stop failures): after the last crash, the configuration re-converges
to a valid solution on the induced survivor subgraph with probability 1.
Under message drops the protocols remain safe in the sense that every run
is validator-checked, but simultaneous adjacent decisions can no longer be
excluded (two mutual bids can both be dropped) — recovery claims are made
for crash schedules only.

Protocol sketches:

* :class:`SelfStabilizingLubyMIS` — one-round bid/beacon Luby.  Undecided
  nodes broadcast a fresh random bid each round; MIS members broadcast an
  ``("in",)`` beacon.  A node hearing a beacon leaves (commits ``False``);
  a node whose bid beats every bid it received joins (commits ``True``).
  ``out`` nodes track their live dominators (the in-neighbours heard last
  round); when the last dominator crashes, the runner's
  ``neighbor_crashed`` hook makes them revoke and rebid.  The array twin
  implements the same rule from the round view's ``newly_crashed``:
  after a crash, every live ``out`` node without a live in-neighbour is
  reset to undecided (``node_rounds`` back to ``-1``).
* :class:`SelfStabilizingMatching` — parity-phased propose/accept.  Free
  nodes coin-flip into proposer/listener roles on odd rounds; listeners
  accept one live proposal on even rounds, and both endpoints commit the
  matched edge ``True`` plus their other incident edges ``False``.  Only
  matched nodes ever commit edges — announcement receivers do not — so a
  widow (a node whose partner crashed) can revoke *its own* commits and
  re-enter the free pool without colliding with standing counterpart
  commits.  Matched nodes broadcast ``("matched",)`` every round; free
  nodes rebuild a ``taken`` estimate of unavailable neighbours from each
  round's announcements (a widow stops announcing, so it reappears as a
  candidate one round after revoking).  This one ships in coroutine form
  only
  (:meth:`SelfStabilizingMatching.as_array_algorithm` returns ``None``):
  revocation makes the per-edge bookkeeping inherently sequential per
  node, and the MIS twin already exercises the array-engine recovery path.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.local.algorithm import Broadcast, NodeAlgorithm
from repro.local.engine import ArrayAlgorithm, ArrayState, ArrayTopology
from repro.local.faults import RoundFaults
from repro.local.node import NodeRuntime

__all__ = [
    "SelfStabilizingLubyMIS",
    "SelfStabilizingLubyMISArray",
    "SelfStabilizingMatching",
]

#: Node statuses of the self-stabilising MIS (ints, shared by both forms).
_UNDECIDED, _IN, _OUT = 0, 1, 2


class SelfStabilizingLubyMIS(NodeAlgorithm):
    """Restart-on-crash Luby MIS (one-round bid/beacon protocol).

    Every round, every undecided node broadcasts a fresh ``(uniform, id)``
    bid and every MIS member broadcasts an ``("in",)`` beacon.  On receive,
    an undecided node that heard a beacon commits ``False`` (a neighbour is
    in); otherwise it commits ``True`` iff its own bid beats every bid it
    received (ties broken by identifier, as in plain Luby).  Members never
    revoke — under crash faults no two adjacent nodes can join in the same
    round (both directions of the shared edge are delivered, so exactly one
    bid wins), and a member's validity cannot be broken by a neighbour
    crashing.

    Recovery: ``out`` nodes remember the in-neighbours they heard last
    round (their *dominators* — refreshed every round, since beacons are
    perpetual).  The runner's ``neighbor_crashed`` hook removes the
    casualty; when no dominator remains, the node revokes its ``False`` and
    rebids.  If another member is adjacent its beacon re-covers the node
    one round later; otherwise the node competes to join.
    """

    name = "selfstab-luby-mis"
    randomized = True
    uses_identifiers = True  # bid tie-breaking only
    self_stabilizing = True

    def init(self, node: NodeRuntime) -> None:
        node.state["status"] = _UNDECIDED
        node.state["dominators"] = set()
        if node.degree == 0:
            node.state["status"] = _IN
            node.commit(True)
            node.halt()

    def send(self, node: NodeRuntime) -> Any:
        status = node.state["status"]
        if status == _IN:
            return Broadcast(("in",))
        if status == _UNDECIDED:
            bid = (node.rng.random(), node.identifier)
            node.state["bid"] = bid
            return Broadcast(("bid", bid))
        return {}

    def receive(self, node: NodeRuntime, messages: Dict[int, Any]) -> None:
        status = node.state["status"]
        if status == _IN:
            return
        dominators = {src for src, msg in messages.items() if msg[0] == "in"}
        if status == _OUT:
            # Refresh the dominator view; membership never changes here
            # (only the crash hook can clear the last dominator).
            node.state["dominators"] = dominators
            return
        if dominators:
            node.state["status"] = _OUT
            node.state["dominators"] = dominators
            node.commit(False)
            return
        bid = node.state["bid"]
        rivals = [msg[1] for msg in messages.values() if msg[0] == "bid"]
        if not rivals or bid > max(rivals):
            node.state["status"] = _IN
            node.commit(True)

    def neighbor_crashed(self, node: NodeRuntime, neighbor: int) -> None:
        state = node.state
        if state["status"] != _OUT:
            return
        dominators = state["dominators"]
        dominators.discard(neighbor)
        if not dominators:
            # The last member covering this node died: the standing False
            # is no longer justified on the survivor subgraph.  Revoke and
            # rebid — a surviving member one hop away re-covers the node
            # with its next beacon.
            state["status"] = _UNDECIDED
            node.revoke()

    def as_array_algorithm(self) -> "SelfStabilizingLubyMISArray":
        return SelfStabilizingLubyMISArray()


class SelfStabilizingLubyMISArray(ArrayAlgorithm):
    """Array-engine twin of :class:`SelfStabilizingLubyMIS`.

    Same bid/beacon protocol, vectorised: one uniform block per round over
    the alive undecided nodes (ascending vertex order — the engine's
    documented seed schedule), beacons folded over the delivered directions,
    and joins computed with plain Luby's masked local-maximum kernel.  The
    RNG schedule differs from the coroutine form (block PCG64 vs per-node
    Mersenne), so the two forms produce different — but both validator-
    checked — traces, like every other engine twin in this repository.

    Recovery needs no engine callback: on rounds with fresh casualties the
    step resets every live ``out`` node without a live in-neighbour to
    undecided (``node_rounds`` slot back to ``-1``, which re-pends it for
    the engine's completion check) — exactly the coroutine's
    last-dominator-died rule, since dominator sets refresh from the
    perpetual beacons every round.
    """

    name = "selfstab-luby-mis"
    labels_nodes = True
    supports_faults = True
    self_stabilizing = True

    def init_arrays(
        self, topology: ArrayTopology, rng: np.random.Generator
    ) -> ArrayState:
        state = ArrayState(topology.n, topology.m, nodes=True, edges=False)
        status = np.full(topology.n, _UNDECIDED, dtype=np.int8)
        isolated = topology.degrees == 0
        if isolated.any():
            status[isolated] = _IN
            state.node_rounds[isolated] = 0
            state.node_values[isolated] = True
            state.halted |= isolated
        state.extra["status"] = status
        return state

    def step(
        self,
        round_index: int,
        state: ArrayState,
        topology: ArrayTopology,
        rng: np.random.Generator,
        faults: Optional[RoundFaults] = None,
    ) -> None:
        status = state.extra["status"]
        n = topology.n
        us, vs = topology.edge_us, topology.edge_vs
        if faults is None:
            alive = np.ones(n, dtype=bool)
            deliver_uv = deliver_vu = np.ones(topology.m, dtype=bool)
        else:
            alive = faults.alive
            deliver_uv, deliver_vu = faults.deliver_uv, faults.deliver_vu
            if faults.newly_crashed:
                members = (status == _IN) & alive
                covered = np.zeros(n, dtype=bool)
                covered[vs[members[us]]] = True
                covered[us[members[vs]]] = True
                orphaned = (status == _OUT) & alive & ~covered
                if orphaned.any():
                    status[orphaned] = _UNDECIDED
                    state.node_rounds[orphaned] = -1
                    state.node_values[orphaned] = False

        undecided = (status == _UNDECIDED) & alive
        members = (status == _IN) & alive
        bidders = np.flatnonzero(undecided)
        bids = np.full(n, -1.0)
        bids[bidders] = rng.random(bidders.size)

        heard = np.zeros(n, dtype=bool)
        heard[vs[members[us] & deliver_uv]] = True
        heard[us[members[vs] & deliver_vu]] = True

        # Local bid maxima over the delivered undecided neighbourhood —
        # plain Luby's masked kernel, imported lazily to avoid a cycle at
        # package import time.
        from repro.algorithms.mis.luby import _luby_joins_masked

        joins = (
            _luby_joins_masked(bids, undecided, topology, deliver_uv, deliver_vu)
            & ~heard
        )
        newly_out = undecided & heard
        if joins.any():
            status[joins] = _IN
            state.node_rounds[joins] = round_index
            state.node_values[joins] = True
        if newly_out.any():
            status[newly_out] = _OUT
            state.node_rounds[newly_out] = round_index
            state.node_values[newly_out] = False
        state.messages += int(
            topology.degrees[undecided].sum() + topology.degrees[members].sum()
        )


class SelfStabilizingMatching(NodeAlgorithm):
    """Restart-on-crash randomized matching (parity-phased propose/accept).

    Rounds alternate between **propose** (odd) and **accept** (even):

    * Propose round: every free node flips a fair coin; proposers send
      ``("propose",)`` to one uniformly random neighbour believed free
      (not crashed, not ``taken``); listeners stay silent and store the
      proposals they receive.
    * Accept round: a listener holding proposals picks one whose proposer
      is still alive, answers ``("accept",)``, and both endpoints commit —
      the matched edge ``True``, every other incident edge ``False`` —
      during the accept round's receive phase (same round stamp on both
      sides).  Two proposers that proposed to each other simply waste the
      iteration.

    Matched nodes broadcast ``("matched",)`` every round, forever; every
    node rebuilds a ``taken`` view of unavailable neighbours from each
    round's announcements (a widow stops announcing the moment it revokes,
    so it re-enters its neighbours' candidate pools one round later).
    Crucially, **only matched nodes commit edges**:
    announcement receivers never commit the shared edge, so all standing
    ``False`` commits are backed by a live matching and can be revoked
    coherently.

    Recovery: the ``neighbor_crashed`` hook marks the casualty dead and,
    if it was this node's partner, revokes *all* of the node's edge
    commits and re-enters it into the free pool.  The completion tracker
    re-pends exactly the edges no other commitment covers (a live
    counterpart's own commit, or a crash excusal, keeps an edge decided),
    and the run continues until the survivors' matching is maximal again.
    The protocol converges after the last crash with probability 1: two
    adjacent free survivors eventually pick the proposer/listener roles
    and the right candidate in the same iteration.

    Ships in coroutine form only; ``as_array_algorithm`` returns ``None``
    (see the module docstring).
    """

    name = "selfstab-matching"
    randomized = True
    uses_identifiers = False
    self_stabilizing = True

    def init(self, node: NodeRuntime) -> None:
        node.state.update(
            partner=None,
            dead=set(),
            taken=set(),
            proposals=[],
            proposal_to=None,
            accepted=None,
        )
        if node.degree == 0:
            node.halt()

    def send(self, node: NodeRuntime) -> Any:
        state = node.state
        if state["partner"] is not None:
            return Broadcast(("matched",))
        sending_round = node.round + 1  # send() runs before the round stamp
        if sending_round % 2 == 1:
            # Propose round: coin-flip into the proposer role, then pick a
            # uniformly random neighbour believed free.
            state["proposal_to"] = None
            if node.rng.random() < 0.5:
                candidates = [
                    u
                    for u in node.neighbors
                    if u not in state["dead"] and u not in state["taken"]
                ]
                if candidates:
                    target = candidates[node.rng.randrange(len(candidates))]
                    state["proposal_to"] = target
                    return {target: ("propose",)}
            return {}
        # Accept round: listeners answer one live proposal.
        state["accepted"] = None
        if state["proposal_to"] is None and state["proposals"]:
            live = [u for u in state["proposals"] if u not in state["dead"]]
            if live:
                chosen = live[node.rng.randrange(len(live))]
                state["accepted"] = chosen
                return {chosen: ("accept",)}
        return {}

    def receive(self, node: NodeRuntime, messages: Dict[int, Any]) -> None:
        state = node.state
        # ``taken`` is rebuilt from this round's announcements, not
        # accumulated: matched nodes beacon every round, so a fresh view is
        # always available, and a widow silently drops out of everyone's
        # ``taken`` one round after revoking (an accumulated set would let
        # two widows believe each other matched forever — a livelock).
        taken = set()
        proposals = []
        accepted_by = None
        for src, msg in messages.items():
            kind = msg[0]
            if kind == "matched":
                taken.add(src)
            elif kind == "propose":
                proposals.append(src)
            elif kind == "accept":
                accepted_by = src
        state["taken"] = taken
        if state["partner"] is not None:
            return
        if node.round % 2 == 1:
            state["proposals"] = proposals
            return
        state["proposals"] = []
        partner = None
        if state["accepted"] is not None:
            # This node accepted a proposal this round.  The proposer was
            # alive at the round start (checked in send), so it survived
            # the round and received the acceptance — both sides commit.
            partner = state["accepted"]
        elif accepted_by is not None and accepted_by == state["proposal_to"]:
            partner = accepted_by
        if partner is None:
            return
        state["partner"] = partner
        node.commit_edge(partner, True)
        for u in node.neighbors:
            if u != partner:
                node.commit_edge(u, False)

    def neighbor_crashed(self, node: NodeRuntime, neighbor: int) -> None:
        state = node.state
        state["dead"].add(neighbor)
        state["taken"].discard(neighbor)
        if state["partner"] == neighbor:
            # Widowed: withdraw every own edge commit (the tracker re-pends
            # exactly those no counterpart or crash excusal still covers)
            # and re-enter the free pool.
            state["partner"] = None
            state["proposals"] = []
            state["proposal_to"] = None
            state["accepted"] = None
            for u in node.neighbors:
                node.revoke_edge(u)
