"""Distributed algorithms for the problems studied in the paper."""

from repro.algorithms import coloring, matching, mis, orientation, ruling_set, selfstab

__all__ = ["mis", "ruling_set", "matching", "coloring", "orientation", "selfstab"]
