"""Randomized (2, 2)-ruling set with node-averaged complexity O(1) (Theorem 2).

The algorithm iterates the following constant-round procedure on the graph
induced by the still-undecided nodes:

1. every node marks itself with probability ``1 / (deg(v) + 1)`` (degrees in
   the current, shrinking graph);
2. a marked node joins the ruling set ``S`` if it has no marked *higher
   priority* neighbour, where ``w`` has higher priority than ``v`` if
   ``deg(w) > deg(v)``, or ``deg(w) = deg(v)`` and ``ID(w) > ID(v)``;
3. every node within distance 2 of a new ``S``-node is deleted (it commits
   "not in the ruling set") and the procedure recurses on the rest.

Theorem 2 shows that each iteration deletes a constant fraction of the nodes
in expectation (at least half the nodes are "good" and each good node is
deleted with constant probability), so the node-averaged complexity is O(1) —
in sharp contrast with the Ω(min{log Δ / log log Δ, √(log n / log log n)})
node-averaged lower bound for MIS (Theorem 16), even though a (2,2)-ruling
set is only a minimal relaxation of MIS ( = (2,1)-ruling set).

Each iteration costs four communication rounds: degree exchange, mark
exchange, join announcement, and one more round of "S is nearby" propagation.
"""

from __future__ import annotations

from repro.local.coroutine import CoroutineAlgorithm
from repro.local.node import NodeRuntime

__all__ = ["RandomizedTwoTwoRulingSet"]


class RandomizedTwoTwoRulingSet(CoroutineAlgorithm):
    """Theorem 2: randomized (2,2)-ruling set, node outputs are membership flags."""

    name = "randomized-(2,2)-ruling-set"
    randomized = True
    uses_identifiers = True  # used only to break priority ties

    def run(self, node: NodeRuntime):
        if node.degree == 0:
            node.commit(True)
            return

        while not node.has_committed:
            # Round 1: discover which neighbours are still undecided and learn
            # their current degrees (degree = number of undecided neighbours).
            inbox = yield {u: "active" for u in node.neighbors}
            active_neighbors = set(inbox)
            degree = len(active_neighbors)
            if degree == 0:
                # Isolated in the residual graph: no undecided neighbour can
                # cover this node, so it must join the ruling set itself.
                node.commit(True)
                return

            # Round 2: mark with probability 1/(deg+1) and exchange
            # (degree, identifier, marked) triples for the priority rule.
            marked = node.rng.random() < 1.0 / (degree + 1)
            inbox = yield {u: (degree, node.identifier, marked) for u in active_neighbors}
            joins = False
            if marked:
                my_priority = (degree, node.identifier)
                joins = not any(
                    m and (d, i) > my_priority for d, i, m in inbox.values()
                )
            if joins:
                node.commit(True)

            # Round 3: announce membership; distance-1 nodes learn about S.
            inbox = yield {u: joins for u in active_neighbors}
            near_one = joins or any(inbox.values())

            # Round 4: propagate one more hop; distance-2 nodes learn about S.
            inbox = yield {u: near_one for u in active_neighbors}
            near_two = near_one or any(inbox.values())

            # Everyone within distance 2 of S retires; survivors re-announce
            # themselves at the start of the next iteration, which keeps the
            # residual graph consistent without an extra round.
            if near_two and not node.has_committed:
                node.commit(False)
            if node.has_committed:
                return
