"""Ruling set algorithms (Theorems 2 and 3)."""

from repro.algorithms.ruling_set.deterministic import DeterministicRulingSet
from repro.algorithms.ruling_set.randomized import RandomizedTwoTwoRulingSet

__all__ = ["RandomizedTwoTwoRulingSet", "DeterministicRulingSet"]
