"""Deterministic ruling sets with node-averaged complexity O(log* n) (Theorem 3).

The algorithm follows the structure of Theorem 3 / its proof in Appendix B:

* It runs a fixed number of **halving iterations**.  Each iteration computes a
  dominating set ``D_total`` of the graph induced by the still-active nodes
  that (in practice) contains at most about half of them, lets every other
  active node commit "not in the ruling set", and continues with ``D_total``
  only.  The dominating set is the footnote-7 construction of the paper:

  1. every active node points to its highest-identifier active neighbour,
     which yields an oriented pseudo-forest;
  2. parents of leaves of that pseudo-forest join ``D``;
  3. nodes of ``N[D]`` are set aside, and the pseudo-forest induced by the
     remaining nodes is 8-coloured with Cole–Vishkin colour reduction
     (O(log* n) rounds) and turned into an independent dominating set of the
     remaining pseudo-forest colour class by colour class;
  4. ``D_total`` is the union of ``D`` and that independent set.

* After ``max_iterations`` iterations (``⌈log₂ Δ⌉`` for the
  ``(2, O(log Δ))``-ruling set, ``⌈log₂ log₂ n⌉`` for the
  ``(2, O(log log n))`` variant) the few remaining active nodes compute a
  maximal independent set among themselves; this MIS is the ruling set.
  The paper finishes with the ``O(Δ + log* n)`` MIS of [BEK15] (respectively
  the poly-log MIS of [RG20]); we substitute the simpler iterated
  local-minimum MIS, which is correct and only runs on the small residual
  instance, so the node-averaged accounting of the theorem is unaffected
  (see DESIGN.md, substitutions).

Every node that retires in iteration ``i`` is adjacent to a node that stays
active in iteration ``i + 1``, so the produced independent set is a
``(2, max_iterations + 1)``-ruling set; :attr:`DeterministicRulingSet.coverage_radius`
exposes that bound so callers can validate against the right problem spec.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Set

from repro.algorithms.coloring.cole_vishkin import FINAL_COLOR_BOUND, cv_rounds_needed, cv_step
from repro.local.coroutine import CoroutineAlgorithm
from repro.local.network import Network
from repro.local.node import NodeRuntime

__all__ = ["DeterministicRulingSet"]


class DeterministicRulingSet(CoroutineAlgorithm):
    """Theorem 3: deterministic ruling set via dominating-set halving iterations."""

    name = "deterministic-ruling-set"
    randomized = False
    uses_identifiers = True

    def __init__(self, max_iterations: int, id_bits: int) -> None:
        """Configure the algorithm.

        Args:
            max_iterations: number of dominating-set halving iterations; the
                produced set is a ``(2, max_iterations + 1)``-ruling set.
            id_bits: bit length of the identifier space (global knowledge);
                fixes the deterministic Cole–Vishkin schedule length.
        """
        if max_iterations < 0:
            raise ValueError("max_iterations must be non-negative")
        if id_bits < 1:
            raise ValueError("id_bits must be positive")
        self.max_iterations = max_iterations
        self.id_bits = id_bits
        self.cv_rounds = cv_rounds_needed(id_bits)

    # ------------------------------------------------------------------ #
    # Convenience constructors matching the two variants of Theorem 3
    # ------------------------------------------------------------------ #

    @classmethod
    def for_network(cls, network: Network, variant: str = "log-delta") -> "DeterministicRulingSet":
        """Instantiate with the iteration budget of Theorem 3.

        ``variant="log-delta"`` gives the ``(2, O(log Δ))``-ruling set,
        ``variant="log-log-n"`` the ``(2, O(log log n))`` one.
        """
        id_bits = max(1, network.id_bit_length())
        delta = max(1, network.max_degree())
        if variant == "log-delta":
            iterations = max(1, math.ceil(math.log2(delta + 1)))
        elif variant == "log-log-n":
            iterations = max(1, math.ceil(math.log2(max(2.0, math.log2(max(2, network.n))))))
        else:
            raise ValueError(f"unknown variant {variant!r}")
        return cls(max_iterations=iterations, id_bits=id_bits)

    @property
    def coverage_radius(self) -> int:
        """β such that the output is guaranteed to be a (2, β)-ruling set."""
        return self.max_iterations + 1

    # ------------------------------------------------------------------ #

    def run(self, node: NodeRuntime):
        if node.degree == 0:
            node.commit(True)
            return

        for _ in range(self.max_iterations):
            survived = yield from self._halving_iteration(node)
            if node.has_committed:
                return
            if not survived:
                # Defensive: _halving_iteration always either commits or
                # reports survival, so this branch is unreachable.
                return

        yield from self._final_mis(node)

    # ------------------------------------------------------------------ #
    # One dominating-set halving iteration (fixed number of yields for every
    # active node, so that all survivors stay phase-aligned).
    # ------------------------------------------------------------------ #

    def _halving_iteration(self, node: NodeRuntime):
        my_id = node.identifier

        # Round 1: discover active neighbours and their identifiers.
        inbox = yield {u: ("active", my_id) for u in node.neighbors}
        active_ids: Dict[int, int] = {u: payload[1] for u, payload in inbox.items()}
        if not active_ids:
            # Isolated in the residual graph: nobody can dominate this node,
            # so it joins the ruling set and leaves the computation.
            node.commit(True)
            return False
        parent = max(active_ids, key=lambda u: active_ids[u])

        # Round 2: pseudo-forest pointers; learn which neighbours point here.
        inbox = yield {parent: "child"}
        children: Set[int] = {u for u, payload in inbox.items() if payload == "child"}
        is_leaf = len(children) == 0

        # Round 3: leaves report to their parent; parents of leaves join D.
        inbox = yield ({parent: "leaf"} if is_leaf else {})
        in_dominating = any(payload == "leaf" for payload in inbox.values())

        # Round 4: D announces itself; N[D] is set aside.
        inbox = yield {u: ("D", in_dominating) for u in active_ids}
        near_dominating = in_dominating or any(payload[1] for payload in inbox.values())

        # Round 5: exchange N[D] status so the remaining pseudo-forest is known.
        inbox = yield {u: ("ND", near_dominating) for u in active_ids}
        neighbor_near: Dict[int, bool] = {u: payload[1] for u, payload in inbox.items()}
        remaining = not near_dominating
        pf_parent: Optional[int] = None
        pf_children: Set[int] = set()
        if remaining:
            if not neighbor_near.get(parent, True):
                pf_parent = parent
            pf_children = {c for c in children if not neighbor_near.get(c, True)}
        pf_neighbors = set(pf_children)
        if pf_parent is not None:
            pf_neighbors.add(pf_parent)

        # Cole–Vishkin colour reduction on the remaining pseudo-forest.
        color = my_id
        for _ in range(self.cv_rounds):
            if remaining:
                inbox = yield {c: ("color", color) for c in pf_children}
                if pf_parent is not None and pf_parent in inbox:
                    parent_color = inbox[pf_parent][1]
                else:
                    # Roots use a virtual parent whose colour differs in bit 0.
                    parent_color = color ^ 1
                color = cv_step(color, parent_color)
            else:
                yield {}

        # Colour-by-colour independent dominating set of the remaining
        # pseudo-forest (colours are < FINAL_COLOR_BOUND after the reduction).
        in_submis = False
        blocked = False
        for colour_class in range(FINAL_COLOR_BOUND):
            joining = remaining and not in_submis and not blocked and color == colour_class
            if joining:
                in_submis = True
                inbox = yield {u: "submis" for u in pf_neighbors}
            else:
                inbox = yield {}
            if any(payload == "submis" for payload in inbox.values()):
                blocked = True

        # Final round of the iteration: D_total = D ∪ subMIS announces itself;
        # everyone else is dominated and retires.
        in_d_total = in_dominating or in_submis
        inbox = yield {u: ("Dtotal", in_d_total) for u in active_ids}
        if not in_d_total:
            node.commit(False)
            return False
        return True

    # ------------------------------------------------------------------ #
    # Final maximal independent set among the surviving active nodes.
    # ------------------------------------------------------------------ #

    def _final_mis(self, node: NodeRuntime):
        my_id = node.identifier
        while not node.has_committed:
            inbox = yield {u: ("final-id", my_id) for u in node.neighbors}
            competitor_ids = [
                payload[1] for payload in inbox.values() if payload[0] == "final-id"
            ]
            if all(my_id < other for other in competitor_ids):
                node.commit(True)

            joined = node.has_committed
            inbox = yield {u: ("final-join", joined) for u in node.neighbors}
            if not node.has_committed and any(
                payload[1] for payload in inbox.values() if payload[0] == "final-join"
            ):
                node.commit(False)
