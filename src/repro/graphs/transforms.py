"""Graph transforms used throughout the paper's arguments.

* :func:`line_graph` — the line graph ``H`` of ``G``.  A maximal matching of
  ``G`` is exactly an MIS of ``H``, and the node-averaged complexity of that
  MIS equals the edge-averaged complexity of the matching (Section 1.1).
* :func:`power_graph` — ``G^k``, connecting nodes at distance ≤ k.  Used by
  the sinkless-orientation clustering step (an MIS of ``G^{2r+1}`` is a
  ``(2r+2, 2r+1)``-ruling set of ``G``).
* :func:`disjoint_union` — union of two graphs with relabelled vertices.
* :func:`two_copies_with_perfect_matching` — the "two copies plus a perfect
  matching between them" operation used by the maximal-matching lower bound
  (Theorem 17).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import networkx as nx

__all__ = [
    "line_graph",
    "power_graph",
    "disjoint_union",
    "two_copies_with_perfect_matching",
]

Edge = Tuple[int, int]


def line_graph(graph: nx.Graph) -> Tuple[nx.Graph, Dict[int, Edge]]:
    """Return the line graph of ``graph`` on integer vertices.

    Returns:
        A pair ``(H, vertex_to_edge)`` where ``H`` is the line graph on
        vertices ``0..m-1`` and ``vertex_to_edge[i]`` is the edge of the
        original graph represented by line-graph vertex ``i``.
    """
    edges: List[Edge] = [tuple(sorted(e)) for e in graph.edges()]
    edges.sort()
    index = {e: i for i, e in enumerate(edges)}
    h = nx.Graph()
    h.add_nodes_from(range(len(edges)))
    for v in graph.nodes():
        incident = [tuple(sorted((v, u))) for u in graph.neighbors(v)]
        for i in range(len(incident)):
            for j in range(i + 1, len(incident)):
                h.add_edge(index[incident[i]], index[incident[j]])
    return h, {i: e for e, i in index.items()}


def power_graph(graph: nx.Graph, k: int) -> nx.Graph:
    """The k-th power ``G^k``: an edge between every pair at distance ≤ k."""
    if k < 1:
        raise ValueError("k must be at least 1")
    power = nx.Graph()
    power.add_nodes_from(graph.nodes())
    for source in graph.nodes():
        dist = {source: 0}
        frontier = [source]
        for d in range(1, k + 1):
            nxt = []
            for v in frontier:
                for u in graph.neighbors(v):
                    if u not in dist:
                        dist[u] = d
                        nxt.append(u)
            frontier = nxt
        for target in dist:
            if target != source:
                power.add_edge(source, target)
    return power


def disjoint_union(first: nx.Graph, second: nx.Graph) -> Tuple[nx.Graph, Dict[int, int], Dict[int, int]]:
    """Disjoint union with both parts relabelled to fresh integers.

    Returns the union plus the two relabelling maps (original → new vertex).
    """
    map_first = {v: i for i, v in enumerate(first.nodes())}
    offset = len(map_first)
    map_second = {v: offset + i for i, v in enumerate(second.nodes())}
    union = nx.Graph()
    union.add_nodes_from(range(offset + len(map_second)))
    union.add_edges_from((map_first[u], map_first[v]) for u, v in first.edges())
    union.add_edges_from((map_second[u], map_second[v]) for u, v in second.edges())
    return union, map_first, map_second


def two_copies_with_perfect_matching(
    graph: nx.Graph,
    partner: Optional[Callable[[int], int]] = None,
) -> Tuple[nx.Graph, Dict[int, int], Dict[int, int], List[Edge]]:
    """Two disjoint copies of ``graph`` joined by a perfect matching.

    Copy A keeps each vertex ``v`` as ``map_a[v]`` and copy B as ``map_b[v]``;
    the matching joins ``map_a[v]`` to ``map_b[partner(v)]`` (``partner``
    defaults to the identity, i.e. each node is matched to its own copy, the
    "same cluster" rule of the Theorem 17 construction).

    Returns:
        ``(union, map_a, map_b, matching_edges)``.
    """
    union, map_a, map_b = disjoint_union(graph, graph)
    matching: List[Edge] = []
    used_mates: set = set()
    for v in graph.nodes():
        mate = partner(v) if partner is not None else v
        if mate not in map_b:
            raise ValueError(f"partner({v}) = {mate} is not a vertex of the graph")
        if mate in used_mates:
            # Distinct edges are not enough: a repeated mate shares a copy-B
            # endpoint, so the edge set would not be a perfect matching.
            raise ValueError(
                "partner function must be a bijection to obtain a perfect matching"
            )
        used_mates.add(mate)
        a, b = map_a[v], map_b[mate]
        union.add_edge(a, b)
        matching.append((a, b) if a < b else (b, a))
    return union, map_a, map_b, matching
