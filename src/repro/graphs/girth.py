"""Girth computation and high-girth graph construction.

The lower-bound machinery of the paper hinges on (almost) high-girth graphs:
a node whose ``k``-hop view is tree-like cannot distinguish the two special
clusters.  This module provides:

* :func:`girth` — exact girth via BFS from every vertex,
* :func:`shortest_cycle_through` — length of the shortest cycle through a
  given vertex (∞ if none),
* :func:`nodes_with_tree_like_view` — the set of nodes whose ``r``-hop view
  contains no cycle,
* :func:`high_girth_regular_graph` — a d-regular graph of girth > ``g`` built
  by local edge rewiring (a pragmatic stand-in for explicit high-girth
  constructions, sufficient at benchmark scale).
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import List, Optional, Set

import networkx as nx

__all__ = [
    "girth",
    "shortest_cycle_through",
    "has_cycle_within_distance",
    "nodes_with_tree_like_view",
    "tree_like_fraction",
    "high_girth_regular_graph",
]


def shortest_cycle_through(graph: nx.Graph, source: int) -> float:
    """Length of the shortest cycle passing through ``source`` (``inf`` if none).

    BFS from ``source``; a non-tree edge between two visited vertices closes a
    cycle through the source of length ``dist[u] + dist[v] + 1`` only if the
    two BFS branches are distinct, so we track the first-hop ancestor of every
    visited vertex.
    """
    dist = {source: 0}
    branch = {source: source}
    best = math.inf
    queue = deque([source])
    while queue:
        v = queue.popleft()
        if dist[v] * 2 >= best:
            continue
        for u in graph.neighbors(v):
            if u not in dist:
                dist[u] = dist[v] + 1
                branch[u] = u if v == source else branch[v]
                queue.append(u)
            else:
                if u == source or branch.get(u) == branch.get(v):
                    # Same BFS branch: the walk does not close a cycle through
                    # `source`, unless it is the trivial back edge to source.
                    if u == source and dist[v] >= 2:
                        best = min(best, dist[v] + 1)
                    continue
                best = min(best, dist[u] + dist[v] + 1)
    return best


def girth(graph: nx.Graph) -> float:
    """Exact girth of the graph (``inf`` for forests)."""
    best = math.inf
    for v in graph.nodes():
        best = min(best, _shortest_cycle_from(graph, v, int(best) if best < math.inf else None))
        if best == 3:
            return 3
    return best


def _shortest_cycle_from(graph: nx.Graph, source: int, cap: Optional[int]) -> float:
    """Shortest cycle found by BFS from ``source`` (not necessarily through it)."""
    dist = {source: 0}
    parent = {source: None}
    best = math.inf
    queue = deque([source])
    while queue:
        v = queue.popleft()
        if cap is not None and dist[v] * 2 + 1 > cap:
            break
        for u in graph.neighbors(v):
            if u == parent[v]:
                continue
            if u not in dist:
                dist[u] = dist[v] + 1
                parent[u] = v
                queue.append(u)
            else:
                best = min(best, dist[u] + dist[v] + 1)
    return best


def has_cycle_within_distance(graph: nx.Graph, source: int, radius: int) -> bool:
    """Whether the ``radius``-hop view of ``source`` contains a cycle."""
    # Collect the view's vertex set by BFS, then count edges: a view with
    # |E| >= |V| necessarily contains a cycle, and conversely.
    dist = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        if dist[v] == radius:
            continue
        for u in graph.neighbors(v):
            if u not in dist:
                dist[u] = dist[v] + 1
                queue.append(u)
    vertices = set(dist)
    edge_count = 0
    for v in vertices:
        for u in graph.neighbors(v):
            if u in vertices and u > v:
                if dist[u] == radius and dist[v] == radius:
                    continue
                edge_count += 1
    return edge_count >= len(vertices)


def nodes_with_tree_like_view(graph: nx.Graph, radius: int) -> Set[int]:
    """All nodes whose ``radius``-hop view is a tree."""
    return {v for v in graph.nodes() if not has_cycle_within_distance(graph, v, radius)}


def tree_like_fraction(graph: nx.Graph, radius: int) -> float:
    """Fraction of nodes whose ``radius``-hop view is a tree."""
    n = graph.number_of_nodes()
    if n == 0:
        return 1.0
    return len(nodes_with_tree_like_view(graph, radius)) / n


def high_girth_regular_graph(
    degree: int, n: int, min_girth: int, seed: int = 0, max_attempts: int = 2000
) -> nx.Graph:
    """A ``degree``-regular graph on ``n`` nodes with girth > ``min_girth - 1``.

    Strategy: start from a random regular graph and repeatedly break short
    cycles by 2-opt edge swaps (replace edges ``{a, b}, {c, d}`` of a short
    cycle and a random partner by ``{a, c}, {b, d}``), which preserves
    regularity.  For moderate parameters (the scales used in tests and
    benchmarks) this converges quickly; if the target girth cannot be reached
    within ``max_attempts`` swaps a ``RuntimeError`` is raised so callers
    never silently get a low-girth graph.
    """
    if min_girth < 3:
        return nx.random_regular_graph(degree, n, seed=seed)
    rng = random.Random(seed)
    g = nx.random_regular_graph(degree, n, seed=seed)
    for _ in range(max_attempts):
        cycle_edge = _find_short_cycle_edge(g, min_girth - 1)
        if cycle_edge is None:
            return g
        a, b = cycle_edge
        # Pick a random other edge {c, d} and try the swap {a,c}, {b,d}.
        candidates = list(g.edges())
        rng.shuffle(candidates)
        swapped = False
        for c, d in candidates:
            if len({a, b, c, d}) < 4:
                continue
            if g.has_edge(a, c) or g.has_edge(b, d):
                continue
            g.remove_edge(a, b)
            g.remove_edge(c, d)
            g.add_edge(a, c)
            g.add_edge(b, d)
            swapped = True
            break
        if not swapped:
            continue
    if _find_short_cycle_edge(g, min_girth - 1) is None:
        return g
    raise RuntimeError(
        f"could not reach girth {min_girth} for a {degree}-regular graph on {n} nodes; "
        "increase n or lower the girth requirement"
    )


def _find_short_cycle_edge(graph: nx.Graph, max_length: int) -> Optional[tuple]:
    """Return an edge lying on a cycle of length ≤ ``max_length``, if any."""
    for u, v in graph.edges():
        # Shortest alternative path between u and v (without the edge itself).
        graph.remove_edge(u, v)
        try:
            alt = nx.shortest_path_length(graph, u, v)
        except nx.NetworkXNoPath:
            alt = math.inf
        finally:
            graph.add_edge(u, v)
        if alt + 1 <= max_length:
            return (u, v)
    return None
