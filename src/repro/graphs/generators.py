"""Workload graph generators.

All generators return :class:`networkx.Graph` objects on vertices ``0..n-1``
so they can be handed directly to :class:`repro.local.network.Network`.  They
cover the graph families the paper's results talk about:

* cycles and paths (Feuilloley's Ω(log* n) deterministic node-averaged bound),
* bounded-degree and d-regular graphs (the O(1) node-averaged regime for
  Luby-style algorithms),
* trees (the worst-case MIS lower bound of Theorem 16),
* general random graphs with a degree parameter (the Δ sweeps of the
  benchmark harness),
* graphs of minimum degree ≥ 3 with controllable girth (sinkless
  orientation, Theorem 6).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

import networkx as nx

__all__ = [
    "cycle_graph",
    "path_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "random_regular_graph",
    "erdos_renyi_graph",
    "random_bipartite_regular_graph",
    "random_tree",
    "complete_binary_tree",
    "spider_tree",
    "bounded_degree_graph",
    "min_degree_graph",
    "relabel_to_integers",
]


def relabel_to_integers(graph: nx.Graph) -> nx.Graph:
    """Relabel an arbitrary graph to consecutive integer vertices ``0..n-1``."""
    mapping = {v: i for i, v in enumerate(graph.nodes())}
    return nx.relabel_nodes(graph, mapping, copy=True)


def cycle_graph(n: int) -> nx.Graph:
    """The n-cycle ``C_n`` (requires ``n ≥ 3``)."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 nodes")
    return nx.cycle_graph(n)


def path_graph(n: int) -> nx.Graph:
    """The path on ``n`` nodes."""
    if n < 1:
        raise ValueError("a path needs at least 1 node")
    return nx.path_graph(n)


def complete_graph(n: int) -> nx.Graph:
    """The complete graph ``K_n``."""
    if n < 1:
        raise ValueError("a complete graph needs at least 1 node")
    return nx.complete_graph(n)


def star_graph(leaves: int) -> nx.Graph:
    """A star with one centre and ``leaves`` leaves (``n = leaves + 1``)."""
    if leaves < 1:
        raise ValueError("a star needs at least one leaf")
    return nx.star_graph(leaves)


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """The ``rows × cols`` grid, relabelled to integer vertices."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    return relabel_to_integers(nx.grid_2d_graph(rows, cols))


def random_regular_graph(degree: int, n: int, seed: int = 0) -> nx.Graph:
    """A uniformly random ``degree``-regular simple graph on ``n`` nodes.

    ``degree * n`` must be even and ``degree < n``.
    """
    if degree < 0 or n <= degree:
        raise ValueError("need 0 <= degree < n")
    if (degree * n) % 2 != 0:
        raise ValueError("degree * n must be even")
    return nx.random_regular_graph(degree, n, seed=seed)


def erdos_renyi_graph(n: int, expected_degree: float, seed: int = 0) -> nx.Graph:
    """An Erdős–Rényi graph ``G(n, p)`` with ``p = expected_degree / (n - 1)``."""
    if n < 1:
        raise ValueError("n must be positive")
    if n == 1:
        g = nx.Graph()
        g.add_node(0)
        return g
    p = min(1.0, max(0.0, expected_degree / (n - 1)))
    return nx.gnp_random_graph(n, p, seed=seed)


def random_bipartite_regular_graph(
    left: int, right: int, left_degree: int, seed: int = 0
) -> nx.Graph:
    """A random bipartite graph where every left node has degree ``left_degree``.

    Right-side degrees are ``left * left_degree / right`` on average; when
    ``left * left_degree`` is a multiple of ``right`` the construction is
    biregular (every right node has exactly that degree), which is the shape
    of the inter-cluster connections of the KMW construction.
    """
    if left < 1 or right < 1:
        raise ValueError("both sides must be non-empty")
    if not 0 <= left_degree <= right:
        raise ValueError("left_degree must be between 0 and right")
    rng = random.Random(seed)
    total = left * left_degree
    if total % right != 0:
        # Fall back to a non-biregular random assignment.
        g = nx.Graph()
        g.add_nodes_from(range(left + right))
        for u in range(left):
            for v in rng.sample(range(left, left + right), left_degree):
                g.add_edge(u, v)
        return g
    right_degree = total // right
    # Configuration-style construction: repeat each left node `left_degree`
    # times, each right node `right_degree` times, and match the two lists.
    left_slots = [u for u in range(left) for _ in range(left_degree)]
    right_slots = [v for v in range(left, left + right) for _ in range(right_degree)]
    for _ in range(200):
        rng.shuffle(right_slots)
        pairs = set(zip(left_slots, right_slots))
        if len(pairs) == total:  # no parallel edges
            g = nx.Graph()
            g.add_nodes_from(range(left + right))
            g.add_edges_from(pairs)
            return g
    # Deterministic fallback: round-robin assignment (always simple).
    g = nx.Graph()
    g.add_nodes_from(range(left + right))
    for u in range(left):
        for j in range(left_degree):
            v = left + (u * left_degree + j) % right
            g.add_edge(u, v)
    return g


def random_tree(n: int, seed: int = 0) -> nx.Graph:
    """A uniformly random labelled tree on ``n`` nodes (Prüfer-based)."""
    if n < 1:
        raise ValueError("n must be positive")
    if n <= 2:
        return nx.path_graph(n)
    rng = random.Random(seed)
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    return nx.from_prufer_sequence(prufer)


def complete_binary_tree(depth: int) -> nx.Graph:
    """The complete binary tree of the given depth (``2^(depth+1) - 1`` nodes)."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    return relabel_to_integers(nx.balanced_tree(2, depth))


def spider_tree(legs: int, leg_length: int) -> nx.Graph:
    """A spider: ``legs`` paths of length ``leg_length`` glued at a centre."""
    if legs < 1 or leg_length < 1:
        raise ValueError("legs and leg_length must be positive")
    g = nx.Graph()
    g.add_node(0)
    next_vertex = 1
    for _ in range(legs):
        prev = 0
        for _ in range(leg_length):
            g.add_edge(prev, next_vertex)
            prev = next_vertex
            next_vertex += 1
    return g


def bounded_degree_graph(n: int, max_degree: int, seed: int = 0) -> nx.Graph:
    """A random graph with maximum degree at most ``max_degree``.

    Built by sampling random candidate edges and keeping those that do not
    violate the degree bound; dense enough to be interesting, sparse enough to
    keep the degree cap exact.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if max_degree < 0:
        raise ValueError("max_degree must be non-negative")
    rng = random.Random(seed)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    if n < 2 or max_degree == 0:
        return g
    attempts = 4 * n * max(1, max_degree)
    for _ in range(attempts):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or g.has_edge(u, v):
            continue
        if g.degree(u) >= max_degree or g.degree(v) >= max_degree:
            continue
        g.add_edge(u, v)
    return g


def min_degree_graph(n: int, min_degree: int, seed: int = 0) -> nx.Graph:
    """A random graph where every node has degree at least ``min_degree``.

    Starts from a ``min_degree``-regular random graph when parity allows, and
    otherwise from a Hamiltonian cycle augmented with random edges until the
    minimum-degree constraint is met.  Used for sinkless-orientation
    workloads (minimum degree ≥ 3).
    """
    if n <= min_degree:
        raise ValueError("need n > min_degree")
    if (n * min_degree) % 2 == 0:
        return nx.random_regular_graph(min_degree, n, seed=seed)
    rng = random.Random(seed)
    g = nx.cycle_graph(n)
    vertices: List[int] = list(range(n))
    # Deficient vertices, tracked incrementally in ascending order — the same
    # list the former per-iteration rebuild produced, so the rng.choice
    # stream (and hence the generated graph) is unchanged seed for seed.
    degrees = [2] * n
    low = [v for v in vertices if degrees[v] < min_degree]
    guard = 0
    while low and guard < 100 * n:
        guard += 1
        u = rng.choice(low)
        v = rng.choice(vertices)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
            degrees[u] += 1
            degrees[v] += 1
            if degrees[u] == min_degree:
                low.remove(u)
            if degrees[v] == min_degree:
                low.remove(v)
    return g
