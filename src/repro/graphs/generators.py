"""Workload graph generators.

All generators return :class:`networkx.Graph` objects on vertices ``0..n-1``
so they can be handed directly to :class:`repro.local.network.Network`.  They
cover the graph families the paper's results talk about:

* cycles and paths (Feuilloley's Ω(log* n) deterministic node-averaged bound),
* bounded-degree and d-regular graphs (the O(1) node-averaged regime for
  Luby-style algorithms),
* trees (the worst-case MIS lower bound of Theorem 16),
* general random graphs with a degree parameter (the Δ sweeps of the
  benchmark harness),
* graphs of minimum degree ≥ 3 with controllable girth (sinkless
  orientation, Theorem 6).

Each family is additionally available as a **direct edge-list generator**
(``cycle_edges``, ``random_regular_edges``, …) returning an ``(n, edges)``
pair without ever instantiating a networkx graph — the construction path for
``n ≥ 10⁵`` sweeps, consumed by :meth:`Network.from_edge_list` and
:func:`repro.analysis.sweep.network_from`.  Every direct generator also
accepts ``as_arrays=True`` and then returns the same edge list as an
:class:`repro.graphs.edgelist.EdgeArrays` — flat int64 endpoint arrays with
provenance metadata, the array-first interchange consumed by
:meth:`Network.from_endpoint_arrays` / :meth:`Network.from_edge_arrays` and
accepted everywhere ``(n, edges)`` pairs are.  The deterministic families
(cycles, paths, stars, grids, complete graphs) and :func:`fast_gnp_edges`
build those arrays **directly in numpy**, never materialising a Python tuple
per edge; the stream-exact randomized twins necessarily replay their
tuple-based reference algorithms first and convert at the end (the RNG
stream, and hence the edge set, is identical either way).  The direct
generators are
**stream-exact** twins of their networkx counterparts: for a matching seed
they produce the same edge set, because they replay the counterpart's RNG
consumption call for call (the randomized ones replicate the algorithm of
the *installed* networkx version — Steger–Wormald pairing for
``random_regular_edges``, the O(n²) Gilbert loop for ``erdos_renyi_edges``,
the incremental repair loop for ``min_degree_edges``).  networkx is an
installed dependency, not vendored, so a future upgrade that reorders its
internal draws would break the stream parity — the seed-for-seed
equivalence tests in ``tests/graphs/test_generator_edges.py`` exist to
catch exactly that drift.

One generator deliberately breaks the stream-exactness rule:
:func:`fast_gnp_edges` is the geometric-skip (Batagelj–Brandes) Erdős–Rényi
generator for the ``n ≥ 10⁵`` regime, with its own documented numpy-PCG64
seed schedule.  The quadratic Gilbert twin stays as the exact reference; the
two are pinned statistically equal (edge-count Chernoff bounds, degree
chi-square) in ``tests/graphs/test_fast_gnp.py``.
"""

from __future__ import annotations

import itertools
import math
import random
from collections import defaultdict
from typing import List, Optional, Set, Tuple, Union

import networkx as nx
import numpy as np

from repro.graphs.edgelist import EdgeArrays

__all__ = [
    "cycle_graph",
    "path_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "random_regular_graph",
    "erdos_renyi_graph",
    "random_bipartite_regular_graph",
    "random_tree",
    "complete_binary_tree",
    "spider_tree",
    "bounded_degree_graph",
    "min_degree_graph",
    "relabel_to_integers",
    "cycle_edges",
    "path_edges",
    "complete_edges",
    "star_edges",
    "grid_edges",
    "random_regular_edges",
    "erdos_renyi_edges",
    "fast_gnp_edges",
    "min_degree_edges",
]

Edge = Tuple[int, int]
EdgeList = Tuple[int, List[Edge]]
#: What a direct generator returns: the legacy ``(n, edges)`` pair, or —
#: with ``as_arrays=True`` — the flat :class:`EdgeArrays` interchange.
EdgeResult = Union[EdgeList, EdgeArrays]


def relabel_to_integers(graph: nx.Graph) -> nx.Graph:
    """Relabel an arbitrary graph to consecutive integer vertices ``0..n-1``."""
    mapping = {v: i for i, v in enumerate(graph.nodes())}
    return nx.relabel_nodes(graph, mapping, copy=True)


def cycle_graph(n: int) -> nx.Graph:
    """The n-cycle ``C_n`` (requires ``n ≥ 3``)."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 nodes")
    return nx.cycle_graph(n)


def path_graph(n: int) -> nx.Graph:
    """The path on ``n`` nodes."""
    if n < 1:
        raise ValueError("a path needs at least 1 node")
    return nx.path_graph(n)


def complete_graph(n: int) -> nx.Graph:
    """The complete graph ``K_n``."""
    if n < 1:
        raise ValueError("a complete graph needs at least 1 node")
    return nx.complete_graph(n)


def star_graph(leaves: int) -> nx.Graph:
    """A star with one centre and ``leaves`` leaves (``n = leaves + 1``)."""
    if leaves < 1:
        raise ValueError("a star needs at least one leaf")
    return nx.star_graph(leaves)


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """The ``rows × cols`` grid, relabelled to integer vertices."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    return relabel_to_integers(nx.grid_2d_graph(rows, cols))


def random_regular_graph(degree: int, n: int, seed: int = 0) -> nx.Graph:
    """A uniformly random ``degree``-regular simple graph on ``n`` nodes.

    ``degree * n`` must be even and ``degree < n``.
    """
    if degree < 0 or n <= degree:
        raise ValueError("need 0 <= degree < n")
    if (degree * n) % 2 != 0:
        raise ValueError("degree * n must be even")
    return nx.random_regular_graph(degree, n, seed=seed)


def erdos_renyi_graph(n: int, expected_degree: float, seed: int = 0) -> nx.Graph:
    """An Erdős–Rényi graph ``G(n, p)`` with ``p = expected_degree / (n - 1)``."""
    if n < 1:
        raise ValueError("n must be positive")
    if n == 1:
        g = nx.Graph()
        g.add_node(0)
        return g
    p = min(1.0, max(0.0, expected_degree / (n - 1)))
    return nx.gnp_random_graph(n, p, seed=seed)


def random_bipartite_regular_graph(
    left: int, right: int, left_degree: int, seed: int = 0
) -> nx.Graph:
    """A random bipartite graph where every left node has degree ``left_degree``.

    Right-side degrees are ``left * left_degree / right`` on average; when
    ``left * left_degree`` is a multiple of ``right`` the construction is
    biregular (every right node has exactly that degree), which is the shape
    of the inter-cluster connections of the KMW construction.
    """
    if left < 1 or right < 1:
        raise ValueError("both sides must be non-empty")
    if not 0 <= left_degree <= right:
        raise ValueError("left_degree must be between 0 and right")
    rng = random.Random(seed)
    total = left * left_degree
    if total % right != 0:
        # Fall back to a non-biregular random assignment.
        g = nx.Graph()
        g.add_nodes_from(range(left + right))
        for u in range(left):
            for v in rng.sample(range(left, left + right), left_degree):
                g.add_edge(u, v)
        return g
    right_degree = total // right
    # Configuration-style construction: repeat each left node `left_degree`
    # times, each right node `right_degree` times, and match the two lists.
    left_slots = [u for u in range(left) for _ in range(left_degree)]
    right_slots = [v for v in range(left, left + right) for _ in range(right_degree)]
    for _ in range(200):
        rng.shuffle(right_slots)
        pairs = set(zip(left_slots, right_slots))
        if len(pairs) == total:  # no parallel edges
            g = nx.Graph()
            g.add_nodes_from(range(left + right))
            g.add_edges_from(pairs)
            return g
    # Deterministic fallback: round-robin assignment (always simple).
    g = nx.Graph()
    g.add_nodes_from(range(left + right))
    for u in range(left):
        for j in range(left_degree):
            v = left + (u * left_degree + j) % right
            g.add_edge(u, v)
    return g


def random_tree(n: int, seed: int = 0) -> nx.Graph:
    """A uniformly random labelled tree on ``n`` nodes (Prüfer-based)."""
    if n < 1:
        raise ValueError("n must be positive")
    if n <= 2:
        return nx.path_graph(n)
    rng = random.Random(seed)
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    return nx.from_prufer_sequence(prufer)


def complete_binary_tree(depth: int) -> nx.Graph:
    """The complete binary tree of the given depth (``2^(depth+1) - 1`` nodes)."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    return relabel_to_integers(nx.balanced_tree(2, depth))


def spider_tree(legs: int, leg_length: int) -> nx.Graph:
    """A spider: ``legs`` paths of length ``leg_length`` glued at a centre."""
    if legs < 1 or leg_length < 1:
        raise ValueError("legs and leg_length must be positive")
    g = nx.Graph()
    g.add_node(0)
    next_vertex = 1
    for _ in range(legs):
        prev = 0
        for _ in range(leg_length):
            g.add_edge(prev, next_vertex)
            prev = next_vertex
            next_vertex += 1
    return g


def bounded_degree_graph(n: int, max_degree: int, seed: int = 0) -> nx.Graph:
    """A random graph with maximum degree at most ``max_degree``.

    Built by sampling random candidate edges and keeping those that do not
    violate the degree bound; dense enough to be interesting, sparse enough to
    keep the degree cap exact.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if max_degree < 0:
        raise ValueError("max_degree must be non-negative")
    rng = random.Random(seed)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    if n < 2 or max_degree == 0:
        return g
    attempts = 4 * n * max(1, max_degree)
    for _ in range(attempts):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or g.has_edge(u, v):
            continue
        if g.degree(u) >= max_degree or g.degree(v) >= max_degree:
            continue
        g.add_edge(u, v)
    return g


def min_degree_graph(n: int, min_degree: int, seed: int = 0) -> nx.Graph:
    """A random graph where every node has degree at least ``min_degree``.

    Starts from a ``min_degree``-regular random graph when parity allows, and
    otherwise from a Hamiltonian cycle augmented with random edges until the
    minimum-degree constraint is met.  Used for sinkless-orientation
    workloads (minimum degree ≥ 3).
    """
    if n <= min_degree:
        raise ValueError("need n > min_degree")
    if (n * min_degree) % 2 == 0:
        return nx.random_regular_graph(min_degree, n, seed=seed)
    rng = random.Random(seed)
    g = nx.cycle_graph(n)
    vertices: List[int] = list(range(n))
    # Deficient vertices, tracked incrementally in ascending order — the same
    # list the former per-iteration rebuild produced, so the rng.choice
    # stream (and hence the generated graph) is unchanged seed for seed.
    degrees = [2] * n
    low = [v for v in vertices if degrees[v] < min_degree]
    guard = 0
    while low and guard < 100 * n:
        guard += 1
        u = rng.choice(low)
        v = rng.choice(vertices)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
            degrees[u] += 1
            degrees[v] += 1
            if degrees[u] == min_degree:
                low.remove(u)
            if degrees[v] == min_degree:
                low.remove(v)
    return g


# ---------------------------------------------------------------------- #
# Direct edge-list generators (no networkx on the construction path)
# ---------------------------------------------------------------------- #


def cycle_edges(n: int, as_arrays: bool = False) -> EdgeResult:
    """Edge-list twin of :func:`cycle_graph`: the n-cycle as ``(n, edges)``.

    With ``as_arrays=True`` the endpoints are built directly as numpy arange
    blocks (same edge order) and returned as :class:`EdgeArrays`.
    """
    if n < 3:
        raise ValueError("a cycle needs at least 3 nodes")
    if as_arrays:
        body = np.arange(n - 1, dtype=np.int64)
        src = np.concatenate((body, np.zeros(1, dtype=np.int64)))
        dst = np.concatenate((body + 1, np.full(1, n - 1, dtype=np.int64)))
        src.setflags(write=False)
        dst.setflags(write=False)
        return EdgeArrays(n=n, src=src, dst=dst, meta={"family": "cycle", "n": n})
    edges = [(i, i + 1) for i in range(n - 1)]
    edges.append((0, n - 1))
    return n, edges


def path_edges(n: int, as_arrays: bool = False) -> EdgeResult:
    """Edge-list twin of :func:`path_graph` (arrays built natively in numpy)."""
    if n < 1:
        raise ValueError("a path needs at least 1 node")
    if as_arrays:
        src = np.arange(max(0, n - 1), dtype=np.int64)
        dst = src + 1
        src.setflags(write=False)
        dst.setflags(write=False)
        return EdgeArrays(n=n, src=src, dst=dst, meta={"family": "path", "n": n})
    return n, [(i, i + 1) for i in range(n - 1)]


def complete_edges(n: int, as_arrays: bool = False) -> EdgeResult:
    """Edge-list twin of :func:`complete_graph`.

    The array mode uses ``np.triu_indices`` — row-major upper-triangle order,
    exactly the ``itertools.combinations`` order of the tuple mode.
    """
    if n < 1:
        raise ValueError("a complete graph needs at least 1 node")
    if as_arrays:
        src, dst = np.triu_indices(n, k=1)
        src = src.astype(np.int64, copy=False)
        dst = dst.astype(np.int64, copy=False)
        src.setflags(write=False)
        dst.setflags(write=False)
        return EdgeArrays(n=n, src=src, dst=dst, meta={"family": "complete", "n": n})
    return n, list(itertools.combinations(range(n), 2))


def star_edges(leaves: int, as_arrays: bool = False) -> EdgeResult:
    """Edge-list twin of :func:`star_graph` (``n = leaves + 1``, centre 0)."""
    if leaves < 1:
        raise ValueError("a star needs at least one leaf")
    if as_arrays:
        src = np.zeros(leaves, dtype=np.int64)
        dst = np.arange(1, leaves + 1, dtype=np.int64)
        src.setflags(write=False)
        dst.setflags(write=False)
        return EdgeArrays(
            n=leaves + 1, src=src, dst=dst, meta={"family": "star", "leaves": leaves}
        )
    return leaves + 1, [(0, i) for i in range(1, leaves + 1)]


def grid_edges(rows: int, cols: int, as_arrays: bool = False) -> EdgeResult:
    """Edge-list twin of :func:`grid_graph`.

    Vertex ``(i, j)`` of the grid maps to ``i * cols + j`` — the same
    numbering :func:`relabel_to_integers` assigns (networkx inserts grid
    nodes row-major), so the edge sets coincide exactly.  The array mode
    builds the right-going and down-going edge blocks vectorised and
    interleaves them with one stable sort into the tuple mode's
    per-vertex (right, down) order.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    if as_arrays:
        ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
        right = ids[:, :-1].ravel()
        down = ids[:-1, :].ravel()
        src = np.concatenate((right, down))
        dst = np.concatenate((right + 1, down + cols))
        # Tuple order is per-vertex right-then-down: stable sort by source
        # vertex with the right-block (priority 0) before the down-block.
        priority = np.concatenate(
            (np.zeros(right.size, dtype=np.int64), np.ones(down.size, dtype=np.int64))
        )
        order = np.lexsort((priority, src))
        src = src[order]
        dst = dst[order]
        src.setflags(write=False)
        dst.setflags(write=False)
        return EdgeArrays(
            n=rows * cols,
            src=src,
            dst=dst,
            meta={"family": "grid", "rows": rows, "cols": cols},
        )
    edges: List[Edge] = []
    for i in range(rows):
        base = i * cols
        for j in range(cols):
            v = base + j
            if j + 1 < cols:
                edges.append((v, v + 1))
            if i + 1 < rows:
                edges.append((v, v + cols))
    return rows * cols, edges


def random_regular_edges(
    degree: int, n: int, seed: int = 0, as_arrays: bool = False
) -> EdgeResult:
    """Edge-list twin of :func:`random_regular_graph` (stream-exact).

    Replays the Steger–Wormald pairing algorithm of the installed networkx
    ``random_regular_graph`` with a ``random.Random(seed)`` — the same RNG
    ``py_random_state`` would build — so a matching seed yields the same
    graph, without constructing it as a networkx object.  ``as_arrays=True``
    returns the identical edge set as :class:`EdgeArrays` (the pairing
    algorithm itself stays tuple-based — that is the price of stream
    exactness; see the module docstring).
    """
    if degree < 0 or n <= degree:
        raise ValueError("need 0 <= degree < n")
    if (degree * n) % 2 != 0:
        raise ValueError("degree * n must be even")
    meta = {"family": "random_regular", "degree": degree, "n": n, "seed": seed}
    if degree == 0:
        return EdgeArrays.from_pairs(n, [], meta=meta) if as_arrays else (n, [])
    rng = random.Random(seed)

    def _suitable(edges: Set[Edge], potential_edges) -> bool:
        if not potential_edges:
            return True
        for s1 in potential_edges:
            for s2 in potential_edges:
                if s1 == s2:
                    break
                if s1 > s2:
                    s1, s2 = s2, s1
                if (s1, s2) not in edges:
                    return True
        return False

    def _try_creation() -> Optional[Set[Edge]]:
        edges: Set[Edge] = set()
        stubs = list(range(n)) * degree
        while stubs:
            potential_edges = defaultdict(lambda: 0)
            rng.shuffle(stubs)
            stubiter = iter(stubs)
            for s1, s2 in zip(stubiter, stubiter):
                if s1 > s2:
                    s1, s2 = s2, s1
                if s1 != s2 and ((s1, s2) not in edges):
                    edges.add((s1, s2))
                else:
                    potential_edges[s1] += 1
                    potential_edges[s2] += 1
            if not _suitable(edges, potential_edges):
                return None
            stubs = [
                node
                for node, potential in potential_edges.items()
                for _ in range(potential)
            ]
        return edges

    edges = _try_creation()
    while edges is None:
        edges = _try_creation()
    ordered = sorted(edges)
    if as_arrays:
        return EdgeArrays.from_pairs(n, ordered, meta=meta)
    return n, ordered


def erdos_renyi_edges(
    n: int, expected_degree: float, seed: int = 0, as_arrays: bool = False
) -> EdgeResult:
    """Edge-list twin of :func:`erdos_renyi_graph` (stream-exact).

    Replays the O(n²) Gilbert loop of networkx's ``gnp_random_graph``
    (one ``random()`` draw per vertex pair), so matching seeds produce the
    same graph.  Because the pair loop is quadratic by construction, this
    stays stream-exact rather than fast at very large ``n``; the sparse
    families (cycles, regular graphs, grids) are the intended ``n ≥ 10⁵``
    workloads (and :func:`fast_gnp_edges` the intended large-``n``
    Erdős–Rényi generator).  ``as_arrays=True`` converts the identical edge
    list to :class:`EdgeArrays` after the replay.
    """
    if n < 1:
        raise ValueError("n must be positive")
    meta = {
        "family": "erdos_renyi",
        "n": n,
        "expected_degree": expected_degree,
        "seed": seed,
    }

    def _result(num: int, edges: List[Edge]) -> EdgeResult:
        if as_arrays:
            return EdgeArrays.from_pairs(num, edges, meta=meta)
        return num, edges

    if n == 1:
        return _result(1, [])
    p = min(1.0, max(0.0, expected_degree / (n - 1)))
    if p >= 1.0:
        return _result(*complete_edges(n))
    if p <= 0.0:
        return _result(n, [])
    rng = random.Random(seed)
    rnd = rng.random
    return _result(n, [e for e in itertools.combinations(range(n), 2) if rnd() < p])


def fast_gnp_edges(
    n: int, p: float, seed: int = 0, as_arrays: bool = False
) -> EdgeResult:
    """Geometric-skip Erdős–Rényi generator: ``G(n, p)`` in ``O(n + m)`` time.

    The sub-quadratic twin of :func:`erdos_renyi_edges` for the ``n ≥ 10⁵``
    regime.  Instead of flipping one coin per vertex pair (the Gilbert loop,
    quadratic by construction), it walks the ``n·(n−1)/2`` canonical pairs in
    lexicographic order and jumps straight from one present edge to the next:
    the gap between consecutive edges is geometrically distributed with
    success probability ``p``, so only ``m + O(1)`` random draws are needed
    (Batagelj–Brandes).  The gaps are drawn and prefix-summed in vectorised
    numpy blocks, which is what makes million-node ``G(n, 10/n)`` workloads
    interactive.

    **Seed schedule** (documented because it is intentionally *not*
    stream-exact with the Gilbert twin): uniforms come from
    ``numpy.random.Generator(numpy.random.PCG64(seed))`` via ``rng.random``,
    one double per generated edge plus the overshoot of the final block; each
    uniform ``u`` becomes a gap ``1 + floor(log1p(-u) / log1p(-p))``.  The
    same ``(n, p, seed)`` triple therefore always yields the same edge list,
    but no seed pairing can make it reproduce ``erdos_renyi_edges`` — the two
    generators sample the same *distribution* through different RNG streams
    (the statistical equivalence tests live in
    ``tests/graphs/test_fast_gnp.py``).

    Note the signature takes the edge probability ``p`` directly (the
    convention of the fast-generator literature); ``erdos_renyi_edges`` takes
    an expected degree.  Use ``p = expected_degree / (n - 1)`` to match.

    Returns canonical ``(u, v), u < v`` edges, ordered by pair index (larger
    endpoint first, then smaller — the skip-walk order), ready for
    :meth:`Network.from_edge_list`, :func:`repro.analysis.sweep.network_from`
    and ``sweep(graph_factory=...)``, all of which canonicalise order
    themselves.  With ``as_arrays=True`` the endpoints are returned **as the
    numpy arrays the skip walk computed them in** (an :class:`EdgeArrays`,
    zero per-edge Python objects end to end) — the intended form for the
    ``n ≥ 10⁵`` regime, feeding :meth:`Network.from_endpoint_arrays`
    directly.  The default tuple mode is kept as a compatibility wrapper and
    is **deprecated on the large-n path**: it rebuilds one tuple per edge
    from the arrays (at ``m = 5·10⁶`` that round trip costs more than
    generating the edges), and large-``n`` call sites should pass
    ``as_arrays=True`` instead.  The same ``(n, p, seed)`` triple produces
    the same edge list in either mode.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must lie in [0, 1]")
    meta = {"family": "fast_gnp", "n": n, "p": p, "seed": seed}
    if n == 1 or p == 0.0:
        if as_arrays:
            return EdgeArrays.from_pairs(n, [], meta=meta)
        return n, []
    if p >= 1.0:
        if as_arrays:
            # Keep the fast_gnp provenance (p, seed) on the delegated K_n.
            return complete_edges(n, as_arrays=True).with_meta(**meta)
        return complete_edges(n)

    total_pairs = n * (n - 1) // 2
    rng = np.random.Generator(np.random.PCG64(seed))
    log_q = math.log1p(-p)
    chunks: List["np.ndarray"] = []
    position = -1  # index of the last generated pair, in lexicographic order
    while position < total_pairs - 1:
        # Expected number of remaining edges plus ~4σ slack, so almost every
        # iteration finishes in one block while overshoot stays tiny.
        expect = (total_pairs - 1 - position) * p
        block = int(expect + 4.0 * math.sqrt(expect + 1.0)) + 16
        uniforms = rng.random(block)
        gaps = 1 + np.floor(np.log1p(-uniforms) / log_q).astype(np.int64)
        ends = position + np.cumsum(gaps)
        chunks.append(ends[ends <= total_pairs - 1])
        position = int(ends[-1])
    k = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)

    # Invert the pair index: pair k is (w, v) with v(v−1)/2 ≤ k < v(v+1)/2,
    # i.e. v is the larger endpoint and w = k − v(v−1)/2.  The float sqrt is
    # only a first guess; the two correction steps make the inversion exact
    # for every representable k.
    v = np.floor((1.0 + np.sqrt(1.0 + 8.0 * k.astype(np.float64))) / 2.0).astype(np.int64)
    v = np.where(v * (v - 1) // 2 > k, v - 1, v)
    v = np.where(v * (v + 1) // 2 <= k, v + 1, v)
    w = k - v * (v - 1) // 2
    if as_arrays:
        # Hand the skip walk's own arrays straight through — the large-n
        # path, with zero per-edge Python objects.  Freezing them first lets
        # EdgeArrays adopt the buffers instead of defensively copying.
        w.setflags(write=False)
        v.setflags(write=False)
        return EdgeArrays(n=n, src=w, dst=v, meta=meta)
    return n, list(zip(w.tolist(), v.tolist()))


def min_degree_edges(
    n: int, min_degree: int, seed: int = 0, as_arrays: bool = False
) -> EdgeResult:
    """Edge-list twin of :func:`min_degree_graph` (stream-exact).

    The even-parity case delegates to :func:`random_regular_edges`; the odd
    case replays the cycle-plus-repair loop with set-based adjacency, drawing
    from ``random.Random(seed)`` at exactly the same points as the networkx
    version, so matching seeds produce the same graph.  ``as_arrays=True``
    converts the identical edge list to :class:`EdgeArrays`.
    """
    if n <= min_degree:
        raise ValueError("need n > min_degree")
    meta = {"family": "min_degree", "n": n, "min_degree": min_degree, "seed": seed}
    if (n * min_degree) % 2 == 0:
        if as_arrays:
            # Keep min_degree provenance on the delegated regular graph.
            return random_regular_edges(
                min_degree, n, seed=seed, as_arrays=True
            ).with_meta(**meta)
        return random_regular_edges(min_degree, n, seed=seed)
    rng = random.Random(seed)
    edges = [(i, i + 1) for i in range(n - 1)]
    edges.append((n - 1, 0))
    adjacency: List[Set[int]] = [set() for _ in range(n)]
    for u, v in edges:
        adjacency[u].add(v)
        adjacency[v].add(u)
    vertices: List[int] = list(range(n))
    degrees = [2] * n
    low = [v for v in vertices if degrees[v] < min_degree]
    guard = 0
    while low and guard < 100 * n:
        guard += 1
        u = rng.choice(low)
        v = rng.choice(vertices)
        if u != v and v not in adjacency[u]:
            adjacency[u].add(v)
            adjacency[v].add(u)
            edges.append((u, v))
            degrees[u] += 1
            degrees[v] += 1
            if degrees[u] == min_degree:
                low.remove(u)
            if degrees[v] == min_degree:
                low.remove(v)
    if as_arrays:
        return EdgeArrays.from_pairs(n, edges, meta=meta)
    return n, edges
