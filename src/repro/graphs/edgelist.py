"""The array-first edge-list interchange format (:class:`EdgeArrays`).

Every layer of the trial pipeline — generators, :class:`Network`
construction, sweeps, the :class:`~repro.core.experiment.Experiment` facade —
historically exchanged graphs as ``(n, [(u, v), ...])`` pairs: one Python
tuple per edge.  At ``m = 5·10⁶`` those tuples dominate the pipeline's
memory traffic and the :class:`Network` build time.  :class:`EdgeArrays` is
the flat replacement: the endpoints live in two parallel int64 numpy arrays
(``src``/``dst``), so a million-edge workload is two 8 MB buffers instead of
five million tuple objects, and the CSR build
(:meth:`repro.local.network.Network.from_endpoint_arrays`) can sort and
deduplicate them entirely inside numpy.

Construction invariants (checked eagerly): ``src`` and ``dst`` are
one-dimensional, equally long, coerced to int64, frozen (``writeable=False``)
and within ``0..n-1``.  Edges are *not* required to be canonical (``u < v``),
deduplicated, or free of self-loops — consumers that need canonical form
(the :class:`Network` constructors) canonicalise vectorised; producers just
hand over whatever endpoint order their algorithm emits.

The optional ``meta`` mapping records provenance — which generator family
produced the arrays, with which parameters and seed — so results can name
their workloads without re-deriving anything::

    >>> from repro.graphs.generators import fast_gnp_edges
    >>> arrays = fast_gnp_edges(1000, 0.01, seed=7, as_arrays=True)
    >>> arrays.n, arrays.m, arrays.meta["family"]
    (1000, ..., 'fast_gnp')

Compat wrappers: :meth:`EdgeArrays.from_pairs` lifts a legacy
``(n, edges)`` pair into arrays, :meth:`EdgeArrays.as_pairs` lowers back to
the tuple-per-edge form (for consumers not yet array-aware; avoid it on the
large-``n`` path — it materialises exactly the per-edge objects this type
exists to remove).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Mapping, Tuple

import numpy as np

__all__ = ["EdgeArrays", "as_edge_arrays"]

Edge = Tuple[int, int]


def _frozen_i64(values: object, name: str) -> np.ndarray:
    array = np.asarray(values)
    if array.dtype != np.int64:
        # Refuse lossy casts: a float endpoint array is a caller bug, and
        # silently truncating it would build a wrong graph.  (Empty inputs
        # default to float64 under asarray; they carry no values to lose.)
        if array.size and not np.issubdtype(array.dtype, np.integer):
            raise ValueError(
                f"{name} must be an integer array, got dtype {array.dtype}"
            )
        array = array.astype(np.int64)
    if array.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {array.shape}")
    # Adopt the buffer only when nothing else can mutate it: either the
    # conversion produced fresh base-less memory, or the caller handed over
    # an already-frozen base-less array.  Anything aliased (views — even
    # read-only views over a writable base — or buffer-protocol wrappers)
    # is copied, so a frozen EdgeArrays can never change under its Network.
    fresh = array is not values and array.base is None
    owns_frozen = array is values and not array.flags.writeable and array.base is None
    if not (fresh or owns_frozen):
        array = array.copy()
    array.setflags(write=False)
    return array


@dataclass(frozen=True, eq=False)
class EdgeArrays:
    """An edge list as flat endpoint arrays — the canonical graph interchange.

    Attributes:
        n: number of vertices (vertices are always ``0..n-1``).
        src: int64 endpoint array (read-only), one entry per edge.
        dst: int64 endpoint array (read-only), aligned with ``src``.
        meta: optional provenance (generator family, parameters, seed).

    Equality is identity (the numpy fields make field-wise ``==`` ambiguous);
    compare topologies with :func:`numpy.array_equal` on ``src``/``dst`` or
    via :meth:`as_pairs` when order-insensitive comparison is wanted.
    """

    n: int
    src: np.ndarray
    dst: np.ndarray
    meta: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError("n must be non-negative")
        src = _frozen_i64(self.src, "src")
        dst = _frozen_i64(self.dst, "dst")
        if src.shape != dst.shape:
            raise ValueError(
                f"src and dst must have equal length, got {src.size} and {dst.size}"
            )
        if src.size:
            lo = min(int(src.min()), int(dst.min()))
            hi = max(int(src.max()), int(dst.max()))
            if lo < 0 or hi >= self.n:
                raise ValueError("edge list refers to vertices outside 0..n-1")
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "dst", dst)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def m(self) -> int:
        """Number of edge entries (duplicates, if any, included)."""
        return int(self.src.size)

    def __len__(self) -> int:
        return self.m

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        family = self.meta.get("family") if self.meta else None
        tag = f", family={family!r}" if family else ""
        return f"EdgeArrays(n={self.n}, m={self.m}{tag})"

    # ------------------------------------------------------------------ #
    # Compat wrappers (tuple-of-pairs interchange)
    # ------------------------------------------------------------------ #

    @classmethod
    def from_pairs(
        cls,
        n: int,
        edges: Iterable[Edge],
        meta: Mapping[str, object] | None = None,
    ) -> "EdgeArrays":
        """Lift a legacy ``(n, edges)`` tuple-of-pairs edge list into arrays."""
        pairs = np.asarray(list(edges) if not isinstance(edges, (list, tuple)) else edges)
        if pairs.size == 0:
            pairs = pairs.reshape(0, 2).astype(np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError("edges must be a sequence of (u, v) pairs")
        if pairs.dtype != np.int64:
            # Same refuse-lossy-casts rule as direct array construction.
            if not np.issubdtype(pairs.dtype, np.integer):
                raise ValueError(
                    f"edges must have integer endpoints, got dtype {pairs.dtype}"
                )
            pairs = pairs.astype(np.int64)
        return cls(n=n, src=pairs[:, 0], dst=pairs[:, 1], meta=dict(meta or {}))

    def as_pairs(self) -> List[Edge]:
        """The tuple-per-edge view (compat; costs one Python object per edge)."""
        return list(zip(self.src.tolist(), self.dst.tolist()))

    def as_edge_list(self) -> Tuple[int, List[Edge]]:
        """The legacy ``(n, edges)`` pair consumed by tuple-era call sites."""
        # repro-lint: allow[REP002] this IS the documented compat wrapper
        return self.n, self.as_pairs()

    def with_meta(self, **meta: object) -> "EdgeArrays":
        """A copy with extra provenance merged into ``meta`` (arrays shared)."""
        merged = dict(self.meta)
        merged.update(meta)
        return EdgeArrays(n=self.n, src=self.src, dst=self.dst, meta=merged)


def as_edge_arrays(source: object) -> EdgeArrays:
    """Coerce a graph source into :class:`EdgeArrays`.

    Accepts an :class:`EdgeArrays` (returned as-is), a legacy ``(n, edges)``
    pair, or a networkx-like graph (anything with ``number_of_nodes()`` /
    ``edges()``; nodes must be ``0..n-1``).  :class:`Network` objects are
    deliberately *not* accepted — they already hold a finished topology, and
    every consumer of this helper accepts them directly.
    """
    if isinstance(source, EdgeArrays):
        return source
    if isinstance(source, tuple) and len(source) == 2:
        n, edges = source
        return EdgeArrays.from_pairs(int(n), edges)
    number_of_nodes = getattr(source, "number_of_nodes", None)
    if callable(number_of_nodes):
        # repro-lint: allow[REP002] nx-graph coercion boundary (cold path)
        return EdgeArrays.from_pairs(int(number_of_nodes()), list(source.edges()))
    raise TypeError(
        f"cannot interpret {type(source).__name__!r} as an edge-array graph source"
    )
