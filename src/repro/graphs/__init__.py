"""Workload graph generators, the array edge-list interchange, girth utilities, and transforms."""

from repro.graphs import edgelist, generators, girth, transforms
from repro.graphs.edgelist import EdgeArrays, as_edge_arrays
from repro.graphs.transforms import line_graph, power_graph, two_copies_with_perfect_matching

__all__ = [
    "edgelist",
    "generators",
    "girth",
    "transforms",
    "EdgeArrays",
    "as_edge_arrays",
    "line_graph",
    "power_graph",
    "two_copies_with_perfect_matching",
]
