"""Workload graph generators, girth utilities, and transforms."""

from repro.graphs import generators, girth, transforms
from repro.graphs.transforms import line_graph, power_graph, two_copies_with_perfect_matching

__all__ = [
    "generators",
    "girth",
    "transforms",
    "line_graph",
    "power_graph",
    "two_copies_with_perfect_matching",
]
