"""Parameter sweeps for the benchmark harness.

A sweep runs one or more algorithms over a family of networks (e.g. growing
``n`` or growing ``Δ``), measures every averaged-complexity notion for each
combination, and returns the rows that the benchmark scripts print and that
EXPERIMENTS.md records.

Sweeps can fan their ``(value, algorithm, trial)`` cells across a
``multiprocessing`` pool (``parallel=``).  Every cell derives its seed from
the same deterministic schedule as the serial path
(:func:`repro.core.experiment.trial_seed`), so a parallel sweep produces
**identical measurements** to a serial one — parallelism only changes
wall-clock time, never results.
"""

from __future__ import annotations

import multiprocessing
import os
from array import array
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import networkx as nx
import numpy as np

from repro.core.experiment import resolve_network, run_trials, trial_seed
from repro.core.metrics import ComplexityMeasurement, measure
from repro.core.problems import ProblemSpec
from repro.graphs.edgelist import EdgeArrays
from repro.local.algorithm import NodeAlgorithm
from repro.local.network import Network
from repro.local.runner import Runner

__all__ = ["SweepPoint", "sweep", "network_from"]

AlgorithmFactory = Callable[[Network], NodeAlgorithm]
ProblemFactory = Callable[[Network], ProblemSpec]
#: What a sweep's ``graph_factory`` may return: a networkx graph (legacy), a
#: ready-made :class:`Network`, a ``(n, edges)`` pair from the direct
#: edge-list generators, or an :class:`EdgeArrays` (the array-first
#: interchange; the fastest option at large ``n``) — everything but the
#: networkx graph stays off networkx entirely.
GraphLike = Union[
    nx.Graph, Network, EdgeArrays, Tuple[int, Sequence[Tuple[int, int]]]
]


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter value, algorithm) measurement of a sweep."""

    parameter: str
    value: object
    measurement: ComplexityMeasurement

    def as_row(self) -> Dict[str, object]:
        row = {"parameter": self.parameter, "value": self.value}
        row.update(self.measurement.as_dict())
        return row


def network_from(graph: GraphLike, seed: int = 0, id_scheme: str = "permuted") -> Network:
    """Wrap a workload into a network with the benchmark's default ID scheme.

    Accepts a networkx graph, an ``(n, edges)`` pair (the direct edge-list
    generators' output — no networkx object is ever built), an
    :class:`EdgeArrays` (the array-first interchange, built through the
    vectorised :meth:`Network.from_endpoint_arrays` CSR path), or an
    existing :class:`Network` (returned as-is, its identifiers already
    fixed).  A graph, its ``(n, edges)`` form, and its :class:`EdgeArrays`
    form all produce identical networks for the same ``seed``.

    This is the sweep-facing name for
    :func:`repro.core.experiment.resolve_network` — one dispatcher, so the
    facade and the sweeps can never drift on which graph sources they
    accept.
    """
    return resolve_network(graph, seed=seed, id_scheme=id_scheme)


def sweep(
    parameter: str,
    values: Sequence[object],
    graph_factory: Callable[[object], GraphLike],
    algorithms: Dict[str, Tuple[AlgorithmFactory, ProblemFactory]],
    trials: int = 3,
    seed: int = 0,
    max_rounds: int = 20_000,
    validate: bool = True,
    parallel: Union[bool, int, None] = None,
    engine: str = "node",
) -> List[SweepPoint]:
    """Run a one-dimensional parameter sweep.

    Args:
        parameter: name of the swept parameter (for reporting).
        values: the parameter values.
        graph_factory: builds the workload for a parameter value — a
            networkx graph, an ``(n, edges)`` pair, an :class:`EdgeArrays`,
            or a :class:`Network` (see :func:`network_from`).  Large-``n``
            sweeps should return :class:`EdgeArrays` from the direct
            generators' ``as_arrays=True`` mode so neither the factory nor
            the network build touches per-edge Python objects (for
            Erdős–Rényi workloads at ``n ≥ 10⁵`` use the geometric-skip
            :func:`repro.graphs.generators.fast_gnp_edges` with
            ``as_arrays=True``).
        algorithms: mapping from a display name to a pair
            ``(algorithm_factory, problem_factory)``; both factories receive
            the constructed :class:`Network` so that algorithms can consume
            global knowledge such as Δ or the identifier bit length.
        trials: independent executions per (value, algorithm) pair.
        seed: base randomness.
        max_rounds: round cap of the runner.
        validate: assert solution validity on every trial.
        parallel: fan the ``(value, algorithm, trial)`` cells across a
            process pool: ``True`` uses one worker per CPU, an integer pins
            the worker count, ``None``/``False``/``1`` runs serially.  The
            pool uses the ``fork`` start method so the (possibly
            unpicklable) factories can be inherited by the workers; on
            platforms where ``fork`` is not the default start method (e.g.
            macOS, Windows) the sweep silently falls back to the serial
            path.  Results are identical either way **provided the
            factories are pure functions of their arguments** (take
            randomness from an explicit seed, e.g.
            ``lambda n: gnp_random_graph(n, p, seed=n)``): workers may
            re-invoke ``graph_factory`` for the same value from
            forked-at-pool-creation state, so a factory that draws from a
            shared RNG or mutates external state produces different graphs
            in parallel than serially.
        engine: ``"node"`` (default, per-node coroutine runner — bit-exact
            traces), ``"array"`` (the vectorised
            :class:`repro.local.engine.ArrayEngine`; raises for algorithms
            without an array twin), or ``"auto"`` (array engine exactly for
            algorithms implementing the ArrayAlgorithm protocol).  Applies
            to serial and parallel execution alike — a parallel sweep on
            the array engine still produces measurements identical to the
            serial array sweep (same per-cell seed schedule).

    Returns:
        One :class:`SweepPoint` per (value, algorithm) combination, in order.
    """
    workers = _resolve_workers(parallel)
    cells = len(values) * len(algorithms) * trials
    if workers > 1 and cells > 1 and _fork_available():
        return _sweep_parallel(
            parameter=parameter,
            values=values,
            graph_factory=graph_factory,
            algorithms=algorithms,
            trials=trials,
            seed=seed,
            max_rounds=max_rounds,
            validate=validate,
            workers=min(workers, cells),
            engine=engine,
        )

    points: List[SweepPoint] = []
    runner = Runner(max_rounds=max_rounds)
    for index, value in enumerate(values):
        graph = graph_factory(value)
        network = network_from(graph, seed=seed + index)
        for name, (algorithm_factory, problem_factory) in algorithms.items():
            problem = problem_factory(network)
            traces = run_trials(
                lambda: algorithm_factory(network),
                network,
                problem,
                trials=trials,
                seed=seed + 1000 * index,
                runner=runner,
                validate=validate,
                engine=engine,
            )
            measurement = measure(traces)
            # Attach the display name chosen by the caller rather than the
            # algorithm's own name, so that two configurations of the same
            # algorithm can be compared in one sweep.
            measurement = _renamed(measurement, name)
            points.append(SweepPoint(parameter=parameter, value=value, measurement=measurement))
    return points


def _renamed(measurement: ComplexityMeasurement, name: str) -> ComplexityMeasurement:
    return replace(measurement, algorithm=name)


def _resolve_workers(parallel: Union[bool, int, None]) -> int:
    if parallel is True:
        return os.cpu_count() or 1
    if parallel in (None, False):
        return 1
    return max(1, int(parallel))


def _fork_available() -> bool:
    # Fork must be the platform's *default* start method (Linux), not merely
    # available: on macOS fork is offered but unsafe once system frameworks
    # or threads are initialised (CPython switched the default to spawn for
    # that reason), so there we fall back to the serial path instead.
    try:
        return multiprocessing.get_start_method() == "fork"
    except RuntimeError:  # pragma: no cover - start method not determinable
        return False


# ---------------------------------------------------------------------- #
# Parallel execution
# ---------------------------------------------------------------------- #
#
# The graph/algorithm/problem factories handed to sweep() are commonly
# closures or lambdas, which cannot be pickled.  The pool therefore uses the
# `fork` start method and the workers read the sweep specification from a
# module global inherited from the parent process at fork time; the task
# tuples sent through the pool are plain picklable (index, name, trial)
# triples, and the results are plain lists of completion times.

_PARALLEL_SPEC: Optional[Dict[str, object]] = None
_WORKER_NETWORKS: Dict[int, Network] = {}


class _CellTrace:
    """Duck-typed stand-in for :class:`ExecutionTrace` built from worker results.

    Exposes exactly what :func:`repro.core.metrics.measure` consumes, so the
    parent process can aggregate parallel cells through the same code path as
    serial traces (and hence produce bit-identical measurements).
    """

    class _Net:
        __slots__ = ("n", "m")

        def __init__(self, n: int, m: int) -> None:
            self.n = n
            self.m = m

    class _Problem:
        __slots__ = ("name",)

        def __init__(self, name: str) -> None:
            self.name = name

    def __init__(
        self,
        n: int,
        m: int,
        problem_name: str,
        algorithm_name: str,
        node_times: Sequence[int],
        edge_times: Sequence[int],
    ) -> None:
        self.network = _CellTrace._Net(n, m)
        self.problem = _CellTrace._Problem(problem_name)
        self.algorithm_name = algorithm_name
        # The worker ships flat array('q') buffers; np.asarray wraps them
        # zero-copy, so the parent-side aggregation runs on int64 arrays
        # exactly like the serial measurement path.
        self._node_times = np.asarray(node_times, dtype=np.int64)
        self._edge_times = np.asarray(edge_times, dtype=np.int64)

    def node_completion_array(self) -> np.ndarray:
        return self._node_times

    def edge_completion_array(self) -> np.ndarray:
        return self._edge_times

    def node_completion_times(self) -> Sequence[int]:
        return self._node_times.tolist()

    def edge_completion_times(self) -> Sequence[int]:
        return self._edge_times.tolist()

    def worst_case_rounds(self) -> int:
        return int(
            max(
                np.max(self._node_times, initial=0),
                np.max(self._edge_times, initial=0),
            )
        )


def _parallel_worker(task: Tuple[int, str, int]) -> Tuple[int, str, int, Dict[str, object]]:
    index, name, trial = task
    spec = _PARALLEL_SPEC
    assert spec is not None, "worker forked without a sweep specification"
    network = _WORKER_NETWORKS.get(index)
    if network is None:
        graph = spec["graph_factory"](spec["values"][index])  # type: ignore[operator]
        network = network_from(graph, seed=spec["seed"] + index)  # type: ignore[operator]
        _WORKER_NETWORKS[index] = network
    algorithm_factory, problem_factory = spec["algorithms"][name]  # type: ignore[index]
    problem = problem_factory(network)
    cell_seed = trial_seed(spec["seed"] + 1000 * index, trial)  # type: ignore[operator]
    traces = run_trials(
        lambda: algorithm_factory(network),
        network,
        problem,
        trials=1,
        seed=cell_seed,
        runner=Runner(max_rounds=spec["max_rounds"]),  # type: ignore[arg-type]
        validate=bool(spec["validate"]),
        engine=str(spec.get("engine", "node")),
    )
    trace = traces[0]
    return (
        index,
        name,
        trial,
        {
            "n": network.n,
            "m": network.m,
            "problem": problem.name,
            "algorithm": trace.algorithm_name,
            # Ship flat int64 arrays through the pool: they pickle as raw
            # bytes (8 B/entry) instead of per-int list items, and measure()
            # consumes them exactly like lists (identical arithmetic).
            "node_times": array("q", trace.node_completion_array().tobytes()),
            "edge_times": array("q", trace.edge_completion_array().tobytes()),
        },
    )


def _sweep_parallel(
    parameter: str,
    values: Sequence[object],
    graph_factory: Callable[[object], GraphLike],
    algorithms: Dict[str, Tuple[AlgorithmFactory, ProblemFactory]],
    trials: int,
    seed: int,
    max_rounds: int,
    validate: bool,
    workers: int,
    engine: str = "node",
) -> List[SweepPoint]:
    global _PARALLEL_SPEC
    tasks = [
        (index, name, trial)
        for index in range(len(values))
        for name in algorithms
        for trial in range(trials)
    ]
    spec: Dict[str, object] = {
        "values": list(values),
        "graph_factory": graph_factory,
        "algorithms": dict(algorithms),
        "seed": seed,
        "max_rounds": max_rounds,
        "validate": validate,
        "engine": engine,
    }
    context = multiprocessing.get_context("fork")
    previous_spec = _PARALLEL_SPEC
    _PARALLEL_SPEC = spec
    try:
        with context.Pool(processes=workers) as pool:
            results = pool.map(_parallel_worker, tasks)
    finally:
        _PARALLEL_SPEC = previous_spec

    by_cell: Dict[Tuple[int, str], List[Optional[_CellTrace]]] = {
        (index, name): [None] * trials for index in range(len(values)) for name in algorithms
    }
    for index, name, trial, payload in results:
        by_cell[(index, name)][trial] = _CellTrace(
            n=payload["n"],
            m=payload["m"],
            problem_name=payload["problem"],
            algorithm_name=payload["algorithm"],
            node_times=payload["node_times"],
            edge_times=payload["edge_times"],
        )

    points: List[SweepPoint] = []
    for index, value in enumerate(values):
        for name in algorithms:
            traces = by_cell[(index, name)]
            assert all(t is not None for t in traces)
            measurement = _renamed(measure(traces), name)
            points.append(SweepPoint(parameter=parameter, value=value, measurement=measurement))
    return points
