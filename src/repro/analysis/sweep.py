"""Parameter sweeps for the benchmark harness.

A sweep runs one or more algorithms over a family of networks (e.g. growing
``n`` or growing ``Δ``), measures every averaged-complexity notion for each
combination, and returns the rows that the benchmark scripts print and that
EXPERIMENTS.md records.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.core.experiment import run_trials
from repro.core.metrics import ComplexityMeasurement, measure
from repro.core.problems import ProblemSpec
from repro.local.algorithm import NodeAlgorithm
from repro.local.network import Network
from repro.local.runner import Runner

__all__ = ["SweepPoint", "sweep", "network_from"]

AlgorithmFactory = Callable[[Network], NodeAlgorithm]
ProblemFactory = Callable[[Network], ProblemSpec]


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter value, algorithm) measurement of a sweep."""

    parameter: str
    value: object
    measurement: ComplexityMeasurement

    def as_row(self) -> Dict[str, object]:
        row = {"parameter": self.parameter, "value": self.value}
        row.update(self.measurement.as_dict())
        return row


def network_from(graph: nx.Graph, seed: int = 0, id_scheme: str = "permuted") -> Network:
    """Wrap a graph into a network with the benchmark's default ID scheme."""
    return Network.from_graph(graph, id_scheme=id_scheme, rng=random.Random(seed))


def sweep(
    parameter: str,
    values: Sequence[object],
    graph_factory: Callable[[object], nx.Graph],
    algorithms: Dict[str, Tuple[AlgorithmFactory, ProblemFactory]],
    trials: int = 3,
    seed: int = 0,
    max_rounds: int = 20_000,
    validate: bool = True,
) -> List[SweepPoint]:
    """Run a one-dimensional parameter sweep.

    Args:
        parameter: name of the swept parameter (for reporting).
        values: the parameter values.
        graph_factory: builds the workload graph for a parameter value.
        algorithms: mapping from a display name to a pair
            ``(algorithm_factory, problem_factory)``; both factories receive
            the constructed :class:`Network` so that algorithms can consume
            global knowledge such as Δ or the identifier bit length.
        trials: independent executions per (value, algorithm) pair.
        seed: base randomness.
        max_rounds: round cap of the runner.
        validate: assert solution validity on every trial.

    Returns:
        One :class:`SweepPoint` per (value, algorithm) combination, in order.
    """
    points: List[SweepPoint] = []
    runner = Runner(max_rounds=max_rounds)
    for index, value in enumerate(values):
        graph = graph_factory(value)
        network = network_from(graph, seed=seed + index)
        for name, (algorithm_factory, problem_factory) in algorithms.items():
            problem = problem_factory(network)
            traces = run_trials(
                lambda: algorithm_factory(network),
                network,
                problem,
                trials=trials,
                seed=seed + 1000 * index,
                runner=runner,
                validate=validate,
            )
            measurement = measure(traces)
            # Attach the display name chosen by the caller rather than the
            # algorithm's own name, so that two configurations of the same
            # algorithm can be compared in one sweep.
            measurement = ComplexityMeasurement(
                algorithm=name,
                problem=measurement.problem,
                n=measurement.n,
                m=measurement.m,
                trials=measurement.trials,
                node_averaged=measurement.node_averaged,
                edge_averaged=measurement.edge_averaged,
                node_expected=measurement.node_expected,
                edge_expected=measurement.edge_expected,
                worst_case=measurement.worst_case,
            )
            points.append(SweepPoint(parameter=parameter, value=value, measurement=measurement))
    return points
