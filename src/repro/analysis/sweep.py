"""Parameter sweeps for the benchmark harness.

A sweep runs one or more algorithms over a family of networks (e.g. growing
``n`` or growing ``Δ``), measures every averaged-complexity notion for each
combination, and returns the rows that the benchmark scripts print and that
EXPERIMENTS.md records.

Sweeps can fan their ``(value, algorithm, trial)`` cells across a
``multiprocessing`` pool (``parallel=``).  Every cell derives its seed from
the same deterministic schedule as the serial path
(:func:`repro.core.experiment.trial_seed`), so a parallel sweep produces
**identical measurements** to a serial one — parallelism only changes
wall-clock time, never results.

Crash safety.  Long sweeps die for boring reasons — an OOM-killed pool
worker, a wall-clock limit, a Ctrl-C — and before this module grew its
resilience layer any of those lost the whole run.  The layer has three
parts, all opt-in:

* ``on_error="record"`` turns per-cell exceptions (validation failures,
  round-limit overruns, :class:`~repro.core.errors.CellTimeout` when
  ``cell_timeout`` is set) into structured :class:`CellFailure` rows on the
  returned :class:`SweepResult` instead of aborting the sweep;
* ``checkpoint=<path>`` journals every finished cell to a JSON-lines file
  (format ``sweep-checkpoint/v1``: one header line, then one row per cell).
  Re-running the same sweep with the same checkpoint path skips cells whose
  ``ok`` rows are already journaled and retries recorded failures, so an
  interrupted sweep resumes cell-exactly — the per-cell seed schedule makes
  the resumed results identical to an uninterrupted run;
* the parallel path survives *lost* workers: a pool worker that dies
  without reporting (the classic OOM SIGKILL, which would hang
  ``Pool.map`` forever) is detected via a result stall, the pool is torn
  down, and every unfinished cell is re-run serially in the parent with its
  original seed.  A cell that fails again is recorded as a
  :class:`~repro.core.errors.WorkerCrashed` failure row (or re-raised under
  ``on_error="raise"``).  ``KeyboardInterrupt`` tears the pool down, flushes
  the checkpoint, and re-raises.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import warnings
from array import array
from dataclasses import dataclass, replace
from multiprocessing import shared_memory
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import networkx as nx
import numpy as np

from repro.core import schemas
from repro.core.errors import (
    CheckpointLocked,
    ReproError,
    WorkerCrashed,
    classify_failure,
)

try:  # POSIX: kernel-held lock, auto-released when the holder dies
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback uses a sidecar
    fcntl = None  # type: ignore[assignment]
from repro.core.experiment import _faults_active, resolve_network, run_trials, trial_seed
from repro.core.metrics import ComplexityMeasurement, RecoveryTimeline, measure
from repro.core.problems import ProblemSpec
from repro.graphs.edgelist import EdgeArrays
from repro.local.algorithm import NodeAlgorithm
from repro.local.faults import FaultSchedule
from repro.local.network import Network
from repro.local.runner import Runner

__all__ = [
    "SweepPoint",
    "SweepResult",
    "CellFailure",
    "CHECKPOINT_FORMAT",
    "sweep",
    "network_from",
    "read_checkpoint",
    "collect_rows",
]

AlgorithmFactory = Callable[[Network], NodeAlgorithm]
ProblemFactory = Callable[[Network], ProblemSpec]
#: What a sweep's ``graph_factory`` may return: a networkx graph (legacy), a
#: ready-made :class:`Network`, a ``(n, edges)`` pair from the direct
#: edge-list generators, or an :class:`EdgeArrays` (the array-first
#: interchange; the fastest option at large ``n``) — everything but the
#: networkx graph stays off networkx entirely.
GraphLike = Union[
    nx.Graph, Network, EdgeArrays, Tuple[int, Sequence[Tuple[int, int]]]
]

#: Identifier of the checkpoint file format written by ``checkpoint=``;
#: spelled out once in :mod:`repro.core.schemas`.
CHECKPOINT_FORMAT = schemas.SWEEP_CHECKPOINT

#: Result-stall window (seconds) used to detect lost pool workers when no
#: ``cell_timeout`` bounds the cells.  With a ``cell_timeout``, the window is
#: the timeout plus :data:`_STALL_GRACE`.  Module-level so tests can shrink it.
_DEFAULT_STALL_TIMEOUT = 300.0
_STALL_GRACE = 60.0

#: Test seam: when set, called with each checkpoint row right after it is
#: written and flushed (used to inject interrupts at precise points).
_test_hook: Optional[Callable[[Dict[str, object]], None]] = None


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter value, algorithm) measurement of a sweep."""

    parameter: str
    value: object
    measurement: ComplexityMeasurement

    def as_row(self) -> Dict[str, object]:
        row = {"parameter": self.parameter, "value": self.value}
        row.update(self.measurement.as_dict())
        return row


@dataclass(frozen=True)
class CellFailure:
    """A (value, algorithm, trial) cell that failed under ``on_error="record"``.

    ``kind`` is the :func:`repro.core.errors.classify_failure` slug of the
    error (``"validation-failed"``, ``"round-limit"``, ``"timeout"``,
    ``"worker-crashed"``, or ``"exception:<TypeName>"``); ``seed`` is the
    cell's trial seed, so the failure reproduces with a single serial run.
    """

    parameter: str
    value: object
    algorithm: str
    trial: int
    seed: int
    kind: str
    message: str

    def as_row(self) -> Dict[str, object]:
        return {
            "parameter": self.parameter,
            "value": self.value,
            "algorithm": self.algorithm,
            "trial": self.trial,
            "seed": self.seed,
            "kind": self.kind,
            "message": self.message,
        }


class SweepResult(List[SweepPoint]):
    """The points of a sweep plus the structured failures it recorded.

    A plain ``list`` subclass: every existing consumer of ``sweep()`` (which
    returned ``List[SweepPoint]``) keeps working unchanged, and ``==``
    against a plain list of points still holds.  ``failures`` is empty
    unless ``on_error="record"`` turned broken cells into rows.
    """

    def __init__(
        self,
        points: Iterable[SweepPoint] = (),
        failures: Iterable[CellFailure] = (),
    ) -> None:
        super().__init__(points)
        self.failures: List[CellFailure] = list(failures)

    @property
    def ok(self) -> bool:
        """Whether no cell failed."""
        return not self.failures


def network_from(graph: GraphLike, seed: int = 0, id_scheme: str = "permuted") -> Network:
    """Wrap a workload into a network with the benchmark's default ID scheme.

    Accepts a networkx graph, an ``(n, edges)`` pair (the direct edge-list
    generators' output — no networkx object is ever built), an
    :class:`EdgeArrays` (the array-first interchange, built through the
    vectorised :meth:`Network.from_endpoint_arrays` CSR path), or an
    existing :class:`Network` (returned as-is, its identifiers already
    fixed).  A graph, its ``(n, edges)`` form, and its :class:`EdgeArrays`
    form all produce identical networks for the same ``seed``.

    This is the sweep-facing name for
    :func:`repro.core.experiment.resolve_network` — one dispatcher, so the
    facade and the sweeps can never drift on which graph sources they
    accept.
    """
    return resolve_network(graph, seed=seed, id_scheme=id_scheme)


def sweep(
    parameter: str,
    values: Sequence[object],
    graph_factory: Callable[[object], GraphLike],
    algorithms: Dict[str, Tuple[AlgorithmFactory, ProblemFactory]],
    trials: int = 3,
    seed: int = 0,
    max_rounds: int = 20_000,
    validate: bool = True,
    parallel: Union[bool, int, None] = None,
    engine: str = "node",
    faults: Optional[FaultSchedule] = None,
    cell_timeout: Optional[float] = None,
    checkpoint: Optional[str] = None,
    on_error: str = "raise",
    batch_budget_bytes: Optional[int] = None,
) -> "SweepResult":
    """Run a one-dimensional parameter sweep.

    Args:
        parameter: name of the swept parameter (for reporting).
        values: the parameter values.
        graph_factory: builds the workload for a parameter value — a
            networkx graph, an ``(n, edges)`` pair, an :class:`EdgeArrays`,
            or a :class:`Network` (see :func:`network_from`).  Large-``n``
            sweeps should return :class:`EdgeArrays` from the direct
            generators' ``as_arrays=True`` mode so neither the factory nor
            the network build touches per-edge Python objects (for
            Erdős–Rényi workloads at ``n ≥ 10⁵`` use the geometric-skip
            :func:`repro.graphs.generators.fast_gnp_edges` with
            ``as_arrays=True``).
        algorithms: mapping from a display name to a pair
            ``(algorithm_factory, problem_factory)``; both factories receive
            the constructed :class:`Network` so that algorithms can consume
            global knowledge such as Δ or the identifier bit length.
        trials: independent executions per (value, algorithm) pair.
        seed: base randomness.
        max_rounds: round cap of the runner.
        validate: assert solution validity on every trial.
        parallel: fan the ``(value, algorithm, trial)`` cells across a
            process pool: ``True`` uses one worker per CPU, an integer pins
            the worker count, ``None``/``False``/``1`` runs serially.  The
            pool uses the ``fork`` start method so the (possibly
            unpicklable) factories can be inherited by the workers; on
            platforms where ``fork`` is not the default start method (e.g.
            macOS, Windows) the sweep silently falls back to the serial
            path.  Results are identical either way **provided the
            factories are pure functions of their arguments** (take
            randomness from an explicit seed, e.g.
            ``lambda n: gnp_random_graph(n, p, seed=n)``): workers may
            re-invoke ``graph_factory`` for the same value from
            forked-at-pool-creation state, so a factory that draws from a
            shared RNG or mutates external state produces different graphs
            in parallel than serially.
        engine: ``"node"`` (default, per-node coroutine runner — bit-exact
            traces), ``"array"`` (the vectorised
            :class:`repro.local.engine.ArrayEngine`; raises for algorithms
            without an array twin), or ``"auto"`` (array engine exactly for
            algorithms implementing the ArrayAlgorithm protocol).  Applies
            to serial and parallel execution alike — a parallel sweep on
            the array engine still produces measurements identical to the
            serial array sweep (same per-cell seed schedule).
        faults: optional :class:`~repro.local.faults.FaultSchedule` injected
            into every trial of every cell (see :mod:`repro.local.faults`
            for the engine-independent seed schedule).
        cell_timeout: optional wall-clock budget in seconds per
            ``(value, algorithm, trial)`` cell; an expired cell raises
            :class:`~repro.core.errors.CellTimeout` (a recorded failure row
            under ``on_error="record"``).  Enforced via ``SIGALRM``, in the
            worker itself on the parallel path.
        checkpoint: optional path to a JSON-lines journal of finished
            cells (format ``sweep-checkpoint/v1``).  When the file already
            holds rows for the same sweep (validated against a header),
            cells with ``ok`` rows are skipped and recorded failures are
            retried — interrupted sweeps resume cell-exactly.
        on_error: ``"raise"`` (default) propagates the first broken cell's
            exception; ``"record"`` converts broken cells into
            :class:`CellFailure` rows on the result and keeps sweeping.
        batch_budget_bytes: optional override of the trial-batched array
            engine's chunk byte budget
            (:func:`repro.local.engine.batch_chunk`; the engine's 24 MiB
            cache-residency default when ``None``).  Recorded in the
            checkpoint header as provenance; batch-size invariance makes it
            a pure throughput knob — rows are identical for every budget.

    Returns:
        A :class:`SweepResult` (a ``list`` of one :class:`SweepPoint` per
        (value, algorithm) combination with at least one finished trial, in
        order) whose ``failures`` lists the recorded broken cells.
    """
    if on_error not in ("raise", "record"):
        raise ValueError(f"on_error must be 'raise' or 'record', got {on_error!r}")
    spec: Dict[str, object] = {
        "parameter": parameter,
        "values": list(values),
        "graph_factory": graph_factory,
        "algorithms": dict(algorithms),
        "trials": trials,
        "seed": seed,
        "max_rounds": max_rounds,
        "validate": validate,
        "engine": engine,
        "faults": faults,
        "cell_timeout": cell_timeout,
        "on_error": on_error,
        "batch_budget": batch_budget_bytes,
    }
    workers = _resolve_workers(parallel)
    cells = len(values) * len(algorithms) * trials
    fork_ok = _fork_available()
    if workers > 1 and cells > 1 and not fork_ok:
        # The silent serial fallback hid real throughput regressions (a sweep
        # configured with parallel=8 quietly running on one core); surface it.
        warnings.warn(
            "parallel sweep requested but the 'fork' start method is not the "
            f"platform default (got {multiprocessing.get_start_method(allow_none=True)!r}); "
            "running serially — results are identical, only slower",
            RuntimeWarning,
            stacklevel=2,
        )
    # Effective parallelism is recorded in the checkpoint header (provenance
    # only, never mismatch-enforced), so a journal written on a fork platform
    # and resumed on a spawn platform still loads.
    spec["parallel"] = bool(workers > 1 and cells > 1 and fork_ok)
    journal = _Checkpoint(checkpoint, spec) if checkpoint is not None else None
    try:
        if spec["parallel"]:
            return _sweep_parallel(spec, min(workers, cells), journal)
        resilient = (
            journal is not None or on_error == "record" or cell_timeout is not None
        )
        if resilient:
            return _sweep_serial_resilient(spec, journal)
    finally:
        if journal is not None:
            journal.close()

    # The historical serial fast path: one run_trials batch per
    # (value, algorithm), identical factory invocation counts and traces.
    points: List[SweepPoint] = []
    runner = Runner(max_rounds=max_rounds)
    for index, value in enumerate(values):
        graph = graph_factory(value)
        network = network_from(graph, seed=seed + index)
        for name, (algorithm_factory, problem_factory) in algorithms.items():
            problem = problem_factory(network)
            traces = run_trials(
                lambda: algorithm_factory(network),
                network,
                problem,
                trials=trials,
                seed=seed + 1000 * index,
                runner=runner,
                validate=validate,
                engine=engine,
                faults=faults,
                batch_budget_bytes=batch_budget_bytes,
            )
            measurement = measure(traces)
            # Attach the display name chosen by the caller rather than the
            # algorithm's own name, so that two configurations of the same
            # algorithm can be compared in one sweep.
            measurement = _renamed(measurement, name)
            points.append(SweepPoint(parameter=parameter, value=value, measurement=measurement))
    return SweepResult(points)


def _renamed(measurement: ComplexityMeasurement, name: str) -> ComplexityMeasurement:
    return replace(measurement, algorithm=name)


def _resolve_workers(parallel: Union[bool, int, None]) -> int:
    if parallel is True:
        return os.cpu_count() or 1
    if parallel in (None, False):
        return 1
    return max(1, int(parallel))


def _fork_available() -> bool:
    # Fork must be the platform's *default* start method (Linux), not merely
    # available: on macOS fork is offered but unsafe once system frameworks
    # or threads are initialised (CPython switched the default to spawn for
    # that reason), so there we fall back to the serial path instead.
    try:
        return multiprocessing.get_start_method() == "fork"
    except RuntimeError:  # pragma: no cover - start method not determinable
        return False


# ---------------------------------------------------------------------- #
# Cells
# ---------------------------------------------------------------------- #
#
# A cell is one (value index, algorithm name, trial) triple; its seed is the
# same trial_seed schedule the serial batch path uses, which is what makes
# the serial, parallel, and resumed-from-checkpoint paths produce identical
# measurements.  Cell results travel as plain dict rows — "ok" rows carry
# the flat completion-time buffers that measure() consumes, "failure" rows
# the classify_failure slug — so the same row format serves the pool
# protocol, the checkpoint journal, and the aggregation step.

CellKey = Tuple[int, str, int]


def _cell_seed(spec: Dict[str, object], index: int, trial: int) -> int:
    return trial_seed(int(spec["seed"]) + 1000 * index, trial)


def _cell_network(
    spec: Dict[str, object], index: int, cache: Dict[int, Network]
) -> Network:
    network = cache.get(index)
    if network is None:
        # Pool workers first try to reassemble the network zero-copy from the
        # shared CSR manifest published by the parent; outside a parallel
        # sweep (or for indices the parent could not export) the factory
        # rebuild below is the path, exactly as before.
        network = _attach_shared_network(index)
        if network is None:
            graph = spec["graph_factory"](spec["values"][index])  # type: ignore[operator, index]
            network = network_from(graph, seed=int(spec["seed"]) + index)
        cache[index] = network
    return network


def _ok_row(
    network: Network, problem: ProblemSpec, index: int, name: str, trial: int, trace
) -> Dict[str, object]:
    row = {
        "status": "ok",
        "index": index,
        "name": name,
        "trial": trial,
        "n": network.n,
        "m": network.m,
        "problem": problem.name,
        "algorithm": trace.algorithm_name,
        # Flat int64 buffers: they pickle through the pool as raw bytes
        # (8 B/entry) instead of per-int list items, and measure() consumes
        # them exactly like lists (identical arithmetic).
        "node_times": array("q", trace.node_completion_array().tobytes()),
        "edge_times": array("q", trace.edge_completion_array().tobytes()),
    }
    recovery = getattr(trace, "recovery", None)
    if recovery is not None:
        # Self-stabilising runs carry a per-round recovery timeline; ship it
        # as plain lists so the row survives both pickling and the JSON
        # checkpoint journal, and measure() can aggregate restabilisation
        # times in the parent exactly like on the serial path.
        row["recovery"] = {
            "crash_rounds": list(recovery.crash_rounds),
            "pending": list(recovery.pending),
            "valid": list(recovery.valid),
        }
    return row


def _run_cell(
    spec: Dict[str, object], index: int, name: str, trial: int, cache: Dict[int, Network]
) -> Dict[str, object]:
    """Execute one cell and return its ``ok`` row."""
    network = _cell_network(spec, index, cache)
    algorithm_factory, problem_factory = spec["algorithms"][name]  # type: ignore[index]
    problem = problem_factory(network)
    traces = run_trials(
        lambda: algorithm_factory(network),
        network,
        problem,
        trials=1,
        seed=_cell_seed(spec, index, trial),
        runner=Runner(max_rounds=int(spec["max_rounds"])),  # type: ignore[arg-type]
        validate=bool(spec["validate"]),
        engine=str(spec["engine"]),
        faults=spec["faults"],  # type: ignore[arg-type]
        timeout_s=spec["cell_timeout"],  # type: ignore[arg-type]
        batch_budget_bytes=spec.get("batch_budget"),  # type: ignore[arg-type]
    )
    return _ok_row(network, problem, index, name, trial, traces[0])


def _grouped_execution(spec: Dict[str, object]) -> bool:
    """Whether a cell's remaining trials may run as one batched ``run_trials``.

    Grouping hands all remaining trials of a ``(value, algorithm)`` cell to a
    single :func:`run_trials` call, which on the array engines steps them as
    one trial-batched execution (:meth:`ArrayEngine.run_batch`) — same traces,
    far fewer passes over the topology.  It is restricted to configurations
    where per-trial semantics cannot be observed to differ: no ``cell_timeout``
    (the budget is defined per trial), no fault schedules (faulted runs are
    per-trial by construction), and an array-capable engine (under ``"node"``
    grouping would only coarsen parallel load-balancing for no gain).
    """
    return (
        int(spec["trials"]) > 1
        and spec["cell_timeout"] is None
        and str(spec["engine"]) in ("array", "auto")
        and not _faults_active(spec["faults"])  # type: ignore[arg-type]
    )


def _group_cells(keys: Sequence[CellKey]) -> List[Tuple[Tuple[int, str], List[int]]]:
    """Group cell keys by ``(index, name)``, preserving iteration order."""
    groups: Dict[Tuple[int, str], List[int]] = {}
    for index, name, trial in keys:
        groups.setdefault((index, name), []).append(trial)
    return list(groups.items())


def _contiguous_runs(trials: Sequence[int]) -> List[List[int]]:
    """Split sorted trial numbers into maximal runs of consecutive integers."""
    runs: List[List[int]] = []
    for trial in sorted(trials):
        if runs and trial == runs[-1][-1] + 1:
            runs[-1].append(trial)
        else:
            runs.append([trial])
    return runs


def _run_cell_group(
    spec: Dict[str, object],
    index: int,
    name: str,
    trials_group: Sequence[int],
    cache: Dict[int, Network],
) -> List[Dict[str, object]]:
    """Execute several trials of one cell as batched runs; one row per trial.

    The per-trial seed schedule is arithmetic (``_cell_seed`` is
    ``base + trial``), so a maximal run of consecutive trial numbers maps
    onto one ``run_trials(trials=k, seed=_cell_seed(.., run[0]))`` call whose
    trial ``i`` receives exactly the seed the per-cell path would have used
    for trial ``run[0] + i``.  Non-consecutive remainders (a checkpoint
    resumed mid-cell) split into several runs — batch-size invariance of the
    array engine makes the rows identical either way.
    """
    network = _cell_network(spec, index, cache)
    algorithm_factory, problem_factory = spec["algorithms"][name]  # type: ignore[index]
    problem = problem_factory(network)
    runner = Runner(max_rounds=int(spec["max_rounds"]))  # type: ignore[arg-type]
    rows: List[Dict[str, object]] = []
    for run in _contiguous_runs(trials_group):
        traces = run_trials(
            lambda: algorithm_factory(network),
            network,
            problem,
            trials=len(run),
            seed=_cell_seed(spec, index, run[0]),
            runner=runner,
            validate=bool(spec["validate"]),
            engine=str(spec["engine"]),
            faults=spec["faults"],  # type: ignore[arg-type]
            batch_budget_bytes=spec.get("batch_budget"),  # type: ignore[arg-type]
        )
        for trial, trace in zip(run, traces):
            rows.append(_ok_row(network, problem, index, name, trial, trace))
    return rows


def _failure_row(
    spec: Dict[str, object], index: int, name: str, trial: int, kind: str, message: str
) -> Dict[str, object]:
    return {
        "status": "failure",
        "index": index,
        "name": name,
        "trial": trial,
        "seed": _cell_seed(spec, index, trial),
        "failure": kind,
        "message": message,
    }


class _CellTrace:
    """Duck-typed stand-in for :class:`ExecutionTrace` built from cell rows.

    Exposes exactly what :func:`repro.core.metrics.measure` consumes, so the
    parent process can aggregate parallel / checkpointed cells through the
    same code path as serial traces (and hence produce bit-identical
    measurements).
    """

    class _Net:
        __slots__ = ("n", "m")

        def __init__(self, n: int, m: int) -> None:
            self.n = n
            self.m = m

    class _Problem:
        __slots__ = ("name",)

        def __init__(self, name: str) -> None:
            self.name = name

    def __init__(
        self,
        n: int,
        m: int,
        problem_name: str,
        algorithm_name: str,
        node_times: Sequence[int],
        edge_times: Sequence[int],
        recovery: Optional[RecoveryTimeline] = None,
    ) -> None:
        self.network = _CellTrace._Net(n, m)
        self.problem = _CellTrace._Problem(problem_name)
        self.algorithm_name = algorithm_name
        self.recovery = recovery
        # np.asarray wraps array('q') buffers zero-copy; JSON-revived lists
        # convert once.  Either way aggregation runs on int64 arrays exactly
        # like the serial measurement path.
        self._node_times = np.asarray(node_times, dtype=np.int64)
        self._edge_times = np.asarray(edge_times, dtype=np.int64)

    def node_completion_array(self) -> np.ndarray:
        return self._node_times

    def edge_completion_array(self) -> np.ndarray:
        return self._edge_times

    def node_completion_times(self) -> Sequence[int]:
        return self._node_times.tolist()

    def edge_completion_times(self) -> Sequence[int]:
        return self._edge_times.tolist()

    def worst_case_rounds(self) -> int:
        return int(
            max(
                np.max(self._node_times, initial=0),
                np.max(self._edge_times, initial=0),
            )
        )


def _row_to_trace(row: Dict[str, object]) -> _CellTrace:
    recovery_row = row.get("recovery")
    recovery = None
    if recovery_row is not None:
        recovery = RecoveryTimeline(
            crash_rounds=tuple(int(r) for r in recovery_row["crash_rounds"]),  # type: ignore[index]
            pending=tuple(int(p) for p in recovery_row["pending"]),  # type: ignore[index]
            valid=tuple(bool(v) for v in recovery_row["valid"]),  # type: ignore[index]
        )
    return _CellTrace(
        n=row["n"],  # type: ignore[arg-type]
        m=row["m"],  # type: ignore[arg-type]
        problem_name=row["problem"],  # type: ignore[arg-type]
        algorithm_name=row["algorithm"],  # type: ignore[arg-type]
        node_times=row["node_times"],  # type: ignore[arg-type]
        edge_times=row["edge_times"],  # type: ignore[arg-type]
        recovery=recovery,
    )


def _collect(spec: Dict[str, object], rows: Dict[CellKey, Dict[str, object]]) -> SweepResult:
    """Aggregate cell rows into points (per value × algorithm) and failures."""
    parameter = str(spec["parameter"])
    values: List[object] = spec["values"]  # type: ignore[assignment]
    algorithms: Dict[str, object] = spec["algorithms"]  # type: ignore[assignment]
    trials = int(spec["trials"])
    points: List[SweepPoint] = []
    failures: List[CellFailure] = []
    for index, value in enumerate(values):
        for name in algorithms:
            traces: List[_CellTrace] = []
            for trial in range(trials):
                row = rows.get((index, name, trial))
                if row is None:
                    continue
                if row["status"] == "ok":
                    traces.append(_row_to_trace(row))
                else:
                    failures.append(
                        CellFailure(
                            parameter=parameter,
                            value=value,
                            algorithm=name,
                            trial=trial,
                            seed=int(row["seed"]),  # type: ignore[arg-type]
                            kind=str(row["failure"]),
                            message=str(row["message"]),
                        )
                    )
            if traces:
                measurement = _renamed(measure(traces), name)
                points.append(
                    SweepPoint(parameter=parameter, value=value, measurement=measurement)
                )
    return SweepResult(points, failures)


# ---------------------------------------------------------------------- #
# Checkpointing
# ---------------------------------------------------------------------- #


def read_checkpoint(
    path: str,
) -> Tuple[Dict[str, object], Dict[CellKey, Dict[str, object]]]:
    """Read a ``sweep-checkpoint/v1`` journal: ``(header, rows)``.

    The read-only half of the journal protocol, shared by checkpoint resume
    and the experiment service's journal → store adapter.  ``rows`` maps
    ``(value index, algorithm name, trial)`` to the journaled row dict; a
    later row for the same cell wins (failure retries), and a truncated
    trailing line (the writer died mid-write) is ignored.  No lock is taken
    — readers never conflict with a live writer because rows are appended
    whole lines and flushed.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    try:
        header = json.loads(lines[0])
    except (json.JSONDecodeError, IndexError):
        raise ValueError(f"{path} is not a {CHECKPOINT_FORMAT} checkpoint file")
    if header.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(
            f"{path} has checkpoint format {header.get('format')!r}, "
            f"expected {CHECKPOINT_FORMAT!r}"
        )
    rows: Dict[CellKey, Dict[str, object]] = {}
    for line in lines[1:]:
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue  # truncated trailing line from a killed process
        rows[(row["index"], row["name"], row["trial"])] = row
    return header, rows


def collect_rows(
    parameter: str,
    values: Sequence[object],
    algorithms: Sequence[str],
    trials: int,
    rows: Dict[CellKey, Dict[str, object]],
) -> SweepResult:
    """Aggregate journaled cell rows into a :class:`SweepResult`.

    The public face of the row-aggregation step: given the sweep's identity
    (parameter, values, algorithm display names, trial count) and a row
    mapping as returned by :func:`read_checkpoint`, produce exactly the
    points and failures ``sweep()`` itself would return for those rows —
    same iteration order, same ``measure()`` arithmetic, hence bit-identical
    measurements.  This is what lets the experiment service re-aggregate a
    stored journal without re-running a single cell.
    """
    spec: Dict[str, object] = {
        "parameter": parameter,
        "values": list(values),
        "algorithms": {name: None for name in algorithms},
        "trials": int(trials),
    }
    return _collect(spec, rows)


class _Checkpoint:
    """JSON-lines journal of finished cells (format ``sweep-checkpoint/v1``).

    Line 1 is a header identifying the sweep (parameter, value count,
    algorithm names, trials, seed, engine); every further line is one cell
    row — ``{"status": "ok", ...}`` with the completion-time lists, or
    ``{"status": "failure", ...}`` with the failure slug, seed and message.
    Rows are flushed as they are written, so a killed process loses at most
    the cell it was computing.  On re-open the header is validated against
    the current sweep, finished ``ok`` rows are skipped by the caller, and
    failure rows are retried (a later row for the same cell wins).  A
    truncated trailing line (the process died mid-write) is ignored.

    The journal is single-writer: opening takes an exclusive lock (``flock``
    where available, else an ``O_EXCL`` pid sidecar) and a second live
    writer gets a :class:`~repro.core.errors.CheckpointLocked` error instead
    of silently interleaving rows.  The ``flock`` dies with its holder and
    the sidecar is stolen when its pid is gone, so a SIGKILLed writer never
    wedges the journal.
    """

    def __init__(self, path: str, spec: Dict[str, object]) -> None:
        self.path = path
        self.rows: Dict[CellKey, Dict[str, object]] = {}
        self._lock_sidecar: Optional[str] = None
        header = self._header(spec)
        # Open in append mode first (creating the file if new), take the
        # exclusive writer lock, and only then read/validate/write — so two
        # concurrent openers serialise on the lock before either can decide
        # the file is "theirs".
        self._fh = open(path, "a", encoding="utf-8")
        self._acquire_lock()
        try:
            if os.path.getsize(path) > 0:
                self._load(path, header)
            else:
                self._fh.write(json.dumps(header, sort_keys=True) + "\n")
                self._fh.flush()
        except BaseException:
            self.close()
            raise

    def _acquire_lock(self) -> None:
        if fcntl is not None:
            try:
                fcntl.flock(self._fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                self._fh.close()
                raise CheckpointLocked(
                    f"checkpoint {self.path} is locked by another live writer; "
                    "two sweeps must never share one journal — pass a "
                    "distinct checkpoint path"
                ) from None
            return
        # Non-POSIX fallback: O_EXCL sidecar holding the writer's pid.  A
        # sidecar whose pid no longer exists is stale (the writer was killed
        # before close()) and is stolen.
        sidecar = self.path + ".lock"
        for _ in range(2):
            try:
                fd = os.open(sidecar, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    with open(sidecar, "r", encoding="utf-8") as fh:
                        holder = int(fh.read().strip() or "-1")
                except (OSError, ValueError):
                    holder = -1
                if holder > 0 and _pid_alive(holder):
                    self._fh.close()
                    raise CheckpointLocked(
                        f"checkpoint {self.path} is locked by live writer "
                        f"pid {holder}; two sweeps must never share one "
                        "journal — pass a distinct checkpoint path"
                    ) from None
                try:
                    os.unlink(sidecar)  # stale: holder is gone
                except FileNotFoundError:
                    pass
            else:
                os.write(fd, str(os.getpid()).encode())
                os.close(fd)
                self._lock_sidecar = sidecar
                return
        self._fh.close()
        raise CheckpointLocked(
            f"could not acquire the writer lock on checkpoint {self.path}"
        )

    @staticmethod
    def _header(spec: Dict[str, object]) -> Dict[str, object]:
        return {
            "format": CHECKPOINT_FORMAT,
            "parameter": spec["parameter"],
            "values": [repr(v) for v in spec["values"]],  # type: ignore[union-attr]
            "algorithms": sorted(spec["algorithms"]),  # type: ignore[arg-type]
            "trials": spec["trials"],
            "seed": spec["seed"],
            "engine": spec["engine"],
            # Provenance only: whether the writing run actually fanned out.
            # Deliberately absent from _load's mismatch list — the per-cell
            # seed schedule makes serial and parallel rows identical, so a
            # journal may be written parallel and resumed serial (or on a
            # platform without fork) and still agree cell-exactly.
            "parallel": bool(spec.get("parallel", False)),
            # Provenance only, same reasoning: batch-size invariance makes
            # rows identical under every chunk budget, so a journal written
            # under one budget may be resumed under another.
            "batch_budget": spec.get("batch_budget"),
        }

    def _load(self, path: str, header: Dict[str, object]) -> None:
        existing, rows = read_checkpoint(path)
        mismatched = [
            key
            for key in ("parameter", "values", "algorithms", "trials", "seed", "engine")
            if existing.get(key) != header[key]
        ]
        if mismatched:
            raise ValueError(
                f"checkpoint {path} belongs to a different sweep "
                f"(mismatched {', '.join(mismatched)}); delete it or pass "
                "another path"
            )
        self.rows.update(rows)

    def finished(self, key: CellKey) -> Optional[Dict[str, object]]:
        """The journaled ``ok`` row for ``key``, if any (failures are retried)."""
        row = self.rows.get(key)
        return row if row is not None and row["status"] == "ok" else None

    def record(self, row: Dict[str, object]) -> None:
        serialisable = dict(row)
        for field in ("node_times", "edge_times"):
            if field in serialisable:
                serialisable[field] = list(serialisable[field])  # type: ignore[arg-type]
        self._fh.write(json.dumps(serialisable, sort_keys=True) + "\n")
        self._fh.flush()
        self.rows[(row["index"], row["name"], row["trial"])] = row  # type: ignore[index]
        if _test_hook is not None:
            _test_hook(row)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()  # releases the flock with the descriptor
        if self._lock_sidecar is not None:
            try:
                os.unlink(self._lock_sidecar)
            except FileNotFoundError:  # pragma: no cover - already stolen
                pass
            self._lock_sidecar = None


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):  # pragma: no cover - exists, not ours
        return True
    return True


# ---------------------------------------------------------------------- #
# Serial resilient execution
# ---------------------------------------------------------------------- #


def _cell_keys(spec: Dict[str, object]) -> List[CellKey]:
    return [
        (index, name, trial)
        for index in range(len(spec["values"]))  # type: ignore[arg-type]
        for name in spec["algorithms"]  # type: ignore[union-attr]
        for trial in range(int(spec["trials"]))
    ]


def _sweep_serial_resilient(
    spec: Dict[str, object], journal: Optional[_Checkpoint]
) -> SweepResult:
    rows: Dict[CellKey, Dict[str, object]] = dict(journal.rows) if journal else {}
    cache: Dict[int, Network] = {}

    def record(row: Dict[str, object]) -> None:
        rows[(row["index"], row["name"], row["trial"])] = row  # type: ignore[index]
        if journal is not None:
            journal.record(row)

    def run_one(index: int, name: str, trial: int) -> None:
        try:
            row = _run_cell(spec, index, name, trial, cache)
        except KeyboardInterrupt:
            raise  # the journal already holds every finished cell
        except Exception as error:
            row = _failure_row(
                spec, index, name, trial, classify_failure(error), str(error)
            )
            if spec["on_error"] == "raise":
                if journal is not None:
                    journal.record(row)
                raise
        record(row)

    remaining = [
        key
        for key in _cell_keys(spec)
        if journal is None or not journal.finished(key)
    ]
    if _grouped_execution(spec):
        for (index, name), trials_group in _group_cells(remaining):
            group_rows: Optional[List[Dict[str, object]]] = None
            if len(trials_group) > 1:
                try:
                    group_rows = _run_cell_group(spec, index, name, trials_group, cache)
                except KeyboardInterrupt:
                    raise
                except Exception:
                    # A batched run cannot attribute its failure to one trial;
                    # re-run the group per cell so the failure row (or the
                    # raised error) carries the exact trial and seed.
                    group_rows = None
            if group_rows is not None:
                for row in group_rows:
                    record(row)
            else:
                for trial in trials_group:
                    run_one(index, name, trial)
    else:
        for index, name, trial in remaining:
            run_one(index, name, trial)
    return _collect(spec, rows)


# ---------------------------------------------------------------------- #
# Parallel execution
# ---------------------------------------------------------------------- #
#
# The graph/algorithm/problem factories handed to sweep() are commonly
# closures or lambdas, which cannot be pickled.  The pool therefore uses the
# `fork` start method and the workers read the sweep specification from a
# module global inherited from the parent process at fork time; the task
# tuples sent through the pool are plain picklable (index, name, trials)
# groups, and the results are lists of plain row dicts.
#
# Network topology travels through ``multiprocessing.shared_memory`` rather
# than per-task rebuilds: the parent constructs each value's network once,
# copies its immutable CSR arrays (indptr / indices / edge endpoints /
# identifiers) into one shared segment per value, and publishes a manifest of
# segment names and offsets.  Workers attach the segment and reassemble a
# :class:`Network` around read-only zero-copy views
# (:meth:`Network._from_csr_arrays`) — ``graph_factory`` runs once per value
# in the parent instead of once per worker, and the array data is mapped, not
# copied, into every worker.  The parent owns the segment lifecycle: the
# segments are unlinked in a ``finally`` after the pool is torn down, so they
# are reclaimed even when a worker was SIGKILLed mid-task.  Indices missing
# from the manifest (the factory raised in the parent) fall back to the
# historical in-worker ``graph_factory`` rebuild so the failure surfaces as
# per-cell rows exactly like before.

_PARALLEL_SPEC: Optional[Dict[str, object]] = None
_WORKER_NETWORKS: Dict[int, Network] = {}
#: Manifest of shared CSR segments, set in the parent just before the pool
#: forks: ``{value index: {"name", "n", "m", "max_degree", "min_degree",
#: "arrays": [(field, offset, count), ...]}}``.
_SHARED_MANIFEST: Optional[Dict[int, Dict[str, object]]] = None
#: Worker-side attached segments, keyed by segment *name* (unique per
#: export — an index key would let a stale segment from an earlier sweep in
#: the same process shadow the current manifest).  Keeps the mmap alive for
#: as long as the reassembled networks hold views into it.
_WORKER_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}
#: Test seam: segment names created by the most recent parallel sweep, so
#: lifecycle tests can assert they were unlinked after the sweep returned.
_LAST_SEGMENT_NAMES: List[str] = []

#: Field order of the int64 arrays packed into each shared segment.
_SHARED_FIELDS = ("indptr", "indices", "edge_us", "edge_vs", "ids")


def _network_csr_arrays(network: Network) -> Dict[str, np.ndarray]:
    """The network's immutable topology as int64 arrays (zero-copy views)."""
    us, vs = network.edge_endpoints()
    return {
        "indptr": np.frombuffer(network.indptr, dtype=np.int64),
        "indices": np.frombuffer(network.indices, dtype=np.int64),
        "edge_us": np.asarray(us, dtype=np.int64),
        "edge_vs": np.asarray(vs, dtype=np.int64),
        "ids": np.asarray(network.identifiers, dtype=np.int64),
    }


def _export_shared_networks(
    spec: Dict[str, object], indices: Sequence[int]
) -> Tuple[
    Dict[int, Dict[str, object]],
    List[shared_memory.SharedMemory],
    Dict[int, Network],
]:
    """Build each value's network in the parent and export its CSR to shm.

    Returns the manifest for the workers, the created segments (the caller
    must unlink them when the pool is done), and the parent-side network
    cache (reused verbatim by the lost-worker serial retry).
    """
    manifest: Dict[int, Dict[str, object]] = {}
    segments: List[shared_memory.SharedMemory] = []
    networks: Dict[int, Network] = {}
    try:
        for index in indices:
            try:
                network = _cell_network(spec, index, networks)
            except Exception:
                # Leave the index out of the manifest: the workers rebuild via
                # graph_factory and report the failure per cell, as they always
                # did when the factory was broken.
                continue
            arrays = _network_csr_arrays(network)
            layout: List[Tuple[str, int, int]] = []
            offset = 0
            for field in _SHARED_FIELDS:
                layout.append((field, offset, int(arrays[field].size)))
                offset += arrays[field].nbytes
            segment = shared_memory.SharedMemory(create=True, size=max(offset, 8))
            segments.append(segment)
            for field, start, count in layout:
                if count:
                    view = np.frombuffer(
                        segment.buf, dtype=np.int64, count=count, offset=start
                    )
                    view[:] = arrays[field]
            manifest[index] = {
                "name": segment.name,
                "n": network.n,
                "m": network.m,
                "max_degree": network.max_degree(),
                "min_degree": network.min_degree(),
                "arrays": layout,
            }
    except BaseException:
        # Segments created so far would outlive the raising call with no
        # owner to reclaim them (the caller only sees segments it received),
        # so /dev/shm names would pile up run over run.  Reclaim and re-raise.
        for segment in segments:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            try:
                segment.close()
            except BufferError:
                # A CSR view in this frame still pins the mapping; the
                # unlink above already reclaimed the name, and the mapping
                # dies with the process.
                pass
        raise
    return manifest, segments, networks


def _attach_shared_network(index: int) -> Optional[Network]:
    """Reassemble the network for ``index`` from its shared CSR segment."""
    manifest = _SHARED_MANIFEST
    entry = manifest.get(index) if manifest is not None else None
    if entry is None:
        return None
    name = str(entry["name"])
    segment = _WORKER_SEGMENTS.get(name)
    if segment is None:
        try:
            # Worker-lifetime cache: the attached segment is reused for every
            # cell this fork worker runs; the parent owns the unlink.
            # repro-lint: allow[REP005] released by _sweep_parallel's finally
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:  # pragma: no cover - parent died mid-sweep
            return None
        _WORKER_SEGMENTS[name] = segment
    views: Dict[str, np.ndarray] = {}
    for field, offset, count in entry["arrays"]:  # type: ignore[union-attr]
        view = np.frombuffer(segment.buf, dtype=np.int64, count=count, offset=offset)
        view.setflags(write=False)
        views[field] = view
    return Network._from_csr_arrays(
        n=int(entry["n"]),  # type: ignore[arg-type]
        m=int(entry["m"]),  # type: ignore[arg-type]
        indptr=views["indptr"],
        indices=views["indices"],
        edge_us=views["edge_us"],
        edge_vs=views["edge_vs"],
        ids=views["ids"],
        max_degree=int(entry["max_degree"]),  # type: ignore[arg-type]
        min_degree=int(entry["min_degree"]),  # type: ignore[arg-type]
    )


GroupTask = Tuple[int, str, Tuple[int, ...]]


def _parallel_worker(task: GroupTask) -> List[Dict[str, object]]:
    index, name, trials_group = task
    spec = _PARALLEL_SPEC
    if spec is None:
        raise ReproError("worker forked without a sweep specification")
    if len(trials_group) > 1:
        try:
            return _run_cell_group(
                spec, index, name, list(trials_group), _WORKER_NETWORKS
            )
        except Exception:
            pass  # re-run per trial below for exact failure attribution
    rows: List[Dict[str, object]] = []
    for trial in trials_group:
        try:
            rows.append(_run_cell(spec, index, name, trial, _WORKER_NETWORKS))
        except Exception as error:
            if spec["on_error"] == "raise":
                raise
            rows.append(
                _failure_row(
                    spec, index, name, trial, classify_failure(error), str(error)
                )
            )
    return rows


def _stall_timeout(spec: Dict[str, object]) -> float:
    cell_timeout = spec["cell_timeout"]
    if cell_timeout is not None:
        return float(cell_timeout) + _STALL_GRACE  # type: ignore[arg-type]
    return _DEFAULT_STALL_TIMEOUT


def _sweep_parallel(
    spec: Dict[str, object], workers: int, journal: Optional[_Checkpoint]
) -> SweepResult:
    global _PARALLEL_SPEC, _SHARED_MANIFEST
    rows: Dict[CellKey, Dict[str, object]] = dict(journal.rows) if journal else {}
    remaining = [
        key
        for key in _cell_keys(spec)
        if journal is None or not journal.finished(key)
    ]
    if _grouped_execution(spec):
        tasks: List[GroupTask] = [
            (index, name, tuple(trials_group))
            for (index, name), trials_group in _group_cells(remaining)
        ]
    else:
        tasks = [(index, name, (trial,)) for index, name, trial in remaining]
    pending = set(remaining)

    def take(row: Dict[str, object]) -> None:
        key = (row["index"], row["name"], row["trial"])
        pending.discard(key)  # type: ignore[arg-type]
        rows[key] = row  # type: ignore[index]
        if journal is not None:
            journal.record(row)

    if tasks:
        context = multiprocessing.get_context("fork")
        previous_spec = _PARALLEL_SPEC
        previous_manifest = _SHARED_MANIFEST
        manifest, segments, parent_networks = _export_shared_networks(
            spec, sorted({index for index, _, _ in remaining})
        )
        _LAST_SEGMENT_NAMES[:] = [segment.name for segment in segments]
        _PARALLEL_SPEC = spec
        _SHARED_MANIFEST = manifest
        # A grouped task reports once per *group*, so the lost-worker stall
        # window scales with the largest group (a batch of k trials may
        # legitimately stay silent k times longer than a single cell).
        stall = _stall_timeout(spec) * max(len(task[2]) for task in tasks)
        stalled = False
        try:
            try:
                # Pool.__exit__ terminates the pool, which is exactly the clean
                # teardown both the KeyboardInterrupt and the lost-worker paths
                # need (never join a pool whose worker was SIGKILLed mid-task —
                # the task is lost and the join would hang forever).
                with context.Pool(processes=min(workers, len(tasks))) as pool:
                    results = pool.imap_unordered(_parallel_worker, tasks)
                    while pending:
                        try:
                            task_rows = results.next(timeout=stall)
                        except StopIteration:  # pragma: no cover - pending guards this
                            break
                        except multiprocessing.TimeoutError:
                            # No result for a full stall window: a worker died
                            # without reporting (OOM killer).  Fall back to the
                            # parent for every unfinished cell.
                            stalled = True
                            break
                        for row in task_rows:
                            take(row)
            except KeyboardInterrupt:
                if journal is not None:
                    journal.close()
                raise
            finally:
                _PARALLEL_SPEC = previous_spec
                _SHARED_MANIFEST = previous_manifest

            if stalled and pending:
                for key in sorted(pending):
                    index, name, trial = key
                    try:
                        row = _run_cell(spec, index, name, trial, parent_networks)
                    except Exception as retry_error:
                        message = (
                            f"pool worker was lost (no result within {stall:.0f}s) and "
                            f"the serial re-run failed: {retry_error}"
                        )
                        row = _failure_row(
                            spec, index, name, trial, WorkerCrashed.kind, message
                        )
                        if spec["on_error"] == "raise":
                            if journal is not None:
                                journal.record(row)
                            raise WorkerCrashed(message) from retry_error
                    take(row)
        finally:
            # Parent-owned lifecycle: reclaim the shared segments no matter
            # how the pool went down (clean drain, stall teardown, Ctrl-C, or
            # a SIGKILLed worker — the kernel frees the mapping with the
            # process; the name is removed here).
            for segment in segments:
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
                segment.close()

    return _collect(spec, rows)
