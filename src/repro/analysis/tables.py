"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows/series the paper's theorems talk
about; this module renders them as aligned plain-text tables so that
``pytest benchmarks/ --benchmark-only`` output (and EXPERIMENTS.md) stays
readable without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_sweep"]


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dictionaries as an aligned text table.

    Args:
        rows: the table rows.
        columns: column order (defaults to the keys of the first row).
        title: optional heading printed above the table.

    Returns:
        The formatted table as a single string.
    """
    if not rows:
        return (title + "\n") if title else ""
    columns = list(columns) if columns is not None else list(rows[0].keys())
    rendered_rows = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), max(len(cells[i]) for cells in rendered_rows))
        for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for cells in rendered_rows:
        lines.append("  ".join(cells[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_sweep(points: Iterable, title: Optional[str] = None) -> str:
    """Render a list of :class:`repro.analysis.sweep.SweepPoint` objects."""
    rows = [point.as_row() for point in points]
    columns = [
        "parameter",
        "value",
        "algorithm",
        "n",
        "m",
        "node_averaged",
        "edge_averaged",
        "node_expected",
        "worst_case",
    ]
    return format_table(rows, columns=columns, title=title)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
