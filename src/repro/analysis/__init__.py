"""Experiment sweeps and table rendering for the benchmark harness."""

from repro.analysis.sweep import (
    CellFailure,
    SweepPoint,
    SweepResult,
    network_from,
    sweep,
)
from repro.analysis.tables import format_sweep, format_table

__all__ = [
    "sweep",
    "SweepPoint",
    "SweepResult",
    "CellFailure",
    "network_from",
    "format_table",
    "format_sweep",
]
