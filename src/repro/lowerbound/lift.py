"""Random lifts of graphs (Lemma 12, construction of [ALM02]).

A lift of order ``q`` replaces every vertex ``v`` by a *fiber* of ``q`` copies
and every edge ``{u, v}`` by a uniformly random perfect matching between the
two fibers.  Lemma 12 shows two properties of random lifts that the lower
bound needs:

* every lifted vertex lies on a short cycle only with small probability
  (``≤ Δ^ℓ / q`` for cycles of length ≤ ℓ), so almost all vertices have
  tree-like ``k``-hop views, and
* lifted cliques keep a small independence number with high probability,
  so the clusters neighbouring ``S(c0)`` cannot contribute a large
  independent set.

:func:`random_lift` lifts an arbitrary graph; :func:`lift_cluster_graph`
lifts a :class:`~repro.lowerbound.base_graph.ClusterTreeGraph` while
preserving its cluster bookkeeping (a lift of a member of ``G_k`` is again a
member of ``G_k``).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import networkx as nx

from repro.lowerbound.base_graph import ClusterTreeGraph

__all__ = ["random_lift", "lift_cluster_graph"]


def random_lift(
    graph: nx.Graph, order: int, seed: int = 0
) -> Tuple[nx.Graph, Dict[int, int]]:
    """Random lift of ``graph`` of the given ``order``.

    Args:
        graph: base graph on hashable vertices.
        order: number of copies per fiber (``q ≥ 1``).
        seed: randomness for the per-edge matchings.

    Returns:
        ``(lifted, projection)`` where ``lifted`` is a graph on vertices
        ``0..q·n-1`` and ``projection`` maps every lifted vertex to the base
        vertex whose fiber it belongs to (the covering map).
    """
    if order < 1:
        raise ValueError("the order of a lift must be at least 1")
    rng = random.Random(seed)
    base_vertices = list(graph.nodes())
    index_of = {v: i for i, v in enumerate(base_vertices)}

    lifted = nx.Graph()
    projection: Dict[int, int] = {}
    for v in base_vertices:
        for copy in range(order):
            lifted_vertex = index_of[v] * order + copy
            lifted.add_node(lifted_vertex)
            projection[lifted_vertex] = v

    for u, v in graph.edges():
        permutation = list(range(order))
        rng.shuffle(permutation)
        for copy, partner in enumerate(permutation):
            a = index_of[u] * order + copy
            b = index_of[v] * order + partner
            lifted.add_edge(a, b)
    return lifted, projection


def lift_cluster_graph(base: ClusterTreeGraph, order: int, seed: int = 0) -> ClusterTreeGraph:
    """Lift a cluster-tree graph, preserving its cluster structure.

    Every fiber stays inside the cluster of its base vertex, so the lifted
    graph satisfies exactly the same biregular degree requirements as the base
    graph (it is again a member of ``G_k``), while Lemma 12 makes most of its
    vertices locally tree-like.
    """
    lifted, projection = random_lift(base.graph, order, seed=seed)
    clusters: Dict[int, List[int]] = {c: [] for c in base.clusters}
    cluster_of: Dict[int, int] = {}
    for lifted_vertex, base_vertex in projection.items():
        cluster = base.cluster_of[base_vertex]
        clusters[cluster].append(lifted_vertex)
        cluster_of[lifted_vertex] = cluster
    for members in clusters.values():
        members.sort()
    return ClusterTreeGraph(
        skeleton=base.skeleton,
        beta=base.beta,
        graph=lifted,
        clusters=clusters,
        cluster_of=cluster_of,
    )
