"""Algorithm 1: the view isomorphism between ``S(c0)`` and ``S(c1)`` nodes.

Theorem 11 states that in any cluster tree graph ``G_k ∈ G_k``, two nodes
``v0 ∈ S(c0)`` and ``v1 ∈ S(c1)`` whose radius-``k`` views are trees have the
same view up to distance ``k``.  The proof is constructive: Algorithm 1 (from
Coupette–Lenzen, adapted to the paper's self-loop labels) walks the two views
in lockstep and pairs up nodes reached through edges with equal labels,
putting self-labelled edges first so that the single permissible length
mismatch between two lists can be repaired (the ``Map`` subroutine).

:func:`find_isomorphism` implements the algorithm and returns the mapping φ;
:func:`verify_view_isomorphism` independently checks that a returned mapping
is a label-preserving isomorphism of the two radius-``k`` views, which is how
the tests and the E8 benchmark confirm Theorem 11 on concrete graphs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lowerbound.base_graph import ClusterTreeGraph

__all__ = ["IsomorphismError", "find_isomorphism", "verify_view_isomorphism"]


class IsomorphismError(RuntimeError):
    """Raised when Algorithm 1 cannot pair the two views.

    With tree-like views this never happens (Theorem 11); it typically means
    one of the two centres sees a cycle within distance ``k``.
    """


def _labelled_neighbors(
    gk: ClusterTreeGraph, vertex: int, exclude: Optional[int]
) -> List[List[int]]:
    """Neighbours of ``vertex`` grouped by label exponent, self edges first."""
    k = gk.k
    groups: List[List[Tuple[int, int]]] = [[] for _ in range(k + 2)]
    for u in gk.graph.neighbors(vertex):
        if u == exclude:
            continue
        exponent, is_self = gk.edge_label(vertex, u)
        if exponent > k + 1:
            raise IsomorphismError(
                f"edge ({vertex}, {u}) carries exponent {exponent} > k+1"
            )
        groups[exponent].append((0 if is_self else 1, u))
    return [[u for _, u in sorted(group)] for group in groups]


def find_isomorphism(gk: ClusterTreeGraph, v0: int, v1: int) -> Dict[int, int]:
    """Run Algorithm 1 and return the mapping φ from the view of ``v0`` to ``v1``.

    Args:
        gk: a cluster tree graph.
        v0: a node of ``S(c0)``.
        v1: a node of ``S(c1)``.

    Returns:
        A dictionary mapping every node within distance ``k`` of ``v0`` (in
        the traversal of Algorithm 1) to its partner in the view of ``v1``.

    Raises:
        IsomorphismError: if the pairing fails (non-tree-like views).
    """
    if gk.cluster_of[v0] != gk.skeleton.c0:
        raise ValueError(f"v0={v0} is not in S(c0)")
    if gk.cluster_of[v1] != gk.skeleton.c1:
        raise ValueError(f"v1={v1} is not in S(c1)")

    phi: Dict[int, int] = {v0: v1}

    def map_lists(n_v: List[List[int]], n_w: List[List[int]]) -> None:
        for group_v, group_w in zip(n_v, n_w):
            for a, b in zip(group_v, group_w):
                if a in phi and phi[a] != b:
                    raise IsomorphismError(
                        f"node {a} would be mapped to both {phi[a]} and {b}"
                    )
                phi[a] = b
        mismatched = [i for i in range(len(n_v)) if len(n_v[i]) != len(n_w[i])]
        if not mismatched:
            return
        longer_v = [i for i in mismatched if len(n_v[i]) == len(n_w[i]) + 1]
        longer_w = [i for i in mismatched if len(n_v[i]) + 1 == len(n_w[i])]
        if len(mismatched) != 2 or len(longer_v) != 1 or len(longer_w) != 1:
            raise IsomorphismError(
                "list lengths differ in a pattern Algorithm 1 cannot repair: "
                + str([(len(a), len(b)) for a, b in zip(n_v, n_w)])
            )
        leftover_v = n_v[longer_v[0]][-1]
        leftover_w = n_w[longer_w[0]][-1]
        if leftover_v in phi and phi[leftover_v] != leftover_w:
            raise IsomorphismError(
                f"node {leftover_v} would be mapped to both {phi[leftover_v]} and {leftover_w}"
            )
        phi[leftover_v] = leftover_w

    def walk(v: int, w: int, prev: Optional[int], depth: int) -> None:
        if depth == 0:
            return
        n_v = _labelled_neighbors(gk, v, prev)
        n_w = _labelled_neighbors(gk, w, phi.get(prev) if prev is not None else None)
        map_lists(n_v, n_w)
        for group in n_v:
            for child in group:
                walk(child, phi[child], v, depth - 1)

    walk(v0, v1, None, gk.k)
    return phi


def verify_view_isomorphism(
    gk: ClusterTreeGraph, phi: Dict[int, int], v0: int, v1: int
) -> bool:
    """Check that φ is an isomorphism of the two radius-``k`` views.

    The check re-derives the radius-``k`` view of ``v0`` (BFS, excluding edges
    between two nodes at distance exactly ``k``) and verifies that φ is
    injective on it, maps ``v0`` to ``v1``, preserves distances from the
    centre, and maps view edges to view edges.  Edge labels are *not* required
    to match: Theorem 11 is about the plain LOCAL views (the β-labels are an
    artefact of the analysis, and Algorithm 1's repair step intentionally
    pairs one edge of exponent ``i_v`` with one of exponent ``i_w ≠ i_v``).
    """
    if phi.get(v0) != v1:
        return False
    k = gk.k
    # BFS the radius-k view of v0.
    dist = {v0: 0}
    frontier = [v0]
    for d in range(1, k + 1):
        nxt = []
        for v in frontier:
            for u in gk.graph.neighbors(v):
                if u not in dist:
                    dist[u] = d
                    nxt.append(u)
        frontier = nxt

    view_nodes = set(dist)
    mapped = {phi.get(v) for v in view_nodes}
    if None in mapped or len(mapped) != len(view_nodes):
        return False

    dist_w = {v1: 0}
    frontier = [v1]
    for d in range(1, k + 1):
        nxt = []
        for v in frontier:
            for u in gk.graph.neighbors(v):
                if u not in dist_w:
                    dist_w[u] = d
                    nxt.append(u)
        frontier = nxt

    for v in view_nodes:
        if dist_w.get(phi[v]) != dist[v]:
            return False

    for v in view_nodes:
        for u in gk.graph.neighbors(v):
            if u not in view_nodes:
                continue
            if dist[v] == k and dist[u] == k:
                continue  # edges between two boundary nodes are not part of the view
            if not gk.graph.has_edge(phi[v], phi[u]):
                return False
    return True
