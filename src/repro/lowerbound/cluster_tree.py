"""Cluster tree skeletons ``CT_k`` (Section 4.3, Figure 1).

A cluster tree skeleton is a tree (plus self-loops) that compactly describes
the family ``G_k`` of lower-bound graphs: every skeleton node corresponds to a
cluster of graph nodes, and every directed skeleton edge ``(u, v, x)``
prescribes that each graph node in cluster ``S(u)`` has exactly ``x``
neighbours in cluster ``S(v)``, where ``x`` is either ``β^i`` or ``2·β^i``.

The skeleton is defined inductively:

* ``CT_0`` has an internal node ``c0`` and a leaf ``c1`` with edges
  ``(c0, c1, 2β^0)``, ``(c1, c0, β^1)`` and the self-loop ``(c1, c1, β^1)``.
* ``CT_k`` is obtained from ``CT_{k-1}`` by attaching a new leaf with exponent
  ``k`` to every internal node, and attaching to every (former) leaf ``u``
  with ``ψ(u) = i`` one new leaf for every exponent ``j ∈ {0..k} \\ {i}``;
  ``u`` becomes internal.

The class below materialises the skeleton symbolically (labels are stored as
``(exponent, doubled)`` pairs rather than evaluated powers of β) and verifies
the structural facts the lower bound relies on (Observation 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["SkeletonNode", "ClusterTreeSkeleton"]


@dataclass
class SkeletonNode:
    """One node of a cluster tree skeleton.

    Attributes:
        index: node identifier within the skeleton (0 is always ``c0``).
        parent: parent node index (``None`` for ``c0``).
        attach_exponent: exponent ``j`` such that the parent reaches this node
            with label ``2·β^j`` (``None`` for ``c0``).
        internal: whether the node is internal in the *current* skeleton.
        children: child node indices.
    """

    index: int
    parent: Optional[int]
    attach_exponent: Optional[int]
    internal: bool = False
    children: List[int] = field(default_factory=list)

    @property
    def psi(self) -> Optional[int]:
        """Exponent of the node's self-loop (``ψ(v)``); ``None`` for ``c0``."""
        if self.attach_exponent is None:
            return None
        return self.attach_exponent + 1


class ClusterTreeSkeleton:
    """The cluster tree skeleton ``CT_k``."""

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = k
        self._nodes: List[SkeletonNode] = []
        self._build()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def _add_node(self, parent: Optional[int], attach_exponent: Optional[int]) -> int:
        index = len(self._nodes)
        self._nodes.append(SkeletonNode(index=index, parent=parent, attach_exponent=attach_exponent))
        if parent is not None:
            self._nodes[parent].children.append(index)
        return index

    def _build(self) -> None:
        # CT_0.
        c0 = self._add_node(parent=None, attach_exponent=None)
        self._nodes[c0].internal = True
        self._add_node(parent=c0, attach_exponent=0)

        # Inductive steps CT_{d-1} -> CT_d for d = 1..k.
        for d in range(1, self.k + 1):
            internal_nodes = [n.index for n in self._nodes if n.internal]
            leaf_nodes = [n.index for n in self._nodes if not n.internal]
            for v in internal_nodes:
                self._add_node(parent=v, attach_exponent=d)
            for u in leaf_nodes:
                skip = self._nodes[u].psi
                for j in range(0, d + 1):
                    if j == skip:
                        continue
                    self._add_node(parent=u, attach_exponent=j)
                self._nodes[u].internal = True

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def c0(self) -> int:
        """Index of the root node ``c0``."""
        return 0

    @property
    def c1(self) -> int:
        """Index of the special node ``c1`` (the first child of ``c0``)."""
        return 1

    @property
    def nodes(self) -> List[SkeletonNode]:
        """All skeleton nodes."""
        return list(self._nodes)

    def node(self, index: int) -> SkeletonNode:
        """The skeleton node with the given index."""
        return self._nodes[index]

    def __len__(self) -> int:
        return len(self._nodes)

    def internal_nodes(self) -> List[int]:
        """Indices of the internal nodes of ``CT_k``."""
        return [n.index for n in self._nodes if n.internal]

    def leaves(self) -> List[int]:
        """Indices of the leaves of ``CT_k``."""
        return [n.index for n in self._nodes if not n.internal]

    def psi(self, index: int) -> Optional[int]:
        """``ψ(v)``: the self-loop exponent of node ``v`` (``None`` for ``c0``)."""
        return self._nodes[index].psi

    def parent(self, index: int) -> Optional[int]:
        """Parent of a skeleton node."""
        return self._nodes[index].parent

    def children(self, index: int) -> List[int]:
        """Children of a skeleton node."""
        return list(self._nodes[index].children)

    def depth(self, index: int) -> int:
        """Hop distance from ``c0`` (ignoring self-loops)."""
        d = 0
        current = index
        while self._nodes[current].parent is not None:
            current = self._nodes[current].parent
            d += 1
        return d

    # ------------------------------------------------------------------ #
    # Directed labelled edges
    # ------------------------------------------------------------------ #

    def directed_edges(self) -> List[Tuple[int, int, int, bool]]:
        """All directed labelled edges ``(u, v, exponent, doubled)``.

        ``doubled`` distinguishes labels ``2·β^exponent`` from ``β^exponent``.
        Self-loops appear once as ``(v, v, ψ(v), False)``.
        """
        edges: List[Tuple[int, int, int, bool]] = []
        for node in self._nodes:
            if node.parent is None:
                continue
            j = node.attach_exponent
            assert j is not None
            edges.append((node.parent, node.index, j, True))
            edges.append((node.index, node.parent, j + 1, False))
            edges.append((node.index, node.index, j + 1, False))
        return edges

    def out_label_counts(self, index: int) -> Dict[int, int]:
        """Number of outgoing graph edges per exponent for a skeleton node.

        For an internal node this realises Observation 9: exactly ``2·β^i``
        outgoing edges with label ``β^i`` for every ``i ∈ {0..k}``; the
        returned dictionary maps ``i`` to the multiplier of ``β^i`` (2 for all
        of them).  For a leaf only ``ψ(v)`` appears, with multiplier 2.
        """
        counts: Dict[int, int] = {}
        node = self._nodes[index]
        for child in node.children:
            j = self._nodes[child].attach_exponent
            assert j is not None
            counts[j] = counts.get(j, 0) + 2
        if node.parent is not None:
            psi = node.psi
            assert psi is not None
            counts[psi] = counts.get(psi, 0) + 1  # edge towards the parent
            counts[psi] = counts.get(psi, 0) + 1  # self-loop
        return counts

    # ------------------------------------------------------------------ #
    # Structural validation (Observation 7)
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Raise ``AssertionError`` unless the skeleton satisfies Observation 7."""
        k = self.k
        for node in self._nodes:
            if node.index == self.c0:
                assert node.parent is None and node.attach_exponent is None
                child_exponents = sorted(
                    self._nodes[c].attach_exponent for c in node.children
                )
                assert child_exponents == list(range(k + 1)), (
                    f"c0 must have children for every exponent 0..{k}, got {child_exponents}"
                )
                continue
            assert node.parent is not None
            psi = node.psi
            assert psi is not None and 1 <= psi <= k + 1
            if node.internal:
                assert node.attach_exponent is not None and node.attach_exponent <= k - 1, (
                    "internal nodes are attached with exponent at most k-1"
                )
                child_exponents = sorted(
                    self._nodes[c].attach_exponent for c in node.children
                )
                expected = [j for j in range(k + 1) if j != psi]
                assert child_exponents == expected, (
                    f"internal node {node.index} has children {child_exponents}, expected {expected}"
                )
            else:
                assert not node.children, "leaves have no children"

    def summary(self) -> Dict[str, int]:
        """Headline counts (used by the Figure 1 structure benchmark)."""
        return {
            "k": self.k,
            "nodes": len(self._nodes),
            "internal": len(self.internal_nodes()),
            "leaves": len(self.leaves()),
            "directed_edges": len(self.directed_edges()),
            "max_depth": max(self.depth(n.index) for n in self._nodes),
        }
