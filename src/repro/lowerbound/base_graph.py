"""The base lower-bound graph ``G_k ∈ G_k`` (Section 4.6) and its cluster structure.

Given a cluster tree skeleton ``CT_k`` and an even parameter ``β``, the base
graph is built cluster by cluster:

* cluster sizes are ``|S(v)| = 2 β^{k+1} (β/2)^{k+1-d(v)}`` where ``d(v)`` is
  the depth of ``v`` in the skeleton,
* ``S(c0)`` is an independent set,
* every other cluster with ``i = ψ(v)`` consists of ``|S(v)| / β^i`` disjoint
  cliques of size ``β^i`` plus a perfect matching between paired cliques, so
  every node has exactly ``β^i`` neighbours inside its own cluster (realising
  the self-loop ``(v, v, β^i)``) and the cluster has no independent set larger
  than ``|S(v)| / β^i`` (Lemma 13),
* for every skeleton tree edge, the two clusters are connected by a disjoint
  union of complete bipartite graphs ``K_{β^{i+1}, 2β^i}`` so that the
  prescribed biregular degrees hold exactly.

The paper requires ``2(k+1)/β < 1/2`` for the lower bound; graphs at those
parameters are astronomically large for ``k ≥ 2``, so the constructor also
supports a ``strict=False`` demo mode that only checks the divisibility
conditions needed for the construction itself (see DESIGN.md, substitutions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.lowerbound.cluster_tree import ClusterTreeSkeleton

__all__ = ["ClusterTreeGraph", "build_base_graph"]

Edge = Tuple[int, int]


@dataclass
class ClusterTreeGraph:
    """A member of the graph family ``G_k`` with its cluster bookkeeping.

    Attributes:
        skeleton: the cluster tree skeleton the graph realises.
        beta: the (even) parameter β.
        graph: the actual graph on vertices ``0..n-1``.
        clusters: mapping skeleton-node index → list of graph vertices.
        cluster_of: mapping graph vertex → skeleton-node index.

    Edge labels (Definition 8) are direction dependent — the label of an edge
    as seen from ``u`` is determined by the skeleton edge from ``u``'s cluster
    to ``v``'s cluster — so they are derived from the cluster membership via
    :meth:`edge_label` rather than stored per edge.
    """

    skeleton: ClusterTreeSkeleton
    beta: int
    graph: nx.Graph
    clusters: Dict[int, List[int]]
    cluster_of: Dict[int, int]

    # -------------------------------------------------------------- #

    @property
    def k(self) -> int:
        """The lower-bound parameter ``k``."""
        return self.skeleton.k

    @property
    def n(self) -> int:
        """Number of graph nodes."""
        return self.graph.number_of_nodes()

    def special_cluster(self, which: int) -> List[int]:
        """Vertices of ``S(c0)`` (``which=0``) or ``S(c1)`` (``which=1``)."""
        if which == 0:
            return list(self.clusters[self.skeleton.c0])
        if which == 1:
            return list(self.clusters[self.skeleton.c1])
        raise ValueError("which must be 0 or 1")

    def edge_label(self, u: int, v: int) -> Tuple[int, bool]:
        """Label of the edge ``{u, v}`` *as seen from* ``u``: ``(exponent, is_self_edge)``.

        This is the labelling of Definition 8, consumed by the
        view-isomorphism Algorithm 1: the exponent is the one of the skeleton
        edge from ``u``'s cluster to ``v``'s cluster (the skeleton parent
        reaches its children with ``2β^j``, children reach their parent with
        ``β^{ψ}``, and intra-cluster edges carry ``β^{ψ}`` plus the ``self``
        marker).
        """
        cu, cv = self.cluster_of[u], self.cluster_of[v]
        if cu == cv:
            psi = self.skeleton.psi(cu)
            if psi is None:
                raise ValueError("S(c0) is an independent set and has no internal edges")
            return psi, True
        if self.skeleton.parent(cv) == cu:
            exponent = self.skeleton.node(cv).attach_exponent
            assert exponent is not None
            return exponent, False
        if self.skeleton.parent(cu) == cv:
            psi = self.skeleton.psi(cu)
            assert psi is not None
            return psi, False
        raise ValueError(f"vertices {u} and {v} lie in non-adjacent clusters {cu}, {cv}")

    def neighbor_cluster_nodes(self, skeleton_node: int) -> List[int]:
        """Vertices in the clusters of the skeleton neighbours of ``c0``."""
        vertices: List[int] = []
        for child in self.skeleton.children(skeleton_node):
            vertices.extend(self.clusters[child])
        return vertices

    def validate_degrees(self) -> None:
        """Check that every prescribed biregular degree holds exactly."""
        beta = self.beta
        for u, v, exponent, doubled in self.skeleton.directed_edges():
            required = (2 if doubled else 1) * beta**exponent
            target_cluster = set(self.clusters[v])
            for vertex in self.clusters[u]:
                neighbors = sum(
                    1 for w in self.graph.neighbors(vertex) if w in target_cluster
                )
                if neighbors != required:
                    raise AssertionError(
                        f"vertex {vertex} of cluster {u} has {neighbors} neighbours in "
                        f"cluster {v}, expected {required}"
                    )

    def max_degree_bound(self) -> int:
        """The degree bound ``2 β^{k+1}`` of Lemma 13."""
        return 2 * self.beta ** (self.k + 1)


def _cluster_size(beta: int, k: int, depth: int) -> int:
    half = beta // 2
    return 2 * beta ** (k + 1) * half ** (k + 1 - depth)


def build_base_graph(
    k: int,
    beta: int,
    strict: bool = False,
    seed: int = 0,
) -> ClusterTreeGraph:
    """Construct the base graph ``G_k`` for parameters ``k`` and ``β``.

    Args:
        k: the lower-bound parameter (number of indistinguishability rounds).
        beta: the even cluster parameter β ≥ 2.
        strict: when ``True``, additionally require the paper's condition
            ``2(k+1)/β < 1/2`` (Lemma 13); the default demo mode only checks
            the divisibility conditions needed to realise the construction.
        seed: randomness used for the intra-cluster clique pairing (the
            construction is otherwise deterministic).

    Returns:
        The constructed :class:`ClusterTreeGraph`.
    """
    if beta < 2 or beta % 2 != 0:
        raise ValueError("beta must be an even integer ≥ 2")
    if strict and not (2 * (k + 1) / beta < 0.5):
        raise ValueError(
            f"strict mode requires 2(k+1)/β < 1/2; got β={beta}, k={k} "
            f"(need β > {4 * (k + 1)})"
        )

    skeleton = ClusterTreeSkeleton(k)
    skeleton.validate()
    rng = random.Random(seed)

    graph = nx.Graph()
    clusters: Dict[int, List[int]] = {}
    cluster_of: Dict[int, int] = {}

    next_vertex = 0
    for node in skeleton.nodes:
        size = _cluster_size(beta, k, skeleton.depth(node.index))
        members = list(range(next_vertex, next_vertex + size))
        next_vertex += size
        clusters[node.index] = members
        for vertex in members:
            cluster_of[vertex] = node.index
            graph.add_node(vertex)

    def add_edge(a: int, b: int, exponent: int, is_self: bool) -> None:
        del exponent, is_self  # labels are re-derived from cluster membership
        graph.add_edge(a, b)

    # Intra-cluster structure: disjoint cliques of size β^ψ plus a perfect
    # matching between paired cliques (S(c0) stays an independent set).
    for node in skeleton.nodes:
        psi = skeleton.psi(node.index)
        if psi is None:
            continue
        members = clusters[node.index]
        clique_size = beta**psi
        if len(members) % clique_size != 0:
            raise ValueError(
                f"cluster {node.index} of size {len(members)} is not divisible by "
                f"β^ψ = {clique_size}; choose a larger β"
            )
        num_cliques = len(members) // clique_size
        if num_cliques % 2 != 0:
            raise ValueError(
                f"cluster {node.index} splits into an odd number of cliques "
                f"({num_cliques}); choose different parameters"
            )
        cliques = [
            members[i * clique_size : (i + 1) * clique_size] for i in range(num_cliques)
        ]
        for clique in cliques:
            for a_index in range(len(clique)):
                for b_index in range(a_index + 1, len(clique)):
                    add_edge(clique[a_index], clique[b_index], psi, True)
        half = num_cliques // 2
        for j in range(half):
            left, right = cliques[j], cliques[half + j]
            order = list(range(clique_size))
            rng.shuffle(order)
            for a_index, b_index in enumerate(order):
                add_edge(left[a_index], right[b_index], psi, True)

    # Inter-cluster biregular connections along the skeleton tree edges.
    for node in skeleton.nodes:
        if node.parent is None:
            continue
        j = node.attach_exponent
        assert j is not None
        parent_members = clusters[node.parent]
        child_members = clusters[node.index]
        parent_group = beta ** (j + 1)
        child_group = 2 * beta**j
        if len(parent_members) % parent_group or len(child_members) % child_group:
            raise ValueError(
                f"clusters {node.parent}/{node.index} are not divisible into groups of "
                f"{parent_group}/{child_group}; choose a larger β"
            )
        parent_groups = [
            parent_members[i : i + parent_group]
            for i in range(0, len(parent_members), parent_group)
        ]
        child_groups = [
            child_members[i : i + child_group]
            for i in range(0, len(child_members), child_group)
        ]
        if len(parent_groups) != len(child_groups):
            raise ValueError(
                f"group counts differ for skeleton edge ({node.parent}, {node.index}): "
                f"{len(parent_groups)} vs {len(child_groups)}"
            )
        for parent_part, child_part in zip(parent_groups, child_groups):
            for a in parent_part:
                for b in child_part:
                    add_edge(a, b, j, False)

    return ClusterTreeGraph(
        skeleton=skeleton,
        beta=beta,
        graph=graph,
        clusters=clusters,
        cluster_of=cluster_of,
    )
