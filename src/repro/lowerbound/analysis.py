"""Structural analysis of the lower-bound graphs (Lemma 13, Corollary 15).

These helpers quantify the properties the lower-bound argument relies on and
are used by the tests and by benchmarks E7–E9:

* cluster sizes, degree bound ``2 β^{k+1}`` and total node count (Lemma 13),
* independence numbers of the clusters neighbouring ``S(c0)`` — bounded by
  ``|S(v)| / β^{ψ(v)}`` in the base graph and by
  ``O(|S(v)| · log β^ψ / β^ψ)`` after lifting (Lemma 12 / Corollary 15),
* the fraction of nodes whose radius-``k`` view is tree-like (which the lift
  drives towards 1, Lemma 14),
* how many ``S(c0)`` nodes can be covered by independent sets of the
  neighbouring clusters — the counting step at the heart of Theorem 16.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import networkx as nx

from repro.algorithms.mis.sequential import greedy_independent_set_lower_bound
from repro.graphs.girth import nodes_with_tree_like_view
from repro.lowerbound.base_graph import ClusterTreeGraph

__all__ = [
    "ClusterReport",
    "cluster_reports",
    "tree_like_fraction_of_cluster",
    "max_covered_fraction_of_s0",
]


@dataclass(frozen=True)
class ClusterReport:
    """Structural summary of one cluster of a cluster tree graph."""

    skeleton_node: int
    depth: int
    psi: int | None
    size: int
    independence_upper_bound: int | None
    greedy_independent_set: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "cluster": self.skeleton_node,
            "depth": self.depth,
            "psi": self.psi,
            "size": self.size,
            "alpha_bound": self.independence_upper_bound,
            "greedy_alpha": self.greedy_independent_set,
        }


def cluster_reports(gk: ClusterTreeGraph, attempts: int = 4) -> List[ClusterReport]:
    """Per-cluster structural report (sizes and independence numbers)."""
    reports: List[ClusterReport] = []
    for node in gk.skeleton.nodes:
        members = gk.clusters[node.index]
        induced = gk.graph.subgraph(members)
        psi = gk.skeleton.psi(node.index)
        if psi is None:
            bound = None  # S(c0) is an independent set: alpha = |S(c0)|.
            greedy = len(members)
        else:
            bound = len(members) // (gk.beta**psi)
            greedy = greedy_independent_set_lower_bound(nx.Graph(induced), attempts=attempts)
        reports.append(
            ClusterReport(
                skeleton_node=node.index,
                depth=gk.skeleton.depth(node.index),
                psi=psi,
                size=len(members),
                independence_upper_bound=bound,
                greedy_independent_set=greedy,
            )
        )
    return reports


def tree_like_fraction_of_cluster(
    gk: ClusterTreeGraph, skeleton_node: int, radius: int
) -> float:
    """Fraction of the cluster's vertices whose ``radius``-hop view is a tree."""
    members = gk.clusters[skeleton_node]
    if not members:
        return 1.0
    tree_like = nodes_with_tree_like_view(gk.graph, radius)
    return sum(1 for v in members if v in tree_like) / len(members)


def max_covered_fraction_of_s0(gk: ClusterTreeGraph) -> float:
    """Upper bound on the fraction of ``S(c0)`` coverable by its neighbour clusters.

    Theorem 16's counting argument: each neighbouring cluster ``S_i`` of
    ``S(c0)`` (with ``i = ψ``) can contribute at most ``|S_i| / β^i``
    independent nodes (base graph; Lemma 13), and each of those covers at most
    ``β^i`` nodes of ``S(c0)``, so the neighbouring clusters can cover at most
    ``Σ_i |S_i|`` · (something small) nodes of ``S(c0)``.  The returned value
    is that bound divided by ``|S(c0)|``; when it is below 1, at least a
    ``1 - value`` fraction of ``S(c0)`` must join any maximal independent set.
    """
    skeleton = gk.skeleton
    s0_size = len(gk.clusters[skeleton.c0])
    covered = 0
    for child in skeleton.children(skeleton.c0):
        psi = skeleton.psi(child)
        assert psi is not None
        cluster_size = len(gk.clusters[child])
        independent_bound = cluster_size // (gk.beta**psi)
        covered += independent_bound * (gk.beta**psi)
        # Each independent node of S_i has exactly β^ψ neighbours in S(c0)
        # (the label of the edge from S_i towards its parent c0 is β^ψ).
    return covered / s0_size if s0_size else 0.0
