"""Tree unfoldings of cluster tree graphs (the tree instances of Theorem 16).

At laptop scale the random lift cannot push the girth of ``G_k`` beyond the
trivial bound for ``k ≥ 2`` (the paper needs ``q = β^{Θ(k²)}``), so to verify
the ``k``-hop indistinguishability of Theorem 11 — and to build the *tree*
instances used by the worst-case MIS-on-trees lower bound — we unfold the
radius-``k`` view of a node into a tree (the truncated universal cover).  The
unfolding of a node ``v`` is exactly the view a LOCAL algorithm running for
``k`` rounds at ``v`` could see if its neighbourhood were cycle-free, which is
the premise of Theorem 11.

:func:`tree_view_instance` unfolds the views of one ``S(c0)`` node and one
``S(c1)`` node into a single (forest) cluster tree graph so that
:func:`repro.lowerbound.isomorphism.find_isomorphism` can be run on the pair.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from repro.lowerbound.base_graph import ClusterTreeGraph

__all__ = ["unfold_view", "tree_view_instance"]


def unfold_view(
    gk: ClusterTreeGraph, center: int, radius: int
) -> Tuple[nx.Graph, Dict[int, int], int]:
    """Unfold the radius-``radius`` view of ``center`` into a tree.

    Returns:
        ``(tree, origin, root)`` where ``tree`` is a tree on fresh integer
        vertices, ``origin`` maps each tree vertex to the graph vertex it is a
        copy of, and ``root`` is the tree vertex corresponding to ``center``.
    """
    tree = nx.Graph()
    origin: Dict[int, int] = {}
    root = 0
    tree.add_node(root)
    origin[root] = center
    frontier: List[Tuple[int, int, int]] = [(root, center, -1)]  # (tree vertex, graph vertex, parent graph vertex)
    next_vertex = 1
    for _ in range(radius):
        new_frontier: List[Tuple[int, int, int]] = []
        for tree_vertex, graph_vertex, parent_graph_vertex in frontier:
            for neighbor in gk.graph.neighbors(graph_vertex):
                if neighbor == parent_graph_vertex:
                    continue
                child = next_vertex
                next_vertex += 1
                tree.add_edge(tree_vertex, child)
                origin[child] = neighbor
                new_frontier.append((child, neighbor, graph_vertex))
        frontier = new_frontier
    return tree, origin, root


def tree_view_instance(
    gk: ClusterTreeGraph, v0: int, v1: int, radius: int | None = None
) -> Tuple[ClusterTreeGraph, int, int]:
    """Combine the unfolded views of ``v0 ∈ S(c0)`` and ``v1 ∈ S(c1)``.

    Returns a :class:`ClusterTreeGraph` whose graph is the disjoint union of
    the two unfolded trees (cluster membership inherited from the originals),
    together with the two roots.  Running Algorithm 1 on this instance
    exercises Theorem 11 at parameters where high-girth lifts are infeasible,
    and the instance itself is the tree on which the worst-case MIS lower
    bound of Theorem 16 operates.
    """
    k = gk.k if radius is None else radius
    tree0, origin0, root0 = unfold_view(gk, v0, k)
    tree1, origin1, root1 = unfold_view(gk, v1, k)

    union = nx.Graph()
    offset = tree0.number_of_nodes()
    union.add_nodes_from(tree0.nodes())
    union.add_edges_from(tree0.edges())
    union.add_nodes_from(v + offset for v in tree1.nodes())
    union.add_edges_from((u + offset, v + offset) for u, v in tree1.edges())

    cluster_of: Dict[int, int] = {}
    clusters: Dict[int, List[int]] = {c: [] for c in range(len(gk.skeleton))}
    for vertex in tree0.nodes():
        cluster = gk.cluster_of[origin0[vertex]]
        cluster_of[vertex] = cluster
        clusters[cluster].append(vertex)
    for vertex in tree1.nodes():
        cluster = gk.cluster_of[origin1[vertex]]
        cluster_of[vertex + offset] = cluster
        clusters[cluster].append(vertex + offset)

    instance = ClusterTreeGraph(
        skeleton=gk.skeleton,
        beta=gk.beta,
        graph=union,
        clusters=clusters,
        cluster_of=cluster_of,
    )
    return instance, root0, root1 + offset
