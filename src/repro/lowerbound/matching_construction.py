"""The two-copy construction for the maximal-matching lower bound (Theorem 17).

Theorem 17 reuses the KMW matching construction: take two copies of the
cluster tree graph and add a perfect matching that joins every node to its
twin in the other copy (staying inside the same cluster).  The construction
has the properties that

* the two copies of ``S(c0)`` together contain a ``(1 - o(1))`` fraction of
  all nodes,
* any maximal matching must contain almost all of the perfect-matching edges
  between the two copies of ``S(c0)`` (those nodes have no other way to be
  covered once the small clusters are exhausted), and
* within ``k`` rounds only an ``o(1)`` fraction of those edges can be added,
  because the relevant edges all have the same ``k``-hop views.

:func:`build_matching_lower_bound_graph` assembles the graph and returns the
bookkeeping the E10 benchmark needs (copy maps, the cross matching, and the
two ``S(c0)`` copies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from repro.graphs.transforms import two_copies_with_perfect_matching
from repro.lowerbound.base_graph import ClusterTreeGraph, build_base_graph
from repro.lowerbound.lift import lift_cluster_graph

__all__ = ["MatchingLowerBoundInstance", "build_matching_lower_bound_graph"]

Edge = Tuple[int, int]


@dataclass
class MatchingLowerBoundInstance:
    """The Theorem 17 instance: two copies plus a cross perfect matching."""

    graph: nx.Graph
    base: ClusterTreeGraph
    copy_a: Dict[int, int]
    copy_b: Dict[int, int]
    cross_matching: List[Edge]
    s0_copy_a: List[int]
    s0_copy_b: List[int]

    @property
    def n(self) -> int:
        """Total number of nodes of the two-copy graph."""
        return self.graph.number_of_nodes()

    def s0_fraction(self) -> float:
        """Fraction of all nodes that lie in the two copies of ``S(c0)``."""
        return (len(self.s0_copy_a) + len(self.s0_copy_b)) / self.n

    def cross_matching_between_s0(self) -> List[Edge]:
        """The perfect-matching edges joining the two copies of ``S(c0)``."""
        s0_a = set(self.s0_copy_a)
        return [e for e in self.cross_matching if e[0] in s0_a or e[1] in s0_a]


def build_matching_lower_bound_graph(
    k: int,
    beta: int,
    lift_order: int = 1,
    seed: int = 0,
) -> MatchingLowerBoundInstance:
    """Build the two-copy matching lower-bound graph of Theorem 17.

    Args:
        k: lower-bound parameter.
        beta: cluster parameter (even).
        lift_order: optional random-lift order applied to the base graph
            before duplicating (1 = no lift).
        seed: randomness for the construction.

    Returns:
        The assembled :class:`MatchingLowerBoundInstance`.
    """
    base = build_base_graph(k, beta, seed=seed)
    if lift_order > 1:
        base = lift_cluster_graph(base, lift_order, seed=seed + 1)

    union, map_a, map_b, matching = two_copies_with_perfect_matching(base.graph)
    s0 = base.special_cluster(0)
    return MatchingLowerBoundInstance(
        graph=union,
        base=base,
        copy_a=map_a,
        copy_b=map_b,
        cross_matching=matching,
        s0_copy_a=sorted(map_a[v] for v in s0),
        s0_copy_b=sorted(map_b[v] for v in s0),
    )
