"""The KMW-style lower-bound constructions of Section 4."""

from repro.lowerbound.analysis import (
    ClusterReport,
    cluster_reports,
    max_covered_fraction_of_s0,
    tree_like_fraction_of_cluster,
)
from repro.lowerbound.base_graph import ClusterTreeGraph, build_base_graph
from repro.lowerbound.cluster_tree import ClusterTreeSkeleton, SkeletonNode
from repro.lowerbound.isomorphism import (
    IsomorphismError,
    find_isomorphism,
    verify_view_isomorphism,
)
from repro.lowerbound.lift import lift_cluster_graph, random_lift
from repro.lowerbound.matching_construction import (
    MatchingLowerBoundInstance,
    build_matching_lower_bound_graph,
)
from repro.lowerbound.unfold import tree_view_instance, unfold_view

__all__ = [
    "ClusterTreeSkeleton",
    "SkeletonNode",
    "ClusterTreeGraph",
    "build_base_graph",
    "random_lift",
    "lift_cluster_graph",
    "find_isomorphism",
    "verify_view_isomorphism",
    "IsomorphismError",
    "tree_view_instance",
    "unfold_view",
    "ClusterReport",
    "cluster_reports",
    "tree_like_fraction_of_cluster",
    "max_covered_fraction_of_s0",
    "MatchingLowerBoundInstance",
    "build_matching_lower_bound_graph",
]
