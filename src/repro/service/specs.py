"""The service's job language: serialisable sweep specifications.

:func:`repro.analysis.sweep.sweep` takes callables — graph factories and
algorithm/problem factory pairs — which cannot travel through a database or
an HTTP body.  A :class:`SweepSpec` is the closed, serialisable form: graph
families and algorithms are referenced **by registry name** plus plain-JSON
parameters, and :meth:`SweepSpec.sweep_kwargs` reconstitutes exactly the
callables the in-process sweep would use.  The round-trip is lossless
(``SweepSpec.from_dict(spec.to_dict()) == spec``) and the canonical JSON
form is content-hashed (:meth:`SweepSpec.digest`) for dedup and provenance.

Registries
----------

``GRAPH_FAMILIES`` maps a family name to a builder
``(value, **params) -> graph source`` (an :class:`EdgeArrays` or an
``(n, edges)`` pair — anything :func:`repro.analysis.sweep.network_from`
accepts).  ``ALGORITHMS`` maps an algorithm name to the sweep convention's
``(algorithm_factory, problem_factory)`` pair of one-argument factories.
Both registries are extensible (:func:`register_family`,
:func:`register_algorithm`) so embedding applications can expose their own
workloads through the same service verbs.

The graph cache key (:meth:`SweepSpec.graph_key`) is content-addressed on
``(family, params, value, network seed, id scheme)`` — the complete recipe
for the CSR build — so two jobs that would build byte-identical networks
share one cache row no matter how the rest of their specs differ.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.algorithms.matching.randomized import RandomizedMaximalMatching
from repro.algorithms.mis.luby import LubyMIS
from repro.algorithms.coloring import RandomizedColoring
from repro.algorithms.ruling_set import RandomizedTwoTwoRulingSet
from repro.core import problems, schemas
from repro.graphs import generators as gen

__all__ = [
    "SPEC_FORMAT",
    "SweepSpec",
    "GRAPH_FAMILIES",
    "ALGORITHMS",
    "register_family",
    "register_algorithm",
]

#: Identifier of the serialised spec format (the ``format`` key of
#: :meth:`SweepSpec.to_dict`); spelled out once in :mod:`repro.core.schemas`.
SPEC_FORMAT = schemas.SWEEP_SPEC

#: The benchmark ID-scheme convention, fixed service-wide so the cache key
#: and the in-process ``network_from`` default can never drift.
ID_SCHEME = "permuted"


# ---------------------------------------------------------------------- #
# Registries
# ---------------------------------------------------------------------- #

#: ``family name -> (value, **params) -> graph source``.  Builders return
#: :class:`~repro.graphs.edgelist.EdgeArrays` where a native array path
#: exists (zero per-edge Python objects) and ``(n, edges)`` pairs otherwise.
GRAPH_FAMILIES: Dict[str, Callable[..., object]] = {}

#: ``algorithm name -> (algorithm_factory, problem_factory)`` in the sweep
#: convention (both factories receive the constructed ``Network``).
ALGORITHMS: Dict[str, Tuple[Callable, Callable]] = {}


def register_family(name: str, builder: Callable[..., object]) -> None:
    """Register a graph family builder under ``name`` (overwrites allowed)."""
    GRAPH_FAMILIES[name] = builder


def register_algorithm(
    name: str, algorithm_factory: Callable, problem_factory: Callable
) -> None:
    """Register an algorithm/problem pair under ``name`` (overwrites allowed)."""
    ALGORITHMS[name] = (algorithm_factory, problem_factory)


register_family("cycle", lambda value: gen.cycle_edges(int(value), as_arrays=True))
register_family("path", lambda value: gen.path_edges(int(value), as_arrays=True))
register_family(
    "complete", lambda value: gen.complete_edges(int(value), as_arrays=True)
)
register_family("star", lambda value: gen.star_edges(int(value), as_arrays=True))
register_family(
    "grid",
    lambda value, cols=None: gen.grid_edges(
        int(value), int(value if cols is None else cols), as_arrays=True
    ),
)
register_family(
    "fast_gnp",
    # The sparse G(n, d/(n-1)) convention of the benchmarks: `value` is n,
    # `expected_degree` fixes the density, `graph_seed` the edge randomness.
    lambda value, expected_degree=8.0, graph_seed=0: gen.fast_gnp_edges(
        int(value),
        float(expected_degree) / max(int(value) - 1, 1),
        seed=int(graph_seed),
        as_arrays=True,
    ),
)
register_family(
    "random_regular",
    lambda value, degree=4, graph_seed=0: gen.random_regular_edges(
        int(degree), int(value), seed=int(graph_seed), as_arrays=True
    ),
)

register_algorithm(
    "luby_mis", lambda net: LubyMIS(), lambda net: problems.MIS
)
register_algorithm(
    "randomized_matching",
    lambda net: RandomizedMaximalMatching(),
    lambda net: problems.MAXIMAL_MATCHING,
)
register_algorithm(
    "randomized_coloring",
    lambda net: RandomizedColoring(),
    lambda net: problems.coloring(net.max_degree() + 1),
)
register_algorithm(
    "ruling_set_2_2",
    lambda net: RandomizedTwoTwoRulingSet(),
    lambda net: problems.ruling_set(2, 2),
)


# ---------------------------------------------------------------------- #
# The spec
# ---------------------------------------------------------------------- #


def _canonical(value: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class SweepSpec:
    """A serialisable description of one sweep job (format ``sweep-spec/v1``).

    Field-for-field the :func:`repro.analysis.sweep.sweep` signature with
    the callables replaced by registry names + JSON parameters; defaults
    match the sweep's own.  ``on_error`` is not a field — the service always
    runs ``on_error="record"`` so broken cells become stored failure rows
    instead of killing the job.
    """

    parameter: str
    values: Tuple[object, ...]
    family: str
    algorithms: Tuple[str, ...]
    family_params: Mapping[str, object] = field(default_factory=dict)
    trials: int = 3
    seed: int = 0
    max_rounds: int = 20_000
    validate: bool = True
    engine: str = "auto"
    cell_timeout: Optional[float] = None
    batch_budget_bytes: Optional[int] = None
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        object.__setattr__(self, "algorithms", tuple(self.algorithms))
        object.__setattr__(self, "family_params", dict(self.family_params))
        if not self.values:
            raise ValueError("a sweep spec needs at least one value")
        if len(set(map(repr, self.values))) != len(self.values):
            # The cache-aware worker factory maps a value back to its index
            # (for the per-index network seed); duplicates would make that
            # mapping ambiguous, and they are meaningless in a sweep anyway.
            raise ValueError("sweep values must be distinct")
        if not self.algorithms:
            raise ValueError("a sweep spec needs at least one algorithm")
        if self.family not in GRAPH_FAMILIES:
            raise ValueError(
                f"unknown graph family {self.family!r}; registered: "
                f"{sorted(GRAPH_FAMILIES)}"
            )
        unknown = [a for a in self.algorithms if a not in ALGORITHMS]
        if unknown:
            raise ValueError(
                f"unknown algorithm(s) {unknown}; registered: {sorted(ALGORITHMS)}"
            )
        if self.trials < 1:
            raise ValueError("trials must be at least 1")

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON dictionary form (round-trips through :meth:`from_dict`)."""
        return {
            "format": SPEC_FORMAT,
            "parameter": self.parameter,
            "values": list(self.values),
            "family": self.family,
            "family_params": dict(self.family_params),
            "algorithms": list(self.algorithms),
            "trials": self.trials,
            "seed": self.seed,
            "max_rounds": self.max_rounds,
            "validate": self.validate,
            "engine": self.engine,
            "cell_timeout": self.cell_timeout,
            "batch_budget_bytes": self.batch_budget_bytes,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepSpec":
        """Reconstruct a spec from :meth:`to_dict` output (strict on keys)."""
        payload = dict(data)
        fmt = payload.pop("format", SPEC_FORMAT)
        if fmt != SPEC_FORMAT:
            raise ValueError(f"expected a {SPEC_FORMAT} spec, got format {fmt!r}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown spec key(s): {unknown}")
        return cls(**payload)  # type: ignore[arg-type]

    def canonical_json(self) -> str:
        """The canonical serialised form (stable across processes)."""
        return _canonical(self.to_dict())

    def digest(self) -> str:
        """Content hash of the canonical form (spec identity / dedup)."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    def with_name(self, name: str) -> "SweepSpec":
        return replace(self, name=name)

    # ------------------------------------------------------------------ #
    # Reconstitution
    # ------------------------------------------------------------------ #

    def graph_source(self, value: object) -> object:
        """Build the graph source for one swept value (registry dispatch)."""
        return GRAPH_FAMILIES[self.family](value, **self.family_params)

    def network_seed(self, index: int) -> int:
        """The ID-assignment seed ``sweep`` uses for value index ``index``."""
        return self.seed + index

    def graph_key(self, index: int) -> str:
        """Content-addressed cache key for value index ``index``'s network.

        Hashes the complete build recipe — family, params, the value, the
        network (identifier) seed and the ID scheme — so equal keys mean
        byte-identical CSR builds, across jobs and submitters.
        """
        recipe = {
            "family": self.family,
            "params": dict(self.family_params),
            "value": self.values[index],
            "network_seed": self.network_seed(index),
            "id_scheme": ID_SCHEME,
        }
        return hashlib.sha256(_canonical(recipe).encode()).hexdigest()

    def algorithm_factories(self) -> Dict[str, Tuple[Callable, Callable]]:
        """The sweep-convention ``{name: (algorithm, problem) factories}``."""
        return {name: ALGORITHMS[name] for name in self.algorithms}

    def sweep_kwargs(
        self, graph_factory: Optional[Callable[[object], object]] = None
    ) -> Dict[str, object]:
        """Keyword arguments for :func:`repro.analysis.sweep.sweep`.

        ``graph_factory`` defaults to plain registry dispatch
        (:meth:`graph_source`); the service worker passes a cache-aware
        factory instead, which returns ready :class:`Network` objects from
        the store's graph cache — identical networks either way.
        """
        return {
            "parameter": self.parameter,
            "values": list(self.values),
            "graph_factory": graph_factory or self.graph_source,
            "algorithms": self.algorithm_factories(),
            "trials": self.trials,
            "seed": self.seed,
            "max_rounds": self.max_rounds,
            "validate": self.validate,
            "engine": self.engine,
            "cell_timeout": self.cell_timeout,
            "batch_budget_bytes": self.batch_budget_bytes,
        }
