"""The persistent result store (sqlite, schema ``result-store/v1``).

One sqlite database holds everything the service knows:

* ``experiments`` — one row per submitted job: the canonical spec JSON and
  its digest, the queue state machine (status / attempts / backoff), the
  error trail, and — once the job finishes — the full provenance record
  (seed schedule, per-value graph provenance from ``EdgeArrays.meta`` or
  the cache key, engine and batch-chunk choice, and the sweep checkpoint
  header).
* ``cells`` — one row per ``(value index, algorithm, trial)`` cell, exactly
  the journal's row payload: completion-time buffers as raw int64 BLOBs for
  ``ok`` rows (verdicts are implied — a validated sweep only journals cells
  whose solutions passed), failure slug/seed/message for ``failure`` rows,
  and the recovery timeline JSON when the run was self-stabilising.
* ``points`` — the aggregated per-``(value, algorithm)`` measurements, at
  full float precision (the exact ``ComplexityMeasurement`` fields, not the
  rounded table form), re-aggregated through the same
  :func:`repro.analysis.sweep.collect_rows` arithmetic as an in-process
  sweep — stored results are bit-identical to in-process ones.
* ``graph_cache`` — the content-addressed CSR cache: keyed on the complete
  build recipe (:meth:`repro.service.specs.SweepSpec.graph_key`), a row
  holds the network's packed int64 CSR arrays.  A claim protocol
  (``INSERT OR IGNORE`` of a ``building`` row) guarantees that N concurrent
  jobs needing the same network perform **exactly one** build; the
  ``builds`` counter records it, and a claim whose holder died is stolen
  after a staleness window.

Writers from many processes are expected (CLI submitters, scheduler,
workers): the store opens every connection in WAL mode with a busy
timeout, and every multi-statement mutation runs inside
``BEGIN IMMEDIATE`` so readers never observe half-written jobs.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.analysis.sweep import CellKey, collect_rows
from repro.core import schemas
from repro.local.network import Network

__all__ = ["RESULT_STORE_SCHEMA", "ResultStore"]

#: Identifier of the on-disk schema (recorded in the ``meta`` table);
#: spelled out once in :mod:`repro.core.schemas`.
RESULT_STORE_SCHEMA = schemas.RESULT_STORE

#: Field order of the int64 arrays packed into a graph-cache payload —
#: deliberately the same layout as the parallel sweep's shared-memory
#: manifest, because both feed :meth:`Network._from_csr_arrays`.
_CSR_FIELDS = ("indptr", "indices", "edge_us", "edge_vs", "ids")

#: Seconds after which a ``building`` graph-cache claim whose writer has
#: stopped refreshing is considered dead and may be stolen.
_CLAIM_STALE_S = 300.0

_DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS experiments (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    name          TEXT NOT NULL DEFAULT '',
    spec          TEXT NOT NULL,
    spec_digest   TEXT NOT NULL,
    status        TEXT NOT NULL DEFAULT 'queued',
    attempts      INTEGER NOT NULL DEFAULT 0,
    max_attempts  INTEGER NOT NULL DEFAULT 3,
    not_before    REAL NOT NULL DEFAULT 0,
    worker_pid    INTEGER,
    error_kind    TEXT,
    error_message TEXT,
    submitted_at  REAL NOT NULL,
    started_at    REAL,
    finished_at   REAL,
    provenance    TEXT
);
CREATE INDEX IF NOT EXISTS experiments_status ON experiments(status, not_before);
CREATE TABLE IF NOT EXISTS cells (
    experiment_id  INTEGER NOT NULL REFERENCES experiments(id),
    value_index    INTEGER NOT NULL,
    algorithm      TEXT NOT NULL,
    trial          INTEGER NOT NULL,
    status         TEXT NOT NULL,
    n              INTEGER,
    m              INTEGER,
    problem        TEXT,
    algorithm_name TEXT,
    node_times     BLOB,
    edge_times     BLOB,
    recovery       TEXT,
    seed           INTEGER,
    kind           TEXT,
    message        TEXT,
    PRIMARY KEY (experiment_id, value_index, algorithm, trial)
);
CREATE TABLE IF NOT EXISTS points (
    experiment_id INTEGER NOT NULL REFERENCES experiments(id),
    idx           INTEGER NOT NULL,
    parameter     TEXT NOT NULL,
    value         TEXT NOT NULL,
    algorithm     TEXT NOT NULL,
    measurement   TEXT NOT NULL,
    PRIMARY KEY (experiment_id, idx)
);
CREATE TABLE IF NOT EXISTS graph_cache (
    key        TEXT PRIMARY KEY,
    recipe     TEXT NOT NULL,
    status     TEXT NOT NULL DEFAULT 'building',
    n          INTEGER,
    m          INTEGER,
    max_degree INTEGER,
    min_degree INTEGER,
    layout     TEXT,
    payload    BLOB,
    builds     INTEGER NOT NULL DEFAULT 0,
    hits       INTEGER NOT NULL DEFAULT 0,
    claimed_by INTEGER,
    claimed_at REAL,
    built_at   REAL
);
"""


def _network_csr_arrays(network: Network) -> Dict[str, np.ndarray]:
    """The network's immutable topology as int64 arrays (mirrors the
    parallel sweep's shared-memory export)."""
    us, vs = network.edge_endpoints()
    return {
        "indptr": np.frombuffer(network.indptr, dtype=np.int64),
        "indices": np.frombuffer(network.indices, dtype=np.int64),
        "edge_us": np.asarray(us, dtype=np.int64),
        "edge_vs": np.asarray(vs, dtype=np.int64),
        "ids": np.asarray(network.identifiers, dtype=np.int64),
    }


class ResultStore:
    """Handle on one service database (safe to hold one per process).

    ``ResultStore(path)`` creates the schema on first use and validates the
    schema version afterwards.  All public methods are safe under
    concurrent access from other processes holding their own stores on the
    same path.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._db = sqlite3.connect(self.path, timeout=30.0)
        try:
            self._db.row_factory = sqlite3.Row
            self._db.execute("PRAGMA journal_mode=WAL")
            self._db.execute("PRAGMA synchronous=NORMAL")
            self._db.execute("PRAGMA busy_timeout=30000")
            with self._db:
                self._db.executescript(_DDL)
                self._db.execute(
                    "INSERT OR IGNORE INTO meta(key, value) VALUES ('schema', ?)",
                    (RESULT_STORE_SCHEMA,),
                )
            schema = self._db.execute(
                "SELECT value FROM meta WHERE key = 'schema'"
            ).fetchone()[0]
            if schema != RESULT_STORE_SCHEMA:
                raise ValueError(
                    f"{self.path} uses result-store schema {schema!r}, this "
                    f"code speaks {RESULT_STORE_SCHEMA!r}"
                )
        except BaseException:
            # A handle abandoned by a failed __init__ (foreign schema, DDL
            # error) has no owner to close it; sqlite keeps the file locked
            # until the connection is garbage-collected.
            self._db.close()
            raise

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Experiments (rows are managed by JobQueue; read here)
    # ------------------------------------------------------------------ #

    def experiment(self, job_id: int) -> Dict[str, object]:
        row = self._db.execute(
            "SELECT * FROM experiments WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise KeyError(f"no experiment with id {job_id}")
        record = dict(row)
        record["spec"] = json.loads(record["spec"])
        if record["provenance"]:
            record["provenance"] = json.loads(record["provenance"])
        return record

    def list_experiments(self) -> List[Dict[str, object]]:
        rows = self._db.execute(
            "SELECT id, name, spec_digest, status, attempts, max_attempts, "
            "error_kind, submitted_at, started_at, finished_at "
            "FROM experiments ORDER BY id"
        ).fetchall()
        return [dict(row) for row in rows]

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def record_results(
        self,
        job_id: int,
        rows: Mapping[CellKey, Mapping[str, object]],
        provenance: Mapping[str, object],
    ) -> None:
        """Persist a finished job's cells, aggregated points, and provenance.

        ``rows`` is the journal's row mapping (:func:`read_checkpoint`);
        the points are re-aggregated here through
        :func:`repro.analysis.sweep.collect_rows`, i.e. through the exact
        arithmetic of the in-process sweep, and stored at full float
        precision.  Idempotent per job: re-recording replaces the previous
        rows (the retry path after a worker died mid-record).
        """
        experiment = self.experiment(job_id)
        spec = experiment["spec"]
        result = collect_rows(
            parameter=str(spec["parameter"]),
            values=list(spec["values"]),
            algorithms=list(spec["algorithms"]),
            trials=int(spec["trials"]),
            rows=dict(rows),
        )
        point_rows = []
        for idx, point in enumerate(result):
            measurement = dict(point.measurement.__dict__)
            point_rows.append(
                (
                    job_id,
                    idx,
                    point.parameter,
                    json.dumps(point.value),
                    point.measurement.algorithm,
                    json.dumps(measurement),
                )
            )
        cell_rows = []
        for (index, name, trial), row in sorted(rows.items()):
            if row["status"] == "ok":
                node = np.asarray(row["node_times"], dtype=np.int64)
                edge = np.asarray(row["edge_times"], dtype=np.int64)
                recovery = row.get("recovery")
                cell_rows.append(
                    (
                        job_id,
                        index,
                        name,
                        trial,
                        "ok",
                        int(row["n"]),
                        int(row["m"]),
                        str(row["problem"]),
                        str(row["algorithm"]),
                        node.tobytes(),
                        edge.tobytes(),
                        json.dumps(recovery) if recovery is not None else None,
                        None,
                        None,
                        None,
                    )
                )
            else:
                cell_rows.append(
                    (
                        job_id,
                        index,
                        name,
                        trial,
                        "failure",
                        None,
                        None,
                        None,
                        None,
                        None,
                        None,
                        None,
                        int(row["seed"]),
                        str(row["failure"]),
                        str(row["message"]),
                    )
                )
        with self._db:
            self._db.execute("DELETE FROM cells WHERE experiment_id = ?", (job_id,))
            self._db.execute("DELETE FROM points WHERE experiment_id = ?", (job_id,))
            self._db.executemany(
                "INSERT INTO cells VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
                cell_rows,
            )
            self._db.executemany(
                "INSERT INTO points VALUES (?,?,?,?,?,?)", point_rows
            )
            self._db.execute(
                "UPDATE experiments SET provenance = ? WHERE id = ?",
                (json.dumps(dict(provenance)), job_id),
            )

    def points(self, job_id: int) -> List[Dict[str, object]]:
        """The stored per-(value, algorithm) measurements, in sweep order.

        Each entry carries ``parameter`` / ``value`` / ``algorithm`` plus
        the full-precision ``measurement`` mapping (every
        ``ComplexityMeasurement`` field, quantile and recovery extras
        included).
        """
        rows = self._db.execute(
            "SELECT * FROM points WHERE experiment_id = ? ORDER BY idx",
            (job_id,),
        ).fetchall()
        out = []
        for row in rows:
            out.append(
                {
                    "parameter": row["parameter"],
                    "value": json.loads(row["value"]),
                    "algorithm": row["algorithm"],
                    "measurement": json.loads(row["measurement"]),
                }
            )
        return out

    def cells(self, job_id: int) -> List[Dict[str, object]]:
        """The stored per-trial cells; completion times as int64 arrays."""
        rows = self._db.execute(
            "SELECT * FROM cells WHERE experiment_id = ? "
            "ORDER BY value_index, algorithm, trial",
            (job_id,),
        ).fetchall()
        out = []
        for row in rows:
            record = dict(row)
            if record["status"] == "ok":
                record["node_times"] = np.frombuffer(
                    record["node_times"], dtype=np.int64
                )
                record["edge_times"] = np.frombuffer(
                    record["edge_times"], dtype=np.int64
                )
                if record["recovery"]:
                    record["recovery"] = json.loads(record["recovery"])
            out.append(record)
        return out

    def failures(self, job_id: int) -> List[Dict[str, object]]:
        """The stored failure cells (kind / seed / message) of a job."""
        return [c for c in self.cells(job_id) if c["status"] == "failure"]

    # ------------------------------------------------------------------ #
    # Content-addressed graph cache
    # ------------------------------------------------------------------ #

    def cached_network(self, key: str) -> Optional[Network]:
        """The ready network stored under ``key``, or ``None``.

        Reassembles through :meth:`Network._from_csr_arrays` on zero-copy
        views of the payload bytes — the same trusted constructor the
        parallel sweep's shared-memory path uses, so a cache-hit network is
        indistinguishable from the freshly built original.
        """
        row = self._db.execute(
            "SELECT * FROM graph_cache WHERE key = ? AND status = 'ready'",
            (key,),
        ).fetchone()
        if row is None:
            return None
        self._db.execute(
            "UPDATE graph_cache SET hits = hits + 1 WHERE key = ?", (key,)
        )
        self._db.commit()
        layout = json.loads(row["layout"])
        payload = row["payload"]
        views: Dict[str, np.ndarray] = {}
        for field, offset, count in layout:
            view = np.frombuffer(
                payload, dtype=np.int64, count=count, offset=offset
            )
            view.setflags(write=False)
            views[field] = view
        return Network._from_csr_arrays(
            n=int(row["n"]),
            m=int(row["m"]),
            indptr=views["indptr"],
            indices=views["indices"],
            edge_us=views["edge_us"],
            edge_vs=views["edge_vs"],
            ids=views["ids"],
            max_degree=int(row["max_degree"]),
            min_degree=int(row["min_degree"]),
        )

    def claim_graph_build(self, key: str, recipe: Mapping[str, object]) -> bool:
        """Try to claim the (single) build of ``key``; True when claimed.

        Exactly one concurrent claimant wins the atomic
        ``INSERT OR IGNORE``; losers should poll :meth:`cached_network` (or
        call :meth:`network_for`, which wraps the whole protocol).  A
        ``building`` claim whose holder died (pid gone, or the claim is
        older than the staleness window) is stolen.
        """
        now = time.time()
        with self._db:
            cursor = self._db.execute(
                "INSERT OR IGNORE INTO graph_cache "
                "(key, recipe, status, claimed_by, claimed_at) "
                "VALUES (?, ?, 'building', ?, ?)",
                (key, json.dumps(dict(recipe)), os.getpid(), now),
            )
            if cursor.rowcount:
                return True
            row = self._db.execute(
                "SELECT status, claimed_by, claimed_at FROM graph_cache "
                "WHERE key = ?",
                (key,),
            ).fetchone()
            if row is None or row["status"] == "ready":
                return False
            holder = row["claimed_by"]
            stale = (
                row["claimed_at"] is None
                or now - float(row["claimed_at"]) > _CLAIM_STALE_S
                or (holder is not None and not _pid_alive(int(holder)))
            )
            if not stale:
                return False
            cursor = self._db.execute(
                "UPDATE graph_cache SET claimed_by = ?, claimed_at = ? "
                "WHERE key = ? AND status = 'building' AND claimed_at = ?",
                (os.getpid(), now, key, row["claimed_at"]),
            )
            return bool(cursor.rowcount)

    def store_network(self, key: str, network: Network) -> None:
        """Fill a claimed cache row with the built network's CSR payload."""
        arrays = _network_csr_arrays(network)
        layout: List[Tuple[str, int, int]] = []
        chunks: List[bytes] = []
        offset = 0
        for field in _CSR_FIELDS:
            data = np.ascontiguousarray(arrays[field], dtype=np.int64)
            layout.append((field, offset, int(data.size)))
            chunks.append(data.tobytes())
            offset += data.nbytes
        with self._db:
            self._db.execute(
                "UPDATE graph_cache SET status = 'ready', n = ?, m = ?, "
                "max_degree = ?, min_degree = ?, layout = ?, payload = ?, "
                "builds = builds + 1, built_at = ? WHERE key = ?",
                (
                    network.n,
                    network.m,
                    network.max_degree(),
                    network.min_degree(),
                    json.dumps(layout),
                    b"".join(chunks),
                    time.time(),
                    key,
                ),
            )

    def release_graph_claim(self, key: str) -> None:
        """Drop an unfilled claim (the build raised); unblocks other waiters."""
        with self._db:
            self._db.execute(
                "DELETE FROM graph_cache WHERE key = ? AND status = 'building'",
                (key,),
            )

    def network_for(
        self,
        key: str,
        recipe: Mapping[str, object],
        build: Callable[[], Network],
        poll_s: float = 0.05,
        timeout_s: float = 120.0,
    ) -> Network:
        """The network for ``key``: cache hit, else claim-build-store, else wait.

        The full dedup protocol: whoever claims the row builds once and
        publishes; everyone else polls until the payload is ready.  If the
        wait times out (a wedged builder just inside the staleness window),
        the caller builds locally without publishing — correctness over
        dedup.
        """
        network = self.cached_network(key)
        if network is not None:
            return network
        deadline = time.time() + timeout_s
        while True:
            if self.claim_graph_build(key, recipe):
                try:
                    network = build()
                except BaseException:
                    self.release_graph_claim(key)
                    raise
                self.store_network(key, network)
                return network
            network = self.cached_network(key)
            if network is not None:
                return network
            if time.time() >= deadline:
                return build()
            time.sleep(poll_s)

    def graph_cache_stats(self) -> List[Dict[str, object]]:
        """Per-key cache accounting (builds / hits / sizes), for tests & ops."""
        rows = self._db.execute(
            "SELECT key, recipe, status, n, m, builds, hits FROM graph_cache "
            "ORDER BY key"
        ).fetchall()
        out = []
        for row in rows:
            record = dict(row)
            record["recipe"] = json.loads(record["recipe"])
            out.append(record)
        return out


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):  # pragma: no cover - exists, not ours
        return True
    return True
