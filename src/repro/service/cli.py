"""The ``python -m repro.service`` command line (standard library only).

Verbs::

    python -m repro.service --db runs.db submit --spec spec.json [--run]
    python -m repro.service --db runs.db submit --parameter n --values 8,12 \\
        --family cycle --algorithms luby_mis --trials 3
    python -m repro.service --db runs.db status [JOB_ID] [--json]
    python -m repro.service --db runs.db results JOB_ID [--json]
    python -m repro.service --db runs.db cancel JOB_ID
    python -m repro.service --db runs.db work [--max-jobs N] [--workers W]
    python -m repro.service --db runs.db serve [--port P] [--workers W]

``submit`` accepts either a ``sweep-spec/v1`` JSON file (``--spec``, ``-``
for stdin) or the inline flags; ``--run`` drains the queue in-process after
submitting, which is the one-shot batch mode.  ``work`` runs a scheduler
until the queue is empty; ``serve`` runs the HTTP API with a background
scheduler thread, which is the long-lived service mode.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from typing import Dict, List, Optional, Sequence

from repro.service.api import ServiceAPI, job_payload, results_payload
from repro.service.queue import JobQueue
from repro.service.scheduler import Scheduler
from repro.service.specs import ALGORITHMS, GRAPH_FAMILIES, SweepSpec
from repro.service.store import ResultStore

__all__ = ["main"]


def _parse_values(text: str) -> List[object]:
    """Comma-separated sweep values; each token parsed as JSON when possible."""
    values: List[object] = []
    for token in text.split(","):
        token = token.strip()
        try:
            values.append(json.loads(token))
        except ValueError:
            values.append(token)
    return values


def _parse_family_params(pairs: Sequence[str]) -> Dict[str, object]:
    params: Dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--family-param expects key=value, got {pair!r}")
        key, _, raw = pair.partition("=")
        try:
            params[key] = json.loads(raw)
        except ValueError:
            params[key] = raw
    return params


def _spec_from_args(args: argparse.Namespace) -> SweepSpec:
    if args.spec:
        stream = sys.stdin if args.spec == "-" else open(args.spec)
        with stream:
            data = json.load(stream)
        spec = SweepSpec.from_dict(data)
        return spec.with_name(args.name) if args.name else spec
    missing = [
        flag
        for flag, value in (
            ("--parameter", args.parameter),
            ("--values", args.values),
            ("--family", args.family),
            ("--algorithms", args.algorithms),
        )
        if not value
    ]
    if missing:
        raise SystemExit(
            "submit needs --spec FILE or all of: " + ", ".join(missing)
        )
    return SweepSpec(
        parameter=args.parameter,
        values=tuple(_parse_values(args.values)),
        family=args.family,
        algorithms=tuple(a.strip() for a in args.algorithms.split(",")),
        family_params=_parse_family_params(args.family_param),
        trials=args.trials,
        seed=args.seed,
        max_rounds=args.max_rounds,
        validate=not args.no_validate,
        engine=args.engine,
        cell_timeout=args.cell_timeout,
        batch_budget_bytes=args.batch_budget_bytes,
        name=args.name or "",
    )


def _print(payload: object) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True, default=str))


def _job_line(row: Dict[str, object]) -> str:
    error = f"  [{row['error_kind']}]" if row.get("error_kind") else ""
    name = f"  {row['name']}" if row.get("name") else ""
    return (
        f"job {row['id']:>4}  {row['status']:<9} "
        f"attempts {row['attempts']}/{row['max_attempts']}{name}{error}"
    )


# ---------------------------------------------------------------------- #
# Verbs
# ---------------------------------------------------------------------- #


def _cmd_submit(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    with ResultStore(args.db) as store:
        job_id = JobQueue(store).submit(spec, max_attempts=args.max_attempts)
    print(f"submitted job {job_id} (spec {spec.digest()[:12]}) to {args.db}")
    if args.run:
        scheduler = Scheduler(args.db, max_workers=args.workers, poll_s=0.05)
        try:
            scheduler.drain()
            job = scheduler.queue.job(job_id)
        finally:
            scheduler.close()
        print(f"job {job_id} finished with status {job.status}")
        return 0 if job.status == "done" else 1
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    with ResultStore(args.db) as store:
        if args.job_id is not None:
            payload = job_payload(store, args.job_id)
            if args.json:
                _print(payload)
            else:
                print(_job_line(payload))
                if payload["error_message"]:
                    print(f"  error: {payload['error_message']}")
            return 0
        queue = JobQueue(store)
        rows = store.list_experiments()
        counts = queue.counts()
        if args.json:
            _print({"jobs": rows, "counts": counts})
            return 0
        for row in rows:
            print(_job_line(row))
        print(
            "totals: "
            + "  ".join(f"{status}={n}" for status, n in counts.items() if n)
        )
    return 0


def _cmd_results(args: argparse.Namespace) -> int:
    with ResultStore(args.db) as store:
        payload = results_payload(store, args.job_id)
    if args.json:
        _print(payload)
        return 0
    print(f"job {args.job_id}: {payload['status']}, "
          f"{len(payload['points'])} points, "
          f"{len(payload['failures'])} failed cells")
    for point in payload["points"]:
        m = point["measurement"]
        print(
            f"  {point['parameter']}={point['value']!r:<8} "
            f"{point['algorithm']:<24} "
            f"node-avg={m['node_averaged']:.3f} "
            f"worst={m['worst_case']:.3f} "
            f"(n={m['n']}, trials={m['trials']})"
        )
    for failure in payload["failures"]:
        print(
            f"  FAILED value_index={failure['value_index']} "
            f"{failure['algorithm']} trial={failure['trial']} "
            f"[{failure['kind']}] {failure['message']}"
        )
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    with ResultStore(args.db) as store:
        cancelled = JobQueue(store).cancel(args.job_id)
    if cancelled:
        print(f"job {args.job_id} cancelled")
        return 0
    print(f"job {args.job_id} was not queued (already running or finished)")
    return 1


def _cmd_work(args: argparse.Namespace) -> int:
    scheduler = Scheduler(args.db, max_workers=args.workers, poll_s=args.poll)
    try:
        launched = scheduler.drain(max_jobs=args.max_jobs)
        counts = scheduler.queue.counts()
    finally:
        scheduler.close()
    print(
        f"ran {len(launched)} job attempt(s); "
        + "  ".join(f"{status}={n}" for status, n in counts.items() if n)
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:  # pragma: no cover - loop
    api = ServiceAPI(args.db, host=args.host, port=args.port, verbose=True)
    workers: Optional[Scheduler] = None
    if args.workers > 0:
        workers = Scheduler(args.db, max_workers=args.workers, poll_s=args.poll)
        thread = threading.Thread(target=workers.serve_forever, daemon=True)
        thread.start()
    print(f"serving {args.db} on {api.url} "
          f"({args.workers} worker slot(s))")
    try:
        api.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        api.shutdown()
        if workers is not None:
            workers.close()
    return 0


def _cmd_registry(args: argparse.Namespace) -> int:
    _print(
        {
            "families": sorted(GRAPH_FAMILIES),
            "algorithms": sorted(ALGORITHMS),
        }
    )
    return 0


# ---------------------------------------------------------------------- #
# Parser
# ---------------------------------------------------------------------- #


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Submit, schedule and query persistent sweep experiments.",
    )
    parser.add_argument(
        "--db",
        default="repro-service.db",
        help="service database path (default: %(default)s)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    submit = sub.add_parser("submit", help="enqueue a sweep spec as a job")
    submit.add_argument("--spec", help="sweep-spec/v1 JSON file ('-' = stdin)")
    submit.add_argument("--parameter")
    submit.add_argument("--values", help="comma-separated swept values")
    submit.add_argument("--family", help="registered graph family name")
    submit.add_argument("--algorithms", help="comma-separated algorithm names")
    submit.add_argument(
        "--family-param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="graph family parameter (repeatable)",
    )
    submit.add_argument("--trials", type=int, default=3)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--max-rounds", type=int, default=20_000)
    submit.add_argument("--no-validate", action="store_true")
    submit.add_argument("--engine", default="auto")
    submit.add_argument("--cell-timeout", type=float, default=None)
    submit.add_argument(
        "--batch-budget-bytes",
        type=int,
        default=None,
        help="array-engine batch memory budget override (bytes)",
    )
    submit.add_argument("--name", default="")
    submit.add_argument("--max-attempts", type=int, default=3)
    submit.add_argument(
        "--run",
        action="store_true",
        help="drain the queue in-process after submitting (one-shot mode)",
    )
    submit.add_argument("--workers", type=int, default=1)
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser("status", help="queue overview or one job's state")
    status.add_argument("job_id", nargs="?", type=int, default=None)
    status.add_argument("--json", action="store_true")
    status.set_defaults(func=_cmd_status)

    results = sub.add_parser("results", help="stored results of a job")
    results.add_argument("job_id", type=int)
    results.add_argument("--json", action="store_true")
    results.set_defaults(func=_cmd_results)

    cancel = sub.add_parser("cancel", help="cancel a queued job")
    cancel.add_argument("job_id", type=int)
    cancel.set_defaults(func=_cmd_cancel)

    work = sub.add_parser("work", help="run a scheduler until the queue drains")
    work.add_argument("--max-jobs", type=int, default=None)
    work.add_argument("--workers", type=int, default=1)
    work.add_argument("--poll", type=float, default=0.1)
    work.set_defaults(func=_cmd_work)

    serve = sub.add_parser("serve", help="HTTP API + background scheduler")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="scheduler worker slots (0 = API only)",
    )
    serve.add_argument("--poll", type=float, default=0.2)
    serve.set_defaults(func=_cmd_serve)

    registry = sub.add_parser(
        "registry", help="list registered graph families and algorithms"
    )
    registry.set_defaults(func=_cmd_registry)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
