"""The experiment service: persistent store, job queue, scheduler, frontends.

``repro.service`` is the serving layer over the in-process experiment
machinery: instead of running :func:`repro.analysis.sweep.sweep` inside a
script whose results die with the interpreter, clients **submit** a
serialisable :class:`~repro.service.specs.SweepSpec` as a durable job, a
**scheduler** dispatches queued jobs onto worker processes that execute the
existing checkpointed sweep (so a SIGKILLed worker resumes cell-exactly),
and every measurement, cell, verdict, failure and recovery timeline lands in
a sqlite-backed **result store** (schema ``result-store/v1``) with full
provenance — seed schedule, graph provenance (``EdgeArrays.meta``), engine
and batch-chunk choice, and the sweep checkpoint header.

Layers (each its own module, smallest dependency arrow first):

* :mod:`repro.service.specs` — the serialisable job language: named graph
  families and algorithm/problem pairs, and the ``sweep-spec/v1`` JSON
  round-trip.
* :mod:`repro.service.store` — the sqlite result store and the
  content-addressed graph cache (N concurrent jobs sweeping the same family
  share exactly one CSR build).
* :mod:`repro.service.queue` — durable jobs over the store's database:
  submit / claim / complete, retry-with-backoff on transient failures
  (:data:`repro.core.errors.RETRYABLE_KINDS`), permanent failure otherwise.
* :mod:`repro.service.scheduler` — the dispatcher: fans claimed jobs onto
  worker processes, detects dead workers, and drives retries.
* :mod:`repro.service.cli` / :mod:`repro.service.api` — the stdlib-only
  frontends: ``python -m repro.service`` (submit / status / results /
  cancel / work / serve) and the JSON-over-HTTP mirror of the same verbs.

Everything here is standard library + the repository's own modules; there
is no new dependency.
"""

from repro.service.queue import Job, JobQueue
from repro.service.scheduler import Scheduler, run_job
from repro.service.specs import (
    ALGORITHMS,
    GRAPH_FAMILIES,
    SPEC_FORMAT,
    SweepSpec,
    register_algorithm,
    register_family,
)
from repro.service.store import RESULT_STORE_SCHEMA, ResultStore

__all__ = [
    "SweepSpec",
    "SPEC_FORMAT",
    "GRAPH_FAMILIES",
    "ALGORITHMS",
    "register_family",
    "register_algorithm",
    "ResultStore",
    "RESULT_STORE_SCHEMA",
    "Job",
    "JobQueue",
    "Scheduler",
    "run_job",
]
