"""Durable job queue over the result store's ``experiments`` table.

A job is one submitted :class:`~repro.service.specs.SweepSpec`.  The state
machine:

.. code-block:: text

    queued --claim--> running --complete--> done
      ^                  |
      |                  +--fail(kind)--> queued   (retryable kind,
      |  backoff         |                          attempts < max_attempts)
      +------------------+
                         +--fail(kind)--> failed   (permanent kind, or
                                                    attempts exhausted)
    queued --cancel--> cancelled

Retry classification is :func:`repro.core.errors.is_retryable` over the
failure-taxonomy slugs: a lost worker (``worker-crashed``) or an expired
wall-clock budget retries with exponential backoff (``not_before`` gates
the next claim); a deterministic failure — invalid solution, round-limit
overrun, arbitrary algorithm exception — fails the job permanently, because
the per-cell seed schedule would replay the identical execution on every
attempt.

Claims are atomic (``UPDATE ... WHERE status = 'queued'`` with a rowcount
check), so any number of scheduler processes can pull from one database
without double-running a job.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.errors import is_retryable
from repro.service.specs import SweepSpec
from repro.service.store import ResultStore

__all__ = ["Job", "JobQueue", "JOB_STATUSES"]

JOB_STATUSES = ("queued", "running", "done", "failed", "cancelled")


@dataclass(frozen=True)
class Job:
    """One queue row, spec parsed."""

    id: int
    spec: SweepSpec
    status: str
    attempts: int
    max_attempts: int
    not_before: float
    error_kind: Optional[str]
    error_message: Optional[str]

    @property
    def active(self) -> bool:
        return self.status in ("queued", "running")


class JobQueue:
    """Submit / claim / resolve jobs in a service database."""

    def __init__(
        self,
        store: ResultStore,
        backoff_base_s: float = 1.0,
        backoff_cap_s: float = 60.0,
    ) -> None:
        self.store = store
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self._db = store._db

    # ------------------------------------------------------------------ #
    # Producers
    # ------------------------------------------------------------------ #

    def submit(self, spec: SweepSpec, max_attempts: int = 3) -> int:
        """Enqueue a spec as a durable job; returns the job id."""
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        with self._db:
            cursor = self._db.execute(
                "INSERT INTO experiments "
                "(name, spec, spec_digest, status, max_attempts, submitted_at) "
                "VALUES (?, ?, ?, 'queued', ?, ?)",
                (
                    spec.name,
                    spec.canonical_json(),
                    spec.digest(),
                    int(max_attempts),
                    time.time(),
                ),
            )
        return int(cursor.lastrowid)

    def cancel(self, job_id: int) -> bool:
        """Cancel a queued job; True when the job was actually dequeued.

        A running job is not interrupted (its worker owns it); a finished
        job is left untouched.  Cancelling is therefore race-free: it only
        ever transitions ``queued -> cancelled``.
        """
        with self._db:
            cursor = self._db.execute(
                "UPDATE experiments SET status = 'cancelled', finished_at = ? "
                "WHERE id = ? AND status = 'queued'",
                (time.time(), job_id),
            )
        return bool(cursor.rowcount)

    # ------------------------------------------------------------------ #
    # Workers
    # ------------------------------------------------------------------ #

    def claim(self, worker_pid: Optional[int] = None) -> Optional[Job]:
        """Atomically claim the oldest ready job (``None`` when queue idle)."""
        now = time.time()
        row = self._db.execute(
            "SELECT id FROM experiments WHERE status = 'queued' "
            "AND not_before <= ? ORDER BY id LIMIT 1",
            (now,),
        ).fetchone()
        if row is None:
            return None
        job_id = int(row["id"])
        with self._db:
            cursor = self._db.execute(
                "UPDATE experiments SET status = 'running', "
                "attempts = attempts + 1, worker_pid = ?, started_at = ? "
                "WHERE id = ? AND status = 'queued'",
                (worker_pid, now, job_id),
            )
        if not cursor.rowcount:  # lost the race to another scheduler
            return None
        return self.job(job_id)

    def mark_done(self, job_id: int) -> None:
        with self._db:
            self._db.execute(
                "UPDATE experiments SET status = 'done', error_kind = NULL, "
                "error_message = NULL, finished_at = ? "
                "WHERE id = ? AND status = 'running'",
                (time.time(), job_id),
            )

    def mark_failed(self, job_id: int, kind: str, message: str) -> str:
        """Resolve a running job that failed; returns the new status.

        Applies the retry classification: a retryable ``kind`` with
        attempts to spare goes back to ``queued`` with exponential backoff;
        anything else becomes a permanent ``failed``.
        """
        job = self.job(job_id)
        retry = is_retryable(kind) and job.attempts < job.max_attempts
        now = time.time()
        if retry:
            backoff = min(
                self.backoff_base_s * (2.0 ** (job.attempts - 1)),
                self.backoff_cap_s,
            )
            with self._db:
                self._db.execute(
                    "UPDATE experiments SET status = 'queued', not_before = ?, "
                    "error_kind = ?, error_message = ? "
                    "WHERE id = ? AND status = 'running'",
                    (now + backoff, kind, message, job_id),
                )
            return "queued"
        with self._db:
            self._db.execute(
                "UPDATE experiments SET status = 'failed', error_kind = ?, "
                "error_message = ?, finished_at = ? "
                "WHERE id = ? AND status = 'running'",
                (kind, message, now, job_id),
            )
        return "failed"

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def job(self, job_id: int) -> Job:
        record = self.store.experiment(job_id)
        return Job(
            id=int(record["id"]),
            spec=SweepSpec.from_dict(record["spec"]),
            status=str(record["status"]),
            attempts=int(record["attempts"]),
            max_attempts=int(record["max_attempts"]),
            not_before=float(record["not_before"]),
            error_kind=record["error_kind"],
            error_message=record["error_message"],
        )

    def jobs(self) -> List[Job]:
        return [self.job(row["id"]) for row in self.store.list_experiments()]

    def counts(self) -> Dict[str, int]:
        rows = self._db.execute(
            "SELECT status, COUNT(*) AS k FROM experiments GROUP BY status"
        ).fetchall()
        counts = {status: 0 for status in JOB_STATUSES}
        counts.update({row["status"]: int(row["k"]) for row in rows})
        return counts

    def pending(self) -> int:
        """Jobs still to be driven to a terminal state."""
        counts = self.counts()
        return counts["queued"] + counts["running"]
