"""Minimal JSON-over-HTTP frontend (standard library only).

Exposes the service verbs on a :class:`ThreadingHTTPServer`:

========  ===========================  =====================================
Method    Path                         Meaning
========  ===========================  =====================================
GET       ``/v1/healthz``              liveness + schema/format identifiers
GET       ``/v1/jobs``                 job list (queue counts included)
POST      ``/v1/jobs``                 submit — body is a ``sweep-spec/v1``
                                       object, optionally wrapped as
                                       ``{"spec": {...}, "max_attempts": k}``
GET       ``/v1/jobs/<id>``            one job: status, attempts, error,
                                       provenance
GET       ``/v1/jobs/<id>/results``    stored points + failure cells
POST      ``/v1/jobs/<id>/cancel``     cancel a queued job
========  ===========================  =====================================

The API is deliberately a thin mirror of :class:`~repro.service.queue.
JobQueue` / :class:`~repro.service.store.ResultStore`: it never executes
jobs itself — pair it with a scheduler (``python -m repro.service serve``
runs both).  Each request opens its own store handle, so the threaded
server needs no connection sharing; sqlite's WAL mode handles the
concurrent readers.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.service.queue import JobQueue
from repro.service.specs import SPEC_FORMAT, SweepSpec
from repro.service.store import RESULT_STORE_SCHEMA, ResultStore

__all__ = ["ServiceAPI", "job_payload", "results_payload"]


def job_payload(store: ResultStore, job_id: int) -> Dict[str, object]:
    """The JSON view of one job row (spec + lifecycle + provenance)."""
    record = store.experiment(job_id)
    return {
        "id": record["id"],
        "name": record["name"],
        "status": record["status"],
        "spec": record["spec"],
        "spec_digest": record["spec_digest"],
        "attempts": record["attempts"],
        "max_attempts": record["max_attempts"],
        "not_before": record["not_before"],
        "error_kind": record["error_kind"],
        "error_message": record["error_message"],
        "submitted_at": record["submitted_at"],
        "started_at": record["started_at"],
        "finished_at": record["finished_at"],
        "provenance": record["provenance"] or None,
    }


def results_payload(store: ResultStore, job_id: int) -> Dict[str, object]:
    """The JSON view of a job's stored results (points + failures)."""
    record = store.experiment(job_id)
    failures = [
        {
            "value_index": cell["value_index"],
            "algorithm": cell["algorithm"],
            "trial": cell["trial"],
            "seed": cell["seed"],
            "kind": cell["kind"],
            "message": cell["message"],
        }
        for cell in store.failures(job_id)
    ]
    return {
        "id": record["id"],
        "status": record["status"],
        "points": store.points(job_id),
        "failures": failures,
        "provenance": record["provenance"] or None,
    }


class _Handler(BaseHTTPRequestHandler):
    """Routes ``/v1/...`` requests onto a per-request store handle."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #

    def log_message(self, fmt: str, *args: object) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(fmt, *args)

    def _send(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    def _read_body(self) -> Optional[Dict[str, object]]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        try:
            payload = json.loads(self.rfile.read(length).decode())
        except (ValueError, UnicodeDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def _route(self) -> Tuple[str, Optional[int], Optional[str]]:
        """``(head, job_id, tail)`` of ``/v1/jobs/<id>/<tail>`` style paths."""
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) >= 2 and parts[0] == "v1":
            head = parts[1]
            if len(parts) == 2:
                return head, None, None
            try:
                job_id = int(parts[2])
            except ValueError:
                return head, None, "bad-id"
            return head, job_id, parts[3] if len(parts) > 3 else None
        return "", None, None

    # ------------------------------------------------------------------ #
    # Verbs
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 - http.server convention
        head, job_id, tail = self._route()
        if head == "healthz":
            self._send(
                200,
                {
                    "status": "ok",
                    "schema": RESULT_STORE_SCHEMA,
                    "spec_format": SPEC_FORMAT,
                },
            )
            return
        if head != "jobs" or tail == "bad-id":
            self._error(404, f"no such resource: {self.path}")
            return
        with ResultStore(self.server.db_path) as store:
            if job_id is None:
                queue = JobQueue(store)
                self._send(
                    200,
                    {
                        "jobs": store.list_experiments(),
                        "counts": queue.counts(),
                    },
                )
                return
            try:
                if tail is None:
                    self._send(200, job_payload(store, job_id))
                elif tail == "results":
                    self._send(200, results_payload(store, job_id))
                else:
                    self._error(404, f"no such resource: {self.path}")
            except KeyError:
                self._error(404, f"no job with id {job_id}")

    def do_POST(self) -> None:  # noqa: N802 - http.server convention
        head, job_id, tail = self._route()
        if head != "jobs" or tail == "bad-id":
            self._error(404, f"no such resource: {self.path}")
            return
        if job_id is None and tail is None:
            body = self._read_body()
            if body is None:
                self._error(400, "request body must be a JSON object")
                return
            # Accept both the bare spec object and the {"spec": ...} wrapper.
            spec_data = body.get("spec", body)
            max_attempts = int(body.get("max_attempts", 3)) if "spec" in body else 3
            try:
                spec = SweepSpec.from_dict(spec_data)
            except (TypeError, ValueError) as error:
                self._error(400, f"invalid spec: {error}")
                return
            with ResultStore(self.server.db_path) as store:
                queue_id = JobQueue(store).submit(spec, max_attempts=max_attempts)
                self._send(201, job_payload(store, queue_id))
            return
        if job_id is not None and tail == "cancel":
            with ResultStore(self.server.db_path) as store:
                try:
                    cancelled = JobQueue(store).cancel(job_id)
                    self._send(200, job_payload(store, job_id) | {
                        "cancelled": cancelled,
                    })
                except KeyError:
                    self._error(404, f"no job with id {job_id}")
            return
        self._error(404, f"no such resource: {self.path}")


class ServiceAPI:
    """The HTTP frontend bound to one service database.

    ``port=0`` binds an ephemeral port (read it back from ``address``) —
    the form the tests and the smoke example use.
    """

    def __init__(
        self,
        db_path: str,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        # Create/upgrade the database up front so the first request can't
        # race the schema bootstrap.
        ResultStore(db_path).close()
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.db_path = str(db_path)
        self._server.verbose = verbose
        self._server.daemon_threads = True

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:  # pragma: no cover - blocking loop
        self._server.serve_forever()

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()
