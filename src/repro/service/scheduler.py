"""The dispatcher: fans queued jobs onto worker processes.

Execution model
---------------

The scheduler claims jobs (atomically, via the queue) and runs each in its
own **worker process** (:func:`run_job`).  A worker executes the spec
through the existing crash-safe sweep — ``on_error="record"``, a per-job
checkpoint journal under ``<db>.journals/`` — then loads the journal back,
re-aggregates it, and persists cells + points + provenance into the result
store before resolving the job.

Durability falls out of composing the existing primitives:

* a worker that dies mid-sweep (OOM SIGKILL, machine reset) leaves the job
  ``running``; the scheduler notices the dead process and applies the retry
  classification (``worker-crashed`` is retryable), so the job re-queues
  with backoff;
* the retry's worker reopens the same journal and **resumes cell-exactly**
  — finished cells are never re-run, and the per-cell seed schedule makes
  the completed result identical to an uninterrupted run;
* the journal's exclusive writer lock means a half-dead predecessor can
  never interleave rows with the retry (the retry would get a clean
  :class:`~repro.core.errors.CheckpointLocked`, itself retryable).

Graph builds go through the store's content-addressed cache
(:meth:`ResultStore.network_for`), so concurrent jobs sweeping the same
family perform exactly one CSR build between them.

Test seam: when ``REPRO_SERVICE_KILL_AFTER_ROWS=<k>`` is set in a worker's
environment, the worker SIGKILLs itself after journaling ``k`` cell rows —
the deterministic mid-run crash used by the durability tests and the
``make serve-smoke`` CI step.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import signal
import time
from typing import Dict, List, Optional

# `repro.analysis` re-exports the sweep *function*, which shadows the
# submodule on attribute-style imports; resolve the module itself.
import importlib

sweepmod = importlib.import_module("repro.analysis.sweep")
from repro.core.errors import WorkerCrashed, classify_failure
from repro.core.experiment import seed_schedule
from repro.local.engine import _BATCH_BYTE_BUDGET, batch_chunk
from repro.service.queue import JobQueue
from repro.service.specs import SweepSpec
from repro.service.store import ResultStore

__all__ = ["Scheduler", "run_job", "journal_path"]

#: Environment variable arming the worker's deterministic self-kill seam.
KILL_ENV = "REPRO_SERVICE_KILL_AFTER_ROWS"


def journal_path(db_path: str, job_id: int) -> str:
    """The per-job sweep checkpoint journal (survives worker death)."""
    directory = os.path.abspath(db_path) + ".journals"
    os.makedirs(directory, exist_ok=True)
    return os.path.join(directory, f"job-{job_id}.jsonl")


def _arm_kill_seam() -> None:
    kill_after = os.environ.get(KILL_ENV)
    if not kill_after:
        return
    rows_seen = itertools.count(1)
    threshold = int(kill_after)

    def _kill_hook(row: Dict[str, object]) -> None:
        if next(rows_seen) >= threshold:
            os.kill(os.getpid(), signal.SIGKILL)

    sweepmod._test_hook = _kill_hook


def run_job(db_path: str, job_id: int) -> str:
    """Execute one claimed job to resolution; returns the final status.

    Runs in the worker process (but is equally callable inline, e.g. from
    tests): executes the checkpointed sweep, persists results + provenance,
    and marks the job done — or classifies the failure and lets the queue
    decide between retry and permanent failure.
    """
    store = ResultStore(db_path)
    queue = JobQueue(store)
    job = queue.job(job_id)
    spec = job.spec
    try:
        _arm_kill_seam()
        with store._db:
            store._db.execute(
                "UPDATE experiments SET worker_pid = ? WHERE id = ?",
                (os.getpid(), job_id),
            )
        journal = journal_path(db_path, job_id)
        graph_provenance: Dict[int, Dict[str, object]] = {}
        factory = _cached_graph_factory(store, spec, graph_provenance)
        sweepmod.sweep(
            **spec.sweep_kwargs(factory),
            checkpoint=journal,
            on_error="record",
        )
        header, rows = sweepmod.read_checkpoint(journal)
        provenance = _provenance(spec, header, graph_provenance)
        store.record_results(job_id, rows, provenance)
        queue.mark_done(job_id)
        return "done"
    except KeyboardInterrupt:
        raise
    except BaseException as error:  # noqa: BLE001 - every failure is classified
        status = queue.mark_failed(job_id, classify_failure(error), str(error))
        return status
    finally:
        store.close()


def _cached_graph_factory(store: ResultStore, spec: SweepSpec, provenance: Dict):
    """A sweep ``graph_factory`` that answers from the shared graph cache.

    Returns ready :class:`Network` objects (which ``network_from`` passes
    through untouched), built at most once per content key across every
    concurrent worker on the same database.  Records per-index provenance
    (cache key, sizes, ``EdgeArrays.meta`` when this worker did the build)
    as a side effect.
    """
    values = list(spec.values)

    def factory(value: object):
        index = values.index(value)
        key = spec.graph_key(index)
        recipe = {
            "family": spec.family,
            "params": dict(spec.family_params),
            "value": value,
            "network_seed": spec.network_seed(index),
        }
        built_meta: Dict[str, object] = {}

        def build():
            source = spec.graph_source(value)
            meta = getattr(source, "meta", None)
            if meta:
                built_meta.update(dict(meta))
            return sweepmod.network_from(source, seed=spec.network_seed(index))

        network = store.network_for(key, recipe, build)
        provenance[index] = {
            "key": key,
            "recipe": recipe,
            "n": network.n,
            "m": network.m,
            # EdgeArrays.meta of the generated source when this worker built
            # the network; a cache hit records the recipe (equivalent
            # provenance — the recipe *is* the build input).
            "edge_arrays_meta": built_meta or None,
            "batch_chunk": batch_chunk(
                network.n,
                network.m,
                spec.trials,
                (
                    _BATCH_BYTE_BUDGET
                    if spec.batch_budget_bytes is None
                    else int(spec.batch_budget_bytes)
                ),
            ),
        }
        return network

    return factory


def _provenance(
    spec: SweepSpec,
    header: Dict[str, object],
    graphs: Dict[int, Dict[str, object]],
) -> Dict[str, object]:
    """The full provenance record stored alongside a job's results."""
    return {
        "spec_digest": spec.digest(),
        # The complete, explicit seed schedule: cell (index, trial) ran with
        # seed trial_seed(seed + 1000*index, trial) — listed per index so a
        # stored cell reproduces with a single serial run_trials call.
        "seed_schedule": {
            "rule": "trial_seed(seed + 1000 * value_index, trial)",
            "seed": spec.seed,
            "per_index": {
                str(index): seed_schedule(spec.seed + 1000 * index, spec.trials)
                for index in range(len(spec.values))
            },
        },
        "engine": spec.engine,
        "batch_budget_bytes": spec.batch_budget_bytes,
        "default_batch_budget_bytes": _BATCH_BYTE_BUDGET,
        "checkpoint_header": dict(header),
        "graphs": {str(index): info for index, info in sorted(graphs.items())},
    }


class Scheduler:
    """Claims jobs and dispatches them onto worker processes.

    ``max_workers`` bounds concurrent worker processes; claims are atomic,
    so several Scheduler instances (even in different processes) can share
    one database.  ``backoff_base_s`` / ``backoff_cap_s`` parameterise the
    retry backoff applied by the queue.
    """

    def __init__(
        self,
        db_path: str,
        max_workers: int = 1,
        poll_s: float = 0.1,
        backoff_base_s: float = 1.0,
        backoff_cap_s: float = 60.0,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.db_path = str(db_path)
        self.max_workers = int(max_workers)
        self.poll_s = float(poll_s)
        self.store = ResultStore(self.db_path)
        self.queue = JobQueue(
            self.store,
            backoff_base_s=backoff_base_s,
            backoff_cap_s=backoff_cap_s,
        )
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - fork unavailable
            self._ctx = multiprocessing.get_context()

    def _reconcile(self, job_id: int, exitcode: Optional[int]) -> None:
        """Resolve a job whose worker process has exited.

        A worker resolves its own job (done / failed / re-queued); a job
        still ``running`` after its process died means the worker was killed
        mid-run — the classic OOM SIGKILL — which is the retryable
        ``worker-crashed`` failure.
        """
        job = self.queue.job(job_id)
        if job.status == "running":
            self.queue.mark_failed(
                job_id,
                WorkerCrashed.kind,
                f"worker process exited with code {exitcode} without "
                "resolving the job",
            )

    def drain(self, max_jobs: Optional[int] = None) -> List[int]:
        """Run until the queue is idle (or ``max_jobs`` launches happened).

        Waits out retry backoffs: a job re-queued with ``not_before`` in
        the future keeps the drain alive until it resolves.  Returns the
        job ids that were launched, in launch order.
        """
        active: Dict[object, int] = {}
        launched: List[int] = []

        def may_launch() -> bool:
            return max_jobs is None or len(launched) < max_jobs

        while True:
            for process in [p for p in active if not p.is_alive()]:
                process.join()
                self._reconcile(active.pop(process), process.exitcode)
            while len(active) < self.max_workers and may_launch():
                job = self.queue.claim()
                if job is None:
                    break
                process = self._ctx.Process(
                    target=run_job, args=(self.db_path, job.id)
                )
                process.start()
                active[process] = job.id
                launched.append(job.id)
            if not active:
                if self.queue.pending() and may_launch():
                    time.sleep(self.poll_s)  # a backoff gate is in the future
                    continue
                return launched
            time.sleep(self.poll_s)

    def run_once(self) -> Optional[int]:
        """Claim and fully resolve one job (retries included); its id or None."""
        jobs = self.drain(max_jobs=1)
        return jobs[0] if jobs else None

    def serve_forever(self) -> None:  # pragma: no cover - interactive loop
        """Drain, then keep polling for new submissions until interrupted."""
        while True:
            self.drain()
            time.sleep(max(self.poll_s, 0.05))

    def close(self) -> None:
        self.store.close()
