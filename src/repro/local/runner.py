"""Synchronous round-by-round execution of distributed algorithms.

The :class:`Runner` implements the LOCAL model's synchronous schedule: in
every round every (still participating) node first produces its outgoing
messages based on its state at the end of the previous round, then all
messages are delivered simultaneously, and finally every node processes its
inbox.  Outputs committed while processing round ``t`` are stamped with round
``t``; outputs committed in ``init`` or while *producing* round-``t`` messages
are stamped with ``t - 1`` (they are a function of the node's ``(t-1)``-hop
neighbourhood only).  These stamps are exactly the individual complexities
``T_v`` / ``T_e`` of the paper, from which :mod:`repro.core.metrics` computes
node- and edge-averaged complexities.

Performance notes.  The hot loop is organised around an **active set**: only
nodes that have not halted are visited, so the per-round cost is proportional
to the number of still-running nodes and the messages they send, not to
``n + m``.  Inboxes are allocated once per node and reused across rounds (the
runner clears them after delivery — algorithms must copy an inbox if they
want to keep it beyond the ``receive`` call, which none of the provided
algorithms do).  Completion is tracked *incrementally*: nodes notify a
:class:`_CompletionTracker` on their first commit / halt, so the
"is the execution complete?" check is O(1) per round instead of a full scan
of every node and edge.
"""

from __future__ import annotations

import gc
import random
from array import array
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import RoundLimitExceeded
from repro.core.metrics import RecoveryTimeline
from repro.core.problems import MISSING, ProblemSpec
from repro.core.trace import ExecutionTrace
from repro.local.algorithm import Broadcast, NodeAlgorithm
from repro.local.coroutine import CoroutineAlgorithm
from repro.local.faults import FaultSchedule
from repro.local.network import Network
from repro.local.node import CommitError, NodeRuntime

# RoundLimitExceeded moved to repro.core.errors (the structured failure
# taxonomy); re-exported here because it was born in this module and callers
# import it from both places.
__all__ = ["Runner", "RoundLimitExceeded", "estimate_message_bits"]


try:  # pragma: no cover - fallback exercised only on exotic interpreters
    import _random

    _BASE_SEED = _random.Random.seed

    def _reseed(rng: random.Random, key: int) -> None:
        """Re-seed ``rng`` to the exact state of a fresh ``random.Random(key)``.

        ``random.Random.seed`` with an int delegates straight to the C-level
        ``_random.Random.seed`` and resets ``gauss_next``; calling the C
        method directly skips the Python wrapper on a per-node hot path.
        """
        _BASE_SEED(rng, key)
        rng.gauss_next = None

    def _make_node_rng(key: int) -> random.Random:
        """A ``random.Random(key)`` built without the Python seeding wrapper."""
        rng = random.Random.__new__(random.Random)
        _BASE_SEED(rng, key)
        rng.gauss_next = None
        return rng

except (ImportError, AttributeError):  # pragma: no cover

    def _reseed(rng: random.Random, key: int) -> None:
        rng.seed(key)

    def _make_node_rng(key: int) -> random.Random:
        return random.Random(key)


def estimate_message_bits(payload: Any) -> int:
    """Rough size estimate (in bits) of a message payload.

    Used to sanity-check CONGEST claims: messages should stay within
    ``O(log n)`` bits.  The estimate is intentionally simple — integers count
    their bit length, containers sum their elements plus a small per-element
    overhead, strings count eight bits per character.
    """
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length() + 1)
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return 8 * len(payload)
    if isinstance(payload, (tuple, list, set, frozenset)):
        return sum(estimate_message_bits(item) + 2 for item in payload) + 2
    if isinstance(payload, dict):
        return sum(
            estimate_message_bits(k) + estimate_message_bits(v) + 4 for k, v in payload.items()
        ) + 2
    # Fallback for exotic payloads (only legitimate in the LOCAL model).
    return 8 * len(repr(payload))


class _CompletionTracker:
    """Incremental completion bookkeeping for one execution.

    Nodes call :meth:`node_committed` / :meth:`edge_committed` /
    :meth:`node_halted` on the corresponding first-time events; the tracker
    keeps counters so that :meth:`is_complete` answers in O(1).  The
    semantics match the former full scan exactly:

    * node-labelling problems are complete when every node committed,
    * edge-labelling problems are complete when every edge has at least one
      endpoint that committed it,
    * problems labelling neither are complete when every node halted.
    """

    __slots__ = (
        "labels_nodes",
        "labels_edges",
        "_pending_nodes",
        "_pending_edges",
        "_edge_decided",
        "_network",
        "_n",
        "_edge_index",
        "_nodes",
        "_crashed_set",
        "halt_events",
        "edge_commit_events",
    )

    def __init__(self, network: Network, problem: ProblemSpec) -> None:
        self.labels_nodes = problem.labels_nodes
        self.labels_edges = problem.labels_edges
        self._pending_nodes = network.n
        self._pending_edges = network.m
        self._edge_decided = bytearray(network.m)
        self._network = network
        self._n = network.n
        self._edge_index = None
        # The runtime nodes of the execution (attached by the runner once
        # they exist) and the crash casualties so far — both consulted only
        # on the revocation paths of self-stabilising runs.
        self._nodes: Optional[Tuple[NodeRuntime, ...]] = None
        self._crashed_set: set = set()
        self.halt_events = 0
        self.edge_commit_events = 0

    def node_committed(self, vertex: int) -> None:
        self._pending_nodes -= 1

    def edge_committed(self, vertex: int, neighbor: int) -> None:
        self.edge_commit_events += 1
        # Commits towards vertices outside 0..n-1 are ignored like any other
        # non-neighbour commit — and must never reach the packed lookup,
        # where an out-of-range endpoint would alias another row's key.
        if not 0 <= neighbor < self._n:
            return
        edge_index = self._edge_index
        if edge_index is None:
            # Packed-key int lookup (u * n + v for canonical u < v) built
            # from the flat endpoint arrays: no tuple per edge, and on
            # array-built networks no materialisation of the lazy `edges`
            # tuple view either.
            edge_index = self._edge_index = self._network._packed_edge_index()
        key = (
            vertex * self._n + neighbor
            if vertex < neighbor
            else neighbor * self._n + vertex
        )
        index = edge_index.get(key)
        # Commits towards non-neighbours are ignored, as the former edge scan
        # (which only ever looked at real edges) ignored them.
        if index is not None and not self._edge_decided[index]:
            self._edge_decided[index] = 1
            self._pending_edges -= 1

    def node_halted(self, vertex: int) -> None:
        self.halt_events += 1

    def node_revoked(self, vertex: int) -> None:
        """A node withdrew its committed output: it is pending again."""
        self._pending_nodes += 1

    def edge_revoked(self, vertex: int, neighbor: int) -> None:
        """``vertex`` withdrew its commit for the edge towards ``neighbor``.

        The edge only becomes pending again when no other commitment keeps
        it decided: a crashed endpoint keeps it excused (but a dead
        counterpart's stale record is expunged so the revocation is not
        resurrected at trace collection), and a live counterpart's own
        commit keeps it decided.
        """
        if not 0 <= neighbor < self._n:
            return
        edge_index = self._edge_index
        if edge_index is None:
            edge_index = self._edge_index = self._network._packed_edge_index()
        key = (
            vertex * self._n + neighbor
            if vertex < neighbor
            else neighbor * self._n + vertex
        )
        index = edge_index.get(key)
        if index is None or not self._edge_decided[index]:
            return
        if vertex in self._crashed_set or neighbor in self._crashed_set:
            if self._nodes is not None and neighbor in self._crashed_set:
                corpse = self._nodes[neighbor]
                corpse._edge_outputs.pop(vertex, None)
                corpse._edge_output_rounds.pop(vertex, None)
            return
        if self._nodes is not None and vertex in self._nodes[neighbor]._edge_outputs:
            return
        self._edge_decided[index] = 0
        self._pending_edges += 1

    def node_crashed(self, vertex: int, committed: bool) -> None:
        """Excuse a crash-stop casualty from the completion requirements.

        A crashed node that never committed can never commit, so it stops
        blocking node-labelling completion; likewise its still-undecided
        incident edges are excused for edge-labelling problems (marking them
        decided here also guards against a double decrement if the surviving
        endpoint commits the edge later).
        """
        self._crashed_set.add(vertex)
        if self.labels_nodes and not committed:
            self._pending_nodes -= 1
        if self.labels_edges:
            for index in self._network.incident_edge_indices(vertex):
                if not self._edge_decided[index]:
                    self._edge_decided[index] = 1
                    self._pending_edges -= 1

    def is_complete(self, unhalted: int) -> bool:
        if self.labels_nodes and self._pending_nodes:
            return False
        if self.labels_edges and self._pending_edges:
            return False
        if not self.labels_nodes and not self.labels_edges:
            return unhalted == 0
        return True


def _recovery_round_entry(
    tracker: _CompletionTracker,
    nodes: Tuple[NodeRuntime, ...],
    network: Network,
    problem: ProblemSpec,
) -> Tuple[int, bool]:
    """One ``(pending, valid)`` entry of a self-stabilising recovery timeline.

    ``pending`` counts the required outputs still undecided among survivors
    (straight off the tracker's counters); validity is only evaluated on
    survivor-complete configurations, and strictly — on the induced survivor
    subnetwork (:meth:`ProblemSpec.validate_induced`), so commitments of
    crashed nodes never carry an epoch to "recovered".
    """
    pending = 0
    if tracker.labels_nodes:
        pending += tracker._pending_nodes
    if tracker.labels_edges:
        pending += tracker._pending_edges
    if pending > 0:
        return pending, False
    n = network.n
    node_slots: List[Any] = [MISSING] * n
    for node in nodes:
        if node._output_round is not None:
            node_slots[node.vertex] = node._output
    edge_slots: List[Any] = [MISSING] * network.m
    packed = network._packed_edge_index()
    for node in nodes:
        outputs = node._edge_outputs
        if not outputs:
            continue
        v = node.vertex
        for u, value in outputs.items():
            if not 0 <= u < n:
                continue
            key = v * n + u if v < u else u * n + v
            i = packed.get(key)
            if i is not None and edge_slots[i] is MISSING:
                edge_slots[i] = value
    result = problem.validate_induced(
        network, node_slots, edge_slots, tracker._crashed_set
    )
    return 0, bool(result)


class Runner:
    """Executes a :class:`NodeAlgorithm` on a :class:`Network`.

    A ``Runner`` instance executes **one run at a time**: repeated runs on
    the same network reuse a pooled set of node runtimes (see
    ``_acquire_nodes``), so sharing one instance across threads, or
    re-entering ``run`` from algorithm callbacks, is not supported — give
    each concurrent execution its own ``Runner`` (networks can be shared
    freely; they are immutable).  The pool also keeps the most recent
    network and its node runtimes alive for the lifetime of the instance.

    Args:
        max_rounds: hard cap on the number of communication rounds.  The
            default is generous enough for every algorithm in this library on
            the graph sizes used in tests and benchmarks.
        strict: if ``True``, hitting ``max_rounds`` raises
            :class:`RoundLimitExceeded`; otherwise the trace is returned with
            ``completed=False`` and uncommitted entities charged the full
            execution length.
        track_message_bits: record the size of the largest message, for
            CONGEST sanity checks.
        pause_gc: disable the cyclic garbage collector while the round loop
            runs (restored afterwards, even on error).  The loop allocates
            large numbers of short-lived message dicts that the generational
            collector would otherwise repeatedly traverse; reference counting
            alone reclaims them.
    """

    def __init__(
        self,
        max_rounds: int = 10_000,
        strict: bool = True,
        track_message_bits: bool = False,
        pause_gc: bool = True,
    ) -> None:
        if max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")
        self.max_rounds = max_rounds
        self.strict = strict
        self.track_message_bits = track_message_bits
        self.pause_gc = pause_gc
        # Single-entry NodeRuntime pool: repeated runs on the same network
        # (the common shape of every trial loop) re-seed and reset the
        # existing node objects instead of reallocating n runtimes and n
        # Mersenne generators per run.  `Random.seed(k)` produces exactly the
        # same stream as a fresh `Random(k)`, so traces are unaffected.
        self._pool_network: Optional[Network] = None
        self._pool_nodes: Optional[Tuple[NodeRuntime, ...]] = None

    # ------------------------------------------------------------------ #

    def run(
        self,
        algorithm: NodeAlgorithm,
        network: Network,
        problem: ProblemSpec,
        seed: Optional[int] = None,
        faults: Optional[FaultSchedule] = None,
    ) -> ExecutionTrace:
        """Simulate ``algorithm`` on ``network`` for ``problem``.

        Args:
            algorithm: the per-node algorithm to execute.
            network: the communication graph.
            problem: problem specification; its ``labels_nodes`` /
                ``labels_edges`` flags define when the execution is complete
                and how completion times are derived.
            seed: master seed for all private node randomness.  Two runs with
                the same seed on the same network are identical.
            faults: optional :class:`~repro.local.faults.FaultSchedule` to
                inject crash-stop node faults and seeded message drops /
                delays.  Crashed nodes stop sending and committing; survivors
                keep running, and completion only waits for entities the
                survivors can still decide (uncommitted crashed nodes, and
                edges with a crashed endpoint, are excused).  Fault events
                and crashed vertices are recorded on the trace, and
                validation scores the surviving subgraph.

        Returns:
            The :class:`ExecutionTrace` of the execution.
        """
        gc_was_enabled = self.pause_gc and gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if faults is not None and (faults.crashes or faults.has_message_faults):
                return self._run_faulted(algorithm, network, problem, seed, faults)
            return self._run(algorithm, network, problem, seed)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run(
        self,
        algorithm: NodeAlgorithm,
        network: Network,
        problem: ProblemSpec,
        seed: Optional[int],
    ) -> ExecutionTrace:
        master_rng = random.Random(seed)
        tracker = _CompletionTracker(network, problem)
        nodes = self._acquire_nodes(network, master_rng, tracker)
        tracker._nodes = nodes

        total_messages = 0
        max_message_bits = 0
        track_bits = self.track_message_bits

        # Round 0: initialisation.
        for node in nodes:
            node._current_round = 0
            algorithm.init(node)

        # Active set: nodes that may still send and receive.  Inboxes exist
        # only for active nodes and are reused (cleared, not reallocated)
        # between rounds.
        active: List[NodeRuntime] = [node for node in nodes if not node._halted]
        inbox_of: List[Optional[Dict[int, Any]]] = [None] * network.n
        for node in active:
            inbox_of[node.vertex] = {}
        seen_halt_events = tracker.halt_events

        rounds_executed = 0
        completed = tracker.is_complete(len(active))
        send = algorithm.send
        receive = algorithm.receive
        # Coroutine algorithms store their pending outbox in a node slot and
        # their program in another; read/advance them directly instead of
        # paying a method call per node per round (only when the subclass
        # has not overridden the plumbing).
        algorithm_type = type(algorithm)
        direct_outbox = (
            isinstance(algorithm, CoroutineAlgorithm)
            and algorithm_type.send is CoroutineAlgorithm.send
        )
        direct_receive = (
            isinstance(algorithm, CoroutineAlgorithm)
            and algorithm_type.receive is CoroutineAlgorithm.receive
        )

        while not completed and rounds_executed < self.max_rounds:
            current_round = rounds_executed + 1

            # Phase 1: every participating node produces its messages based on
            # its state after `rounds_executed` rounds.
            for node in active:
                outgoing = node._coro_outbox if direct_outbox else send(node)
                if not outgoing:
                    continue
                source = node.vertex
                if type(outgoing) is Broadcast:
                    # Full-neighbourhood broadcast: targets are valid by
                    # construction, no per-message dict or validation needed.
                    payload = outgoing.payload
                    neighbors = node.neighbors
                    total_messages += len(neighbors)
                    if track_bits:
                        max_message_bits = max(
                            max_message_bits, estimate_message_bits(payload)
                        )
                    for target in neighbors:
                        box = inbox_of[target]
                        if box is not None:
                            box[source] = payload
                    continue
                neighbor_set = node._neighbor_set
                for target, payload in outgoing.items():
                    if target not in neighbor_set:
                        raise ValueError(
                            f"node {source} attempted to send to non-neighbour {target}"
                        )
                    total_messages += 1
                    if track_bits:
                        max_message_bits = max(max_message_bits, estimate_message_bits(payload))
                    box = inbox_of[target]
                    if box is not None:
                        box[source] = payload

            # Phase 2: simultaneous delivery and processing.
            if direct_receive:
                for node in active:
                    if node._halted:
                        continue
                    node._current_round = current_round
                    box = inbox_of[node.vertex]
                    program = node._coro_program
                    if program is not None:
                        try:
                            node._coro_outbox = program.send(box or {})
                        except StopIteration:
                            node._coro_program = None
                            node._coro_outbox = None
                            node.halt()
                    if box:
                        box.clear()
            else:
                for node in active:
                    if node._halted:
                        continue
                    node._current_round = current_round
                    box = inbox_of[node.vertex]
                    receive(node, box)
                    if box:
                        box.clear()

            rounds_executed = current_round

            # Drop nodes that halted this round from the active set (only
            # when someone actually halted — the common case is no change).
            if tracker.halt_events != seen_halt_events:
                seen_halt_events = tracker.halt_events
                still_active: List[NodeRuntime] = []
                for node in active:
                    if node._halted:
                        inbox_of[node.vertex] = None
                    else:
                        still_active.append(node)
                active = still_active

            completed = tracker.is_complete(len(active))

        if not completed and self.strict:
            raise RoundLimitExceeded(
                f"{algorithm.name} did not finish {problem.name} on a graph with "
                f"n={network.n}, m={network.m} within {self.max_rounds} rounds"
            )

        return self._collect_trace(
            algorithm,
            network,
            problem,
            nodes,
            rounds_executed,
            completed,
            total_messages,
            max_message_bits if self.track_message_bits else None,
            any_edge_commits=tracker.edge_commit_events > 0,
        )

    def _run_faulted(
        self,
        algorithm: NodeAlgorithm,
        network: Network,
        problem: ProblemSpec,
        seed: Optional[int],
        faults: FaultSchedule,
    ) -> ExecutionTrace:
        """The round loop with fault injection (reference semantics).

        A separate loop so the fault-free hot path of :meth:`_run` stays
        untouched.  Faults are applied in a fixed order per round: crashes
        at the round start (a node crashing at round ``r`` sends nothing at
        ``r``), then the previous round's delayed messages are delivered
        (so a fresh round-``r`` message from the same source overwrites
        them), then sends with per-directed-edge drop/delay fates from the
        schedule's documented per-round PCG64 block.  Node randomness is
        seeded exactly as in the fault-free path, so a run with an empty
        schedule is bit-identical to one without a schedule.
        """
        master_rng = random.Random(seed)
        tracker = _CompletionTracker(network, problem)
        nodes = self._acquire_nodes(network, master_rng, tracker)
        tracker._nodes = nodes

        total_messages = 0
        max_message_bits = 0
        track_bits = self.track_message_bits

        for node in nodes:
            node._current_round = 0
            algorithm.init(node)

        active: List[NodeRuntime] = [node for node in nodes if not node._halted]
        inbox_of: List[Optional[Dict[int, Any]]] = [None] * network.n
        for node in active:
            inbox_of[node.vertex] = {}
        seen_halt_events = tracker.halt_events

        n = network.n
        m = network.m
        edge_us, edge_vs = network.edge_endpoints()
        packed = network._packed_edge_index() if faults.has_message_faults else None

        fault_events: List[Tuple] = []
        # Messages delayed by one round: (target, source, payload), delivered
        # before the next round's sends.
        delayed_messages: List[Tuple[int, int, Any]] = []

        # Self-stabilising executions keep running until the last scheduled
        # crash has landed (an output-complete configuration before that is
        # not stable — the adversary will strike again), notify survivors of
        # crashed neighbours, and record a per-round recovery timeline.
        selfstab = bool(getattr(algorithm, "self_stabilizing", False))
        final_crash = max(faults.crashes.values(), default=0) if selfstab else 0
        crash_rounds: List[int] = []
        recovery_pending: List[int] = []
        recovery_valid: List[bool] = []

        rounds_executed = 0
        completed = tracker.is_complete(len(active)) and rounds_executed >= final_crash
        send = algorithm.send
        algorithm_type = type(algorithm)
        direct_outbox = (
            isinstance(algorithm, CoroutineAlgorithm)
            and algorithm_type.send is CoroutineAlgorithm.send
        )
        direct_receive = (
            isinstance(algorithm, CoroutineAlgorithm)
            and algorithm_type.receive is CoroutineAlgorithm.receive
        )
        receive = algorithm.receive

        while not completed and rounds_executed < self.max_rounds:
            current_round = rounds_executed + 1

            # Crash-stop faults land at the start of the round: the casualty
            # is dead *during* the round (sends nothing, processes nothing).
            newly_crashed = faults.crashes_at(current_round)
            if newly_crashed:
                crash_rounds.append(current_round)
                for v in newly_crashed:
                    node = nodes[v]
                    if not node._crashed:
                        node._crashed = True
                        inbox_of[v] = None
                        tracker.node_crashed(v, node._output_round is not None)
                if selfstab:
                    # Survivors adjacent to a fresh casualty learn of the
                    # crash before producing this round's messages; the hook
                    # may revoke outputs and re-enter the protocol.
                    for v in newly_crashed:
                        for u in nodes[v].neighbors:
                            survivor = nodes[u]
                            if not survivor._crashed and not survivor._halted:
                                algorithm.neighbor_crashed(survivor, v)
                active = [node for node in active if not node._crashed]

            fault_events.extend(faults.round_events(current_round, edge_us, edge_vs))
            fates = faults.directed_fates(current_round, m)
            fates_list = fates.tolist() if fates is not None else None

            # Last round's delayed messages arrive with this round's batch;
            # delivering them first lets a newer message from the same
            # source overwrite, and dead/halted targets (inbox None) lose
            # them silently.
            if delayed_messages:
                for target, source, payload in delayed_messages:
                    box = inbox_of[target]
                    if box is not None:
                        box[source] = payload
                delayed_messages = []

            # Phase 1: sends.  Counts are charged at the sender (a dropped
            # message was still sent); drops and delays apply per directed
            # edge slot via the schedule's fate block.
            for node in active:
                outgoing = node._coro_outbox if direct_outbox else send(node)
                if not outgoing:
                    continue
                source = node.vertex
                if type(outgoing) is Broadcast:
                    payload = outgoing.payload
                    neighbors = node.neighbors
                    total_messages += len(neighbors)
                    if track_bits:
                        max_message_bits = max(
                            max_message_bits, estimate_message_bits(payload)
                        )
                    for target in neighbors:
                        if fates_list is not None:
                            key = (
                                source * n + target
                                if source < target
                                else target * n + source
                            )
                            fate = fates_list[
                                2 * packed[key] + (0 if source < target else 1)
                            ]
                            if fate == 1:
                                continue
                            if fate == 2:
                                delayed_messages.append((target, source, payload))
                                continue
                        box = inbox_of[target]
                        if box is not None:
                            box[source] = payload
                    continue
                neighbor_set = node._neighbor_set
                for target, payload in outgoing.items():
                    if target not in neighbor_set:
                        raise ValueError(
                            f"node {source} attempted to send to non-neighbour {target}"
                        )
                    total_messages += 1
                    if track_bits:
                        max_message_bits = max(
                            max_message_bits, estimate_message_bits(payload)
                        )
                    if fates_list is not None:
                        key = (
                            source * n + target
                            if source < target
                            else target * n + source
                        )
                        fate = fates_list[
                            2 * packed[key] + (0 if source < target else 1)
                        ]
                        if fate == 1:
                            continue
                        if fate == 2:
                            delayed_messages.append((target, source, payload))
                            continue
                    box = inbox_of[target]
                    if box is not None:
                        box[source] = payload

            # Phase 2: simultaneous delivery and processing (survivors only).
            if direct_receive:
                for node in active:
                    if node._halted:
                        continue
                    node._current_round = current_round
                    box = inbox_of[node.vertex]
                    program = node._coro_program
                    if program is not None:
                        try:
                            node._coro_outbox = program.send(box or {})
                        except StopIteration:
                            node._coro_program = None
                            node._coro_outbox = None
                            node.halt()
                    if box:
                        box.clear()
            else:
                for node in active:
                    if node._halted:
                        continue
                    node._current_round = current_round
                    box = inbox_of[node.vertex]
                    receive(node, box)
                    if box:
                        box.clear()

            rounds_executed = current_round

            if tracker.halt_events != seen_halt_events:
                seen_halt_events = tracker.halt_events
                still_active: List[NodeRuntime] = []
                for node in active:
                    if node._halted:
                        inbox_of[node.vertex] = None
                    else:
                        still_active.append(node)
                active = still_active

            completed = tracker.is_complete(len(active)) and (
                not selfstab or rounds_executed >= final_crash
            )
            if selfstab:
                pending, valid = _recovery_round_entry(
                    tracker, nodes, network, problem
                )
                recovery_pending.append(pending)
                recovery_valid.append(valid)

        if not completed and self.strict:
            raise RoundLimitExceeded(
                f"{algorithm.name} did not finish {problem.name} on a graph with "
                f"n={network.n}, m={network.m} within {self.max_rounds} rounds"
            )

        recovery = (
            RecoveryTimeline(
                crash_rounds=tuple(crash_rounds),
                pending=tuple(recovery_pending),
                valid=tuple(recovery_valid),
            )
            if selfstab
            else None
        )
        return self._collect_trace(
            algorithm,
            network,
            problem,
            nodes,
            rounds_executed,
            completed,
            total_messages,
            max_message_bits if self.track_message_bits else None,
            any_edge_commits=tracker.edge_commit_events > 0,
            fault_events=tuple(fault_events),
            crashed=faults.crashed_within(rounds_executed),
            recovery=recovery,
        )

    # ------------------------------------------------------------------ #

    def _acquire_nodes(
        self,
        network: Network,
        master_rng: random.Random,
        tracker: _CompletionTracker,
    ) -> Tuple[NodeRuntime, ...]:
        if self._pool_network is not network:
            nodes = self._build_nodes(network, master_rng, tracker)
            self._pool_network = network
            self._pool_nodes = nodes
            return nodes
        nodes = self._pool_nodes
        getrandbits = master_rng.getrandbits
        reseed = _reseed
        for node in nodes:
            # Same draw order as _build_nodes, hence identical rng streams.
            reseed(node.rng, getrandbits(64))
            if node.state:
                node.state = {}
            node._halted = False
            node._crashed = False
            node._output = None
            node._output_round = None
            if node._edge_outputs:
                node._edge_outputs = {}
                node._edge_output_rounds = {}
            node._current_round = 0
            node._observer = tracker
            node._coro_program = None
            node._coro_outbox = None
        return nodes

    @staticmethod
    def _build_nodes(
        network: Network,
        master_rng: random.Random,
        observer: Optional[_CompletionTracker] = None,
    ) -> Tuple[NodeRuntime, ...]:
        make_rng = _make_node_rng
        getrandbits = master_rng.getrandbits
        identifiers = network.identifiers
        adjacency = network._adjacency
        return tuple(
            NodeRuntime(
                vertex=v,
                identifier=identifiers[v],
                neighbors=adjacency[v],
                rng=make_rng(getrandbits(64)),
                observer=observer,
            )
            for v in range(network.n)
        )

    @staticmethod
    def _collect_trace(
        algorithm: NodeAlgorithm,
        network: Network,
        problem: ProblemSpec,
        nodes: Tuple[NodeRuntime, ...],
        rounds: int,
        completed: bool,
        total_messages: int,
        max_message_bits: Optional[int],
        any_edge_commits: bool = True,
        fault_events: Tuple = (),
        crashed: Tuple[int, ...] = (),
        recovery: Optional[RecoveryTimeline] = None,
    ) -> ExecutionTrace:
        # Outputs and commit rounds go straight into the trace's flat
        # per-slot arrays (-1 = never committed); the historical dict views
        # are derived lazily by ExecutionTrace only if somebody asks.
        n = network.n
        node_rounds = array("q", [-1]) * n
        node_values: list = [None] * n
        for node in nodes:
            r = node._output_round
            if r is not None:
                v = node.vertex
                node_rounds[v] = r
                node_values[v] = node._output

        m = network.m
        edge_rounds = array("q", [-1]) * m
        edge_values: list = [None] * m
        if any_edge_commits:
            # Walk the committing nodes' own output dicts instead of scanning
            # all m edges of the (possibly lazy) tuple edge view: cost is
            # O(n + commits), and array-built networks never materialise a
            # tuple per edge — slots resolve through the packed-key index.
            packed = network._packed_edge_index()
            for node in nodes:
                outputs = node._edge_outputs
                if not outputs:
                    continue
                v = node.vertex
                rounds_of = node._edge_output_rounds
                for u, value in outputs.items():
                    if not 0 <= u < n:
                        # Out-of-range neighbour: ignored, and kept away
                        # from the packed lookup where it would alias
                        # another row's key.
                        continue
                    key = v * n + u if v < u else u * n + v
                    i = packed.get(key)
                    if i is None:
                        # Commit towards a non-neighbour: ignored, as the
                        # former per-edge scan never visited it.
                        continue
                    r = rounds_of[u]
                    if edge_rounds[i] < 0:
                        edge_rounds[i] = r
                        edge_values[i] = value
                        continue
                    if edge_values[i] != value:
                        a, b = (v, u) if v < u else (u, v)
                        raise CommitError(
                            f"endpoints of edge ({a}, {b}) committed conflicting "
                            f"outputs: {{{edge_values[i]!r}, {value!r}}}"
                        )
                    if r < edge_rounds[i]:
                        edge_rounds[i] = r

        return ExecutionTrace.from_arrays(
            network,
            problem,
            node_values,
            node_rounds,
            edge_values,
            edge_rounds,
            rounds=rounds,
            completed=completed,
            total_messages=total_messages,
            max_message_bits=max_message_bits,
            algorithm_name=algorithm.name,
            fault_events=fault_events,
            crashed=crashed,
            recovery=recovery,
        )
