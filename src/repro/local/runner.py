"""Synchronous round-by-round execution of distributed algorithms.

The :class:`Runner` implements the LOCAL model's synchronous schedule: in
every round every (still participating) node first produces its outgoing
messages based on its state at the end of the previous round, then all
messages are delivered simultaneously, and finally every node processes its
inbox.  Outputs committed while processing round ``t`` are stamped with round
``t``; outputs committed in ``init`` or while *producing* round-``t`` messages
are stamped with ``t - 1`` (they are a function of the node's ``(t-1)``-hop
neighbourhood only).  These stamps are exactly the individual complexities
``T_v`` / ``T_e`` of the paper, from which :mod:`repro.core.metrics` computes
node- and edge-averaged complexities.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional, Tuple

from repro.core.problems import ProblemSpec
from repro.core.trace import ExecutionTrace
from repro.local.algorithm import NodeAlgorithm
from repro.local.network import Network, canonical_edge
from repro.local.node import CommitError, NodeRuntime

__all__ = ["Runner", "RoundLimitExceeded", "estimate_message_bits"]


class RoundLimitExceeded(RuntimeError):
    """Raised when an execution hits the round limit and ``strict`` is set."""


def estimate_message_bits(payload: Any) -> int:
    """Rough size estimate (in bits) of a message payload.

    Used to sanity-check CONGEST claims: messages should stay within
    ``O(log n)`` bits.  The estimate is intentionally simple — integers count
    their bit length, containers sum their elements plus a small per-element
    overhead, strings count eight bits per character.
    """
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length() + 1)
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return 8 * len(payload)
    if isinstance(payload, (tuple, list, set, frozenset)):
        return sum(estimate_message_bits(item) + 2 for item in payload) + 2
    if isinstance(payload, dict):
        return sum(
            estimate_message_bits(k) + estimate_message_bits(v) + 4 for k, v in payload.items()
        ) + 2
    # Fallback for exotic payloads (only legitimate in the LOCAL model).
    return 8 * len(repr(payload))


class Runner:
    """Executes a :class:`NodeAlgorithm` on a :class:`Network`.

    Args:
        max_rounds: hard cap on the number of communication rounds.  The
            default is generous enough for every algorithm in this library on
            the graph sizes used in tests and benchmarks.
        strict: if ``True``, hitting ``max_rounds`` raises
            :class:`RoundLimitExceeded`; otherwise the trace is returned with
            ``completed=False`` and uncommitted entities charged the full
            execution length.
        track_message_bits: record the size of the largest message, for
            CONGEST sanity checks.
    """

    def __init__(
        self,
        max_rounds: int = 10_000,
        strict: bool = True,
        track_message_bits: bool = False,
    ) -> None:
        if max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")
        self.max_rounds = max_rounds
        self.strict = strict
        self.track_message_bits = track_message_bits

    # ------------------------------------------------------------------ #

    def run(
        self,
        algorithm: NodeAlgorithm,
        network: Network,
        problem: ProblemSpec,
        seed: Optional[int] = None,
    ) -> ExecutionTrace:
        """Simulate ``algorithm`` on ``network`` for ``problem``.

        Args:
            algorithm: the per-node algorithm to execute.
            network: the communication graph.
            problem: problem specification; its ``labels_nodes`` /
                ``labels_edges`` flags define when the execution is complete
                and how completion times are derived.
            seed: master seed for all private node randomness.  Two runs with
                the same seed on the same network are identical.

        Returns:
            The :class:`ExecutionTrace` of the execution.
        """
        master_rng = random.Random(seed)
        nodes = self._build_nodes(network, master_rng)

        total_messages = 0
        max_message_bits = 0

        # Round 0: initialisation.
        for node in nodes:
            node._current_round = 0
            algorithm.init(node)

        rounds_executed = 0
        completed = self._is_complete(network, nodes, problem)

        while not completed and rounds_executed < self.max_rounds:
            current_round = rounds_executed + 1

            # Phase 1: every participating node produces its messages based on
            # its state after `rounds_executed` rounds.
            inboxes: Dict[int, Dict[int, Any]] = {v: {} for v in network.vertices}
            for node in nodes:
                if node.halted:
                    continue
                outgoing = algorithm.send(node) or {}
                for target, payload in outgoing.items():
                    if target not in node.neighbors:
                        raise ValueError(
                            f"node {node.vertex} attempted to send to non-neighbour {target}"
                        )
                    inboxes[target][node.vertex] = payload
                    total_messages += 1
                    if self.track_message_bits:
                        max_message_bits = max(max_message_bits, estimate_message_bits(payload))

            # Phase 2: simultaneous delivery and processing.
            for node in nodes:
                if node.halted:
                    continue
                node._current_round = current_round
                algorithm.receive(node, inboxes[node.vertex])

            rounds_executed = current_round
            completed = self._is_complete(network, nodes, problem)

        if not completed and self.strict:
            raise RoundLimitExceeded(
                f"{algorithm.name} did not finish {problem.name} on a graph with "
                f"n={network.n}, m={network.m} within {self.max_rounds} rounds"
            )

        return self._collect_trace(
            algorithm,
            network,
            problem,
            nodes,
            rounds_executed,
            completed,
            total_messages,
            max_message_bits if self.track_message_bits else None,
        )

    # ------------------------------------------------------------------ #

    @staticmethod
    def _build_nodes(network: Network, master_rng: random.Random) -> Tuple[NodeRuntime, ...]:
        nodes = []
        for v in network.vertices:
            node_rng = random.Random(master_rng.getrandbits(64))
            nodes.append(
                NodeRuntime(
                    vertex=v,
                    identifier=network.identifier(v),
                    neighbors=network.neighbors(v),
                    rng=node_rng,
                )
            )
        return tuple(nodes)

    @staticmethod
    def _is_complete(
        network: Network, nodes: Tuple[NodeRuntime, ...], problem: ProblemSpec
    ) -> bool:
        if problem.labels_nodes:
            if any(not node.has_committed for node in nodes):
                return False
        if problem.labels_edges:
            for u, v in network.edges:
                if not (nodes[u].has_committed_edge(v) or nodes[v].has_committed_edge(u)):
                    return False
        if not problem.labels_nodes and not problem.labels_edges:
            return all(node.halted for node in nodes)
        return True

    @staticmethod
    def _collect_trace(
        algorithm: NodeAlgorithm,
        network: Network,
        problem: ProblemSpec,
        nodes: Tuple[NodeRuntime, ...],
        rounds: int,
        completed: bool,
        total_messages: int,
        max_message_bits: Optional[int],
    ) -> ExecutionTrace:
        trace = ExecutionTrace(
            network=network,
            problem=problem,
            rounds=rounds,
            completed=completed,
            total_messages=total_messages,
            max_message_bits=max_message_bits,
            algorithm_name=algorithm.name,
        )
        for node in nodes:
            if node.has_committed:
                trace.node_outputs[node.vertex] = node.output
                trace.node_commit_round[node.vertex] = node.output_round or 0

        for u, v in network.edges:
            edge = canonical_edge(u, v)
            commits = []
            if nodes[u].has_committed_edge(v):
                commits.append((nodes[u]._edge_output_rounds[v], nodes[u].edge_output(v)))
            if nodes[v].has_committed_edge(u):
                commits.append((nodes[v]._edge_output_rounds[u], nodes[v].edge_output(u)))
            if not commits:
                continue
            values = {value for _, value in commits}
            if len(values) > 1:
                raise CommitError(
                    f"endpoints of edge ({u}, {v}) committed conflicting outputs: {values}"
                )
            trace.edge_outputs[edge] = commits[0][1]
            trace.edge_commit_round[edge] = min(rnd for rnd, _ in commits)
        return trace
