"""Deterministic fault injection for the LOCAL-model simulators.

A :class:`FaultSchedule` describes an adversary for one execution:

* **crash-stop node faults** — ``crashes`` maps a vertex to the round at
  whose *start* it crashes (rounds are 1-based, like the runner's round
  counter).  A node crashed at round ``r`` sends nothing at round ``r``,
  never processes an inbox again and never commits again; whatever it
  committed in rounds ``< r`` stands.  Survivors keep running — graceful
  degradation, not abort.
* **seeded message drops/delays** — every directed message of round ``r``
  is independently dropped with probability ``drop_rate`` or delayed by one
  round with probability ``delay_rate``.  Both engines honour delays: the
  coroutine runner re-queues the concrete payload, the array engine exposes
  the equivalent ``late_uv`` / ``late_vu`` carry masks on
  :class:`RoundFaults` for fault-aware array algorithms.  A delayed message
  is delivered together with round ``r + 1``'s messages, so a fresh
  round-``r+1`` message from the same sender overwrites it; it is lost if
  the target has crashed or halted by then.  Round-synchronous algorithms whose message *types* vary by phase
  (e.g. Luby's alternating priority/announcement broadcasts) can therefore
  observe a cross-phase straggler whenever the overwriting fresh message is
  itself dropped or the sender has retired — an algorithm-level exception
  under such an adversary is a legitimate structured outcome, not a harness
  bug: resilient sweeps (``on_error="record"``) record it as an
  ``exception:<Type>`` failure row instead of crashing.

Seed schedule (the ``fast_gnp_edges`` relaxed-randomness precedent).  Fault
randomness is engine-independent: it comes from the schedule's own PCG64
streams, never from the algorithm's RNG, so the *same* ``FaultSchedule``
object injects bit-identical faults into the coroutine :class:`~repro.local.
runner.Runner` and the :class:`~repro.local.engine.ArrayEngine`.  Round ``r``
draws one block

    ``numpy.random.Generator(PCG64(SeedSequence([seed, r]))).random(2 m)``

of uniforms over the **directed edge slots**: canonical edge slot ``i``
(endpoints ``u < v`` in :meth:`Network.edge_endpoints` order) owns direction
``u → v`` at ``2 i`` and ``v → u`` at ``2 i + 1``.  A directed uniform ``x``
means dropped if ``x < drop_rate``, delayed if
``drop_rate ≤ x < drop_rate + delay_rate``, delivered otherwise.  Keying the
generator by ``(seed, round)`` makes the schedule independent of how many
rounds the run executes and of the order the engines query it in.

Fault events.  :meth:`FaultSchedule.round_events` derives the per-round
event list *purely from the schedule* (crash rounds + directed masks +
topology), never from engine state: a drop/delay event is recorded iff the
mask selects the direction **and** neither endpoint has crashed by that
round — whether or not the source actually had a message to send.  The
events describe the adversary, not observed message loss; because both
engines call the same helper for each executed round, their recorded events
are identical by construction (differential tests pin this).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

__all__ = ["FaultSchedule", "RoundFaults", "FaultEvent"]

#: ("crash", round, vertex) | ("drop", round, source, target)
#: | ("delay", round, source, target)
FaultEvent = Tuple


#: Directed-fate codes of the per-round mask.
_DELIVER, _DROP, _DELAY = 0, 1, 2

#: Capacity of the per-schedule fate-mask LRU.  The engines query at most
#: the current and the previous round (for late-delivery masks), so a small
#: window never misses on the sequential access pattern while keeping
#: memory flat over arbitrarily long runs (each entry is a ``2m`` int8
#: array; an unbounded cache grew one per executed round).
_MASK_CACHE_SIZE = 8


class RoundFaults:
    """The faults of one engine round, in array form.

    Built by :meth:`FaultSchedule.round_faults` and handed to fault-aware
    :class:`~repro.local.engine.ArrayAlgorithm` steps:

    * ``alive`` — bool per vertex; ``False`` from the crash round onwards
      (a node crashing at round ``r`` is already dead *during* round ``r``),
    * ``newly_crashed`` — vertices whose crash round is exactly this round,
    * ``deliver_uv`` / ``deliver_vu`` — bool per canonical edge slot:
      whether a message along ``u → v`` / ``v → u`` would be delivered this
      round (not dropped or delayed, and both endpoints alive),
    * ``late_uv`` / ``late_vu`` — bool per canonical edge slot: whether a
      message *delayed in the previous round* arrives late along
      ``u → v`` / ``v → u`` at the start of this round (the sender was
      alive when it sent, the target is alive now).  ``None`` when the
      schedule has no delays or this is round 1 (nothing in flight).  A
      late arrival carries the **previous round's** payload and is
      overwritten by a same-sender fresh delivery, exactly like the
      coroutine runner's ``delayed_messages`` queue.
    """

    __slots__ = (
        "round_index",
        "alive",
        "newly_crashed",
        "deliver_uv",
        "deliver_vu",
        "late_uv",
        "late_vu",
    )

    def __init__(
        self,
        round_index: int,
        alive: np.ndarray,
        newly_crashed: Tuple[int, ...],
        deliver_uv: np.ndarray,
        deliver_vu: np.ndarray,
        late_uv: Optional[np.ndarray] = None,
        late_vu: Optional[np.ndarray] = None,
    ) -> None:
        self.round_index = round_index
        self.alive = alive
        self.newly_crashed = newly_crashed
        self.deliver_uv = deliver_uv
        self.deliver_vu = deliver_vu
        self.late_uv = late_uv
        self.late_vu = late_vu


class FaultSchedule:
    """A deterministic crash/drop/delay adversary for one execution.

    A schedule is immutable and engine-independent; the same instance may be
    threaded through any number of runs on any engine (an internal per-round
    mask cache only memoises deterministic draws).

    Args:
        crashes: mapping ``vertex → crash round`` (1-based; the node is dead
            from the start of that round).
        drop_rate: per-directed-message drop probability in ``[0, 1]``.
        delay_rate: per-directed-message one-round delay probability,
            honoured by both engines (``drop_rate + delay_rate ≤ 1``).
        seed: master seed of the schedule's own PCG64 streams.
    """

    __slots__ = ("crashes", "drop_rate", "delay_rate", "seed", "_mask_cache")

    def __init__(
        self,
        crashes: Optional[Mapping[int, int]] = None,
        drop_rate: float = 0.0,
        delay_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        crashes = dict(crashes or {})
        for vertex, crash_round in crashes.items():
            if not isinstance(vertex, int) or vertex < 0:
                raise ValueError(f"crash vertex must be a non-negative int, got {vertex!r}")
            if not isinstance(crash_round, int) or crash_round < 1:
                raise ValueError(
                    f"crash round for vertex {vertex} must be an int >= 1, got {crash_round!r}"
                )
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError("drop_rate must lie in [0, 1]")
        if not 0.0 <= delay_rate <= 1.0:
            raise ValueError("delay_rate must lie in [0, 1]")
        if drop_rate + delay_rate > 1.0:
            raise ValueError("drop_rate + delay_rate must not exceed 1")
        self.crashes: Dict[int, int] = crashes
        self.drop_rate = float(drop_rate)
        self.delay_rate = float(delay_rate)
        self.seed = int(seed)
        # (round, m) → int8 directed-fate array.  Draws are deterministic,
        # so eviction is safe (a re-query recomputes the identical array);
        # a small LRU keeps memory flat over long runs.
        self._mask_cache: "OrderedDict[Tuple[int, int], np.ndarray]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # Crash queries
    # ------------------------------------------------------------------ #

    @property
    def has_message_faults(self) -> bool:
        """Whether any directed message can be dropped or delayed."""
        return self.drop_rate > 0.0 or self.delay_rate > 0.0

    def crash_round(self, vertex: int) -> Optional[int]:
        """The round at whose start ``vertex`` crashes, or ``None``."""
        return self.crashes.get(vertex)

    def crashes_at(self, round_index: int) -> Tuple[int, ...]:
        """Vertices crashing exactly at the start of ``round_index`` (sorted)."""
        return tuple(
            sorted(v for v, r in self.crashes.items() if r == round_index)
        )

    def crashed_by(self, round_index: int) -> Tuple[int, ...]:
        """Vertices dead during ``round_index`` (crash round ≤ it), sorted."""
        return tuple(
            sorted(v for v, r in self.crashes.items() if r <= round_index)
        )

    def alive_mask(self, round_index: int, n: int) -> np.ndarray:
        """Bool per vertex: alive during ``round_index``."""
        alive = np.ones(n, dtype=bool)
        for vertex, crash_round in self.crashes.items():
            if crash_round <= round_index and vertex < n:
                alive[vertex] = False
        return alive

    # ------------------------------------------------------------------ #
    # Directed message fates
    # ------------------------------------------------------------------ #

    def directed_fates(self, round_index: int, m: int) -> Optional[np.ndarray]:
        """Fate per directed slot for ``round_index`` (``None`` = all delivered).

        The returned int8 array has length ``2 m``: slot ``i``'s direction
        ``u → v`` at ``2 i`` and ``v → u`` at ``2 i + 1``; values are
        ``0`` = delivered, ``1`` = dropped, ``2`` = delayed.  One PCG64 block
        keyed ``SeedSequence([seed, round_index])`` per round — the
        documented schedule.
        """
        if not self.has_message_faults or m == 0:
            return None
        key = (round_index, m)
        fates = self._mask_cache.get(key)
        if fates is None:
            rng = np.random.Generator(
                np.random.PCG64(np.random.SeedSequence([self.seed, round_index]))
            )
            draws = rng.random(2 * m)
            fates = np.zeros(2 * m, dtype=np.int8)
            fates[draws < self.drop_rate] = _DROP
            if self.delay_rate > 0.0:
                fates[
                    (draws >= self.drop_rate)
                    & (draws < self.drop_rate + self.delay_rate)
                ] = _DELAY
            fates.setflags(write=False)
            self._mask_cache[key] = fates
            if len(self._mask_cache) > _MASK_CACHE_SIZE:
                self._mask_cache.popitem(last=False)
        else:
            self._mask_cache.move_to_end(key)
        return fates

    # ------------------------------------------------------------------ #
    # Engine-facing round view
    # ------------------------------------------------------------------ #

    def round_faults(
        self,
        round_index: int,
        n: int,
        m: int,
        edge_us: np.ndarray,
        edge_vs: np.ndarray,
    ) -> RoundFaults:
        """The :class:`RoundFaults` view of ``round_index`` for an ``n``/``m`` graph."""
        alive = self.alive_mask(round_index, n)
        fates = self.directed_fates(round_index, m)
        both_alive = alive[edge_us] & alive[edge_vs]
        if fates is None:
            deliver_uv = both_alive
            deliver_vu = both_alive.copy()
        else:
            deliver_uv = (fates[0::2] == _DELIVER) & both_alive
            deliver_vu = (fates[1::2] == _DELIVER) & both_alive
        late_uv = late_vu = None
        if self.delay_rate > 0.0 and round_index >= 2:
            prev_fates = self.directed_fates(round_index - 1, m)
            if prev_fates is not None:
                # Late iff delayed last round, the sender was alive *then*
                # (a crashed node sent nothing) and the target is alive now
                # (the coroutine runner drops in-flight payloads whose
                # target inbox is gone).
                alive_prev = self.alive_mask(round_index - 1, n)
                late_uv = (
                    (prev_fates[0::2] == _DELAY)
                    & alive_prev[edge_us]
                    & alive[edge_vs]
                )
                late_vu = (
                    (prev_fates[1::2] == _DELAY)
                    & alive_prev[edge_vs]
                    & alive[edge_us]
                )
        return RoundFaults(
            round_index=round_index,
            alive=alive,
            newly_crashed=self.crashes_at(round_index),
            deliver_uv=deliver_uv,
            deliver_vu=deliver_vu,
            late_uv=late_uv,
            late_vu=late_vu,
        )

    # ------------------------------------------------------------------ #
    # Engine-independent event log
    # ------------------------------------------------------------------ #

    def round_events(
        self,
        round_index: int,
        edge_us: np.ndarray,
        edge_vs: np.ndarray,
    ) -> List[FaultEvent]:
        """The fault events of ``round_index``, derived from the schedule alone.

        Ordering is fixed (crashes by vertex, then drops, then delays, each
        in ascending directed-slot order) so both engines record literally
        identical lists for the rounds they execute.
        """
        events: List[FaultEvent] = [
            ("crash", round_index, vertex) for vertex in self.crashes_at(round_index)
        ]
        fates = self.directed_fates(round_index, len(edge_us))
        if fates is None:
            return events
        crashed_now = {v for v, r in self.crashes.items() if r <= round_index}
        for kind_code, kind in ((_DROP, "drop"), (_DELAY, "delay")):
            for direction in np.flatnonzero(fates == kind_code).tolist():
                slot, reverse = divmod(direction, 2)
                if reverse:
                    source, target = int(edge_vs[slot]), int(edge_us[slot])
                else:
                    source, target = int(edge_us[slot]), int(edge_vs[slot])
                if source in crashed_now or target in crashed_now:
                    continue
                events.append((kind, round_index, source, target))
        return events

    def crashed_within(self, rounds_executed: int) -> Tuple[int, ...]:
        """Vertices that crashed during the execution (for the trace), sorted."""
        return self.crashed_by(rounds_executed)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"FaultSchedule(crashes={self.crashes!r}, drop_rate={self.drop_rate}, "
            f"delay_rate={self.delay_rate}, seed={self.seed})"
        )
