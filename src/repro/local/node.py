"""Per-node runtime state used while executing a distributed algorithm.

A :class:`NodeRuntime` is the object handed to algorithm callbacks.  It
exposes the *local* knowledge a node legitimately has in the LOCAL model:

* its own vertex index (for bookkeeping only), unique identifier, degree and
  the vertex indices of its neighbours (a stand-in for communication ports),
* its private randomness (:attr:`rng`),
* its mutable local state (:attr:`state`),
* the commit interface (:meth:`commit`, :meth:`commit_edge`) used to fix
  outputs — the runner records the round of each commit, which is exactly the
  per-node / per-edge computation time ``T_v`` / ``T_e`` of the paper,
* :meth:`halt` to stop participating.

Algorithms must not reach through a node into the global network topology;
everything they learn beyond the initial local knowledge must arrive through
messages.  (The simulator does not police this — it is a convention, as usual
for LOCAL-model simulators — but the provided algorithms follow it.)
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.local.network import Network

__all__ = ["NodeRuntime", "CommitError"]


class CommitError(RuntimeError):
    """Raised when an algorithm commits an output twice with conflicting values."""


class NodeRuntime:
    """Mutable execution state of a single node.

    Instances are created by the runner; algorithm code only consumes them.
    """

    __slots__ = (
        "vertex",
        "identifier",
        "degree",
        "neighbors",
        "rng",
        "state",
        "_halted",
        "_crashed",
        "_output",
        "_output_round",
        "_edge_outputs",
        "_edge_output_rounds",
        "_current_round",
        "_neighbor_set",
        "_observer",
        "_coro_program",
        "_coro_outbox",
    )

    def __init__(
        self,
        vertex: int,
        identifier: int,
        neighbors: Tuple[int, ...],
        rng: random.Random,
        observer: Optional[Any] = None,
    ) -> None:
        self.vertex = vertex
        self.identifier = identifier
        self.neighbors = neighbors
        self.degree = len(neighbors)
        self.rng = rng
        self.state: Dict[str, Any] = {}
        self._halted = False
        self._crashed = False
        self._output: Any = None
        self._output_round: Optional[int] = None
        self._edge_outputs: Dict[int, Any] = {}
        self._edge_output_rounds: Dict[int, int] = {}
        self._current_round = 0
        # Membership tests against a short tuple beat building a frozenset;
        # only high-degree nodes get a real set.
        self._neighbor_set = neighbors if len(neighbors) <= 8 else frozenset(neighbors)
        # The runner's completion tracker; notified on first commits and on
        # halting so that execution-complete checks are O(1) per event
        # instead of a full graph scan per round.
        self._observer = observer
        # Slots used by CoroutineAlgorithm (faster than state-dict entries).
        self._coro_program: Any = None
        self._coro_outbox: Any = None

    # ------------------------------------------------------------------ #
    # Output commitment
    # ------------------------------------------------------------------ #

    def commit(self, value: Any) -> None:
        """Commit this node's output.

        The first commit fixes the value and records the current round as the
        node's computation time.  Re-committing the same value is a no-op;
        committing a different value raises :class:`CommitError` because a
        committed output is, by definition, final.
        """
        if self._output_round is not None:
            if self._output != value:
                raise CommitError(
                    f"node {self.vertex} recommitted output {value!r} "
                    f"(already committed {self._output!r} in round {self._output_round})"
                )
            return
        self._output = value
        self._output_round = self._current_round
        if self._observer is not None:
            self._observer.node_committed(self.vertex)

    def commit_edge(self, neighbor: int, value: Any) -> None:
        """Commit the output of the edge towards ``neighbor``.

        Edge outputs (e.g. matching membership, orientations, edge colours)
        may be committed by either endpoint; the runner cross-checks that the
        two endpoints never commit conflicting values.
        """
        if neighbor not in self._edge_outputs:
            self._edge_outputs[neighbor] = value
            self._edge_output_rounds[neighbor] = self._current_round
            if self._observer is not None:
                self._observer.edge_committed(self.vertex, neighbor)
            return
        if self._edge_outputs[neighbor] != value:
            raise CommitError(
                f"node {self.vertex} recommitted edge ({self.vertex}, {neighbor}) output "
                f"{value!r} (already committed {self._edge_outputs[neighbor]!r})"
            )

    def revoke(self) -> None:
        """Withdraw this node's committed output (self-stabilisation only).

        Ordinary algorithms treat commits as final; a self-stabilising
        algorithm reacting to a crashed neighbour may revoke its own output
        and recompute.  A no-op when nothing was committed.
        """
        if self._output_round is None:
            return
        self._output = None
        self._output_round = None
        if self._observer is not None:
            self._observer.node_revoked(self.vertex)

    def revoke_edge(self, neighbor: int) -> None:
        """Withdraw this node's commit for the edge towards ``neighbor``.

        Only removes *this endpoint's* record; the runner's completion
        tracker decides whether the edge as a whole becomes undecided again
        (it stays decided while the other live endpoint's commit stands).
        A no-op when this node never committed that edge.
        """
        if neighbor not in self._edge_outputs:
            return
        del self._edge_outputs[neighbor]
        del self._edge_output_rounds[neighbor]
        if self._observer is not None:
            self._observer.edge_revoked(self.vertex, neighbor)

    @property
    def has_committed(self) -> bool:
        """Whether this node has committed its own output."""
        return self._output_round is not None

    @property
    def output(self) -> Any:
        """The committed node output (``None`` before any commit)."""
        return self._output

    @property
    def output_round(self) -> Optional[int]:
        """Round at which the node output was committed, if any."""
        return self._output_round

    def edge_output(self, neighbor: int) -> Any:
        """Output committed by this node for the edge towards ``neighbor``."""
        return self._edge_outputs.get(neighbor)

    def has_committed_edge(self, neighbor: int) -> bool:
        """Whether this node committed an output for the edge towards ``neighbor``."""
        return neighbor in self._edge_outputs

    # ------------------------------------------------------------------ #
    # Participation control
    # ------------------------------------------------------------------ #

    def halt(self) -> None:
        """Stop participating: the node sends no further messages."""
        if not self._halted:
            self._halted = True
            if self._observer is not None:
                self._observer.node_halted(self.vertex)

    @property
    def halted(self) -> bool:
        """Whether the node has stopped participating."""
        return self._halted

    @property
    def crashed(self) -> bool:
        """Whether the node was killed by an injected crash-stop fault.

        Set by the runner when a :class:`~repro.local.faults.FaultSchedule`
        crashes the node; a crashed node sends nothing, processes nothing
        and never commits again.
        """
        return self._crashed

    @property
    def round(self) -> int:
        """The current round number (0 during ``init``)."""
        return self._current_round

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"NodeRuntime(vertex={self.vertex}, id={self.identifier}, "
            f"degree={self.degree}, committed={self.has_committed})"
        )
