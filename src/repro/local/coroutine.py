"""Coroutine-style node programs.

Writing a multi-phase LOCAL algorithm as explicit ``send`` / ``receive``
callbacks forces the author to encode a per-node program counter by hand.
:class:`CoroutineAlgorithm` removes that boilerplate: a subclass implements a
single generator method :meth:`CoroutineAlgorithm.run` which *yields* the
messages for the next round and receives the delivered inbox back from the
``yield`` expression::

    class Example(CoroutineAlgorithm):
        def run(self, node):
            inbox = yield {u: node.identifier for u in node.neighbors}
            smallest = min([node.identifier, *inbox.values()])
            node.commit(node.identifier == smallest)

Every ``yield`` corresponds to exactly one synchronous round, so round
counting — and therefore every completion-time stamp — is identical to the
callback style.  Code executed before the first ``yield`` runs in round 0
(initialisation); code executed after the ``t``-th ``yield`` resumes while
processing the messages of round ``t`` and any ``commit`` issued there is
stamped with round ``t``.

Returning from :meth:`run` halts the node (it stops sending messages).  Nodes
that have committed but must keep relaying for others simply keep yielding.

The per-node generator and its pending outbox live in dedicated
:class:`~repro.local.node.NodeRuntime` slots (``_coro_program`` /
``_coro_outbox``) rather than in ``node.state`` — the wrapper sits on the
innermost simulation loop, and slot access is measurably cheaper than a
string-keyed dict lookup per node per round.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from repro.local.algorithm import NodeAlgorithm
from repro.local.node import NodeRuntime

__all__ = ["CoroutineAlgorithm"]

Outbox = Dict[int, Any]
NodeProgram = Generator[Outbox, Dict[int, Any], None]


class CoroutineAlgorithm(NodeAlgorithm):
    """Base class for algorithms written as per-node generators."""

    name = "coroutine-algorithm"

    def run(self, node: NodeRuntime) -> NodeProgram:
        """The per-node program.  Must be a generator; see the module docstring."""
        raise NotImplementedError
        yield {}  # pragma: no cover - makes the abstract method a generator

    # ------------------------------------------------------------------ #
    # NodeAlgorithm plumbing
    # ------------------------------------------------------------------ #

    def init(self, node: NodeRuntime) -> None:
        program = self.run(node)
        node._coro_program = program
        try:
            outbox = next(program)
        except StopIteration:
            node._coro_program = None
            node._coro_outbox = None
            node.halt()
            return
        node._coro_outbox = outbox

    def send(self, node: NodeRuntime) -> Outbox:
        return node._coro_outbox or {}

    def receive(self, node: NodeRuntime, messages: Dict[int, Any]) -> None:
        program = node._coro_program
        if program is None:
            return
        try:
            outbox = program.send(messages or {})
        except StopIteration:
            node._coro_program = None
            node._coro_outbox = None
            node.halt()
            return
        node._coro_outbox = outbox
