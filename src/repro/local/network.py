"""Static network topology for the LOCAL / CONGEST simulator.

A :class:`Network` is an immutable description of the communication graph:
vertices, adjacency, unique identifiers, and a canonical edge indexing.  The
dynamic per-execution state (inboxes, outputs, commit times) lives in
:mod:`repro.local.node` and :mod:`repro.local.runner`; the same
:class:`Network` can therefore be reused across many executions and
algorithms, which is what the experiment harness does.

Vertices are always the integers ``0..n-1``.  Edges are stored as sorted
tuples ``(u, v)`` with ``u < v`` and are also given a dense integer index so
that traces can be stored in arrays.

Two construction families exist, and they are exact equivalents:

* **Tuple path** (:meth:`Network.from_edges`, :meth:`Network.from_edge_list`,
  :meth:`Network.subnetwork`): the adjacency is built in one pass directly
  from a canonical edge list — no networkx object on the hot path — with each
  row stored as a sorted tuple (the representation the per-node simulator
  consumes).  The CSR (compressed sparse row) view — two flat integer arrays
  ``indptr`` (length ``n + 1``) and ``indices`` (length ``2m``) such that the
  neighbours of ``v`` are ``indices[indptr[v]:indptr[v + 1]]`` — is derived
  lazily on first access so the topology is not stored twice.
* **Array path** (:meth:`Network.from_endpoint_arrays`,
  :meth:`Network.from_edge_arrays`): endpoints arrive as two flat int64 numpy
  arrays (the :class:`repro.graphs.edgelist.EdgeArrays` interchange) and the
  CSR arrays are built entirely inside numpy — vectorised canonicalisation,
  lexicographic sort, duplicate removal — with **no Python tuple per edge
  anywhere on the path**.  Here the relationship inverts: the CSR arrays are
  the primary storage and the sorted-tuple rows (and the canonical
  tuple-of-pairs :attr:`edges` view) are derived lazily, only if a per-node
  consumer such as the round simulator asks for them.  This is the
  construction path for ``m ≥ 10⁶`` workloads (see the ``kind="build"``
  cells of ``BENCH_core.json``).

Both paths produce indistinguishable networks for the same topology and
identifiers — identical rows, edge order, CSR arrays, and therefore
seed-for-seed identical execution traces (asserted by
``benchmarks/core_perf.py``).  Degree statistics (``max_degree``,
``min_degree``) and the identifier bit length are computed once at
construction time on either path.
"""

from __future__ import annotations

import random
from array import array
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.local import ids as ids_module

__all__ = ["Network", "canonical_edge"]


def canonical_edge(u: int, v: int) -> Tuple[int, int]:
    """Return the canonical (sorted) representation of the undirected edge ``{u, v}``."""
    if u == v:
        raise ValueError(f"self-loops are not supported in the LOCAL simulator: ({u}, {v})")
    return (u, v) if u < v else (v, u)


def _as_int64(values, name: str) -> np.ndarray:
    """Coerce an endpoint array to int64, refusing lossy (float) casts."""
    array = np.asarray(values)
    if array.dtype != np.int64:
        # Empty inputs default to float64 under asarray; nothing to lose.
        if array.size and not np.issubdtype(array.dtype, np.integer):
            raise ValueError(
                f"{name} must be an integer array, got dtype {array.dtype}"
            )
        array = array.astype(np.int64)
    return array


def _scheme_identifiers(
    n: int, id_scheme: str, rng: Optional[random.Random]
) -> Mapping[int, int]:
    """Identifiers for vertices ``0..n-1`` under a named ID scheme."""
    vertices = list(range(n))
    if id_scheme == "sequential":
        return ids_module.sequential_ids(vertices)
    if id_scheme == "random":
        return ids_module.random_ids(vertices, rng or random.Random(0))
    if id_scheme == "permuted":
        return ids_module.permuted_ids(vertices, rng or random.Random(0))
    if id_scheme == "adversarial":
        return ids_module.adversarial_interval_ids(vertices)
    raise ValueError(f"unknown id scheme: {id_scheme!r}")


class Network:
    """Immutable communication graph with identifiers.

    Args:
        graph: an undirected :class:`networkx.Graph` whose nodes are hashable.
            Nodes are relabelled to ``0..n-1`` internally (in sorted order of
            the original labels when possible, insertion order otherwise).
        identifiers: optional mapping from *internal vertex index* to unique
            identifier.  When omitted, sequential identifiers are used.

    Attributes:
        n: number of vertices.
        m: number of edges.
    """

    def __init__(
        self,
        graph: nx.Graph,
        identifiers: Optional[Mapping[int, int]] = None,
    ) -> None:
        if graph.is_directed():
            raise ValueError("Network requires an undirected graph")

        original_nodes = list(graph.nodes())
        try:
            original_nodes = sorted(original_nodes)
        except TypeError:
            pass
        n = len(original_nodes)

        if original_nodes == list(range(n)):
            # Fast path: the graph is already on 0..n-1, no relabelling map.
            edges = [(u, v) if u < v else (v, u) for u, v in graph.edges()]
        else:
            index_of = {label: i for i, label in enumerate(original_nodes)}
            edges = []
            for u_label, v_label in graph.edges():
                u, v = index_of[u_label], index_of[v_label]
                edges.append((u, v) if u < v else (v, u))
        if any(u == v for u, v in edges):
            raise ValueError("Network does not support self-loops")
        self._init_from_canonical(n, edges, identifiers, original_nodes)

    # ------------------------------------------------------------------ #
    # Core construction (CSR build)
    # ------------------------------------------------------------------ #

    def _init_from_canonical(
        self,
        n: int,
        edges: List[Tuple[int, int]],
        identifiers: Optional[Mapping[int, int]],
        original_labels: Optional[List],
    ) -> None:
        """Initialise from canonical ``(u, v), u < v`` edges on ``0..n-1``.

        ``edges`` may contain duplicates; they are removed.  Self-loops must
        already have been rejected by the caller.  ``original_labels`` may be
        ``None`` when the vertices were never relabelled (labels are then the
        identity, stored implicitly).
        """
        self._original_labels: Optional[List] = original_labels
        self.n = n
        # Deduplicate parallel edges (networkx Graph already does, but be safe).
        edges = sorted(set(edges))
        self._edges_cache: Optional[Tuple[Tuple[int, int], ...]] = tuple(edges)
        # The edge → dense-index maps are built lazily: node-labelling
        # workloads never consult them.
        self._edge_index: Optional[Dict[Tuple[int, int], int]] = None
        self._packed_index: Optional[Dict[int, int]] = None
        self.m: int = len(edges)

        # One-pass adjacency build.  Because the deduplicated edge list is
        # sorted lexicographically, every row comes out sorted ascending: row
        # u first receives the lower endpoints w < u (from edges (w, u),
        # which sort before any (u, ·)) in increasing w, then the upper
        # endpoints v > u in increasing v.  Rows are stored as tuples (the
        # per-node hot-path representation handed to NodeRuntime); the flat
        # CSR views are derived lazily so the adjacency is not held twice.
        rows: List[List[int]] = [[] for _ in range(n)]
        for u, v in edges:
            rows[u].append(v)
            rows[v].append(u)
        self._rows: Optional[List[Tuple[int, ...]]] = [tuple(row) for row in rows]
        self._max_degree: int = max((len(row) for row in rows), default=0)
        self._min_degree: int = min((len(row) for row in rows), default=0)
        self._indptr = None
        self._indices = None
        self._edge_us = None
        self._edge_vs = None
        self._nx_export: Optional[nx.Graph] = None
        self._set_identifiers(identifiers)

    def _init_from_endpoint_arrays(
        self,
        n: int,
        src,
        dst,
        identifiers: Optional[Mapping[int, int]],
    ) -> None:
        """Initialise from flat endpoint arrays with a fully vectorised CSR build.

        ``src``/``dst`` are parallel integer arrays (any orientation, possibly
        with duplicate edges); canonicalisation, lexicographic sorting and
        duplicate removal all happen inside numpy.  No per-edge Python object
        is created: the sorted-tuple rows and the canonical tuple-of-pairs
        edge view become lazy derivations of the CSR arrays
        (:attr:`_adjacency`, :attr:`edges`).
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        self._original_labels = None
        self.n = n
        src = _as_int64(src, "src").ravel()
        dst = _as_int64(dst, "dst").ravel()
        if src.shape != dst.shape:
            raise ValueError(
                f"src and dst must have equal length, got {src.size} and {dst.size}"
            )
        if src.size:
            lo = min(int(src.min()), int(dst.min()))
            hi = max(int(src.max()), int(dst.max()))
            if lo < 0 or hi >= n:
                raise ValueError("edge list refers to vertices outside 0..n-1")
            loops = src == dst
            if loops.any():
                offender = int(src[int(np.argmax(loops))])
                canonical_edge(offender, offender)  # raises the canonical error

        # Canonicalise (u < v), sort lexicographically, drop duplicates — the
        # vectorised equivalent of ``sorted(set(canonical_edges))``.  Pairs
        # are packed into single int64 keys ``u * n + v`` so both the edge
        # sort and the symmetric row sort are plain ``np.sort`` calls on one
        # flat key array (several times faster than the two-key ``lexsort``);
        # the packing needs ``n² < 2⁶³``, so astronomically large vertex
        # counts fall back to the lexsort formulation.
        us = np.minimum(src, dst)
        vs = np.maximum(src, dst)
        if n < 3_000_000_000:
            key = np.sort(us * n + vs)
            if key.size:
                keep = np.empty(key.size, dtype=bool)
                keep[0] = True
                np.not_equal(key[1:], key[:-1], out=keep[1:])
                key = key[keep]
            us = key // n
            vs = key % n
            # Doubled keys (owner * n + neighbour), sorted: rows come out in
            # vertex order with each row ascending — exactly the row order
            # the tuple-path build produces.
            sym = np.concatenate((key, vs * n + us))
            sym.sort()
            heads = sym // n
            indices = sym % n
        else:  # pragma: no cover - needs n ≥ 3·10⁹ to exercise
            order = np.lexsort((vs, us))
            us = us[order]
            vs = vs[order]
            if us.size:
                keep = np.empty(us.size, dtype=bool)
                keep[0] = True
                np.logical_or(us[1:] != us[:-1], vs[1:] != vs[:-1], out=keep[1:])
                us = np.ascontiguousarray(us[keep])
                vs = np.ascontiguousarray(vs[keep])
            heads = np.concatenate((us, vs))
            tails = np.concatenate((vs, us))
            sym = np.lexsort((tails, heads))
            heads = heads[sym]
            indices = np.ascontiguousarray(tails[sym])
        self.m = int(us.size)
        counts = np.bincount(heads, minlength=n).astype(np.int64, copy=False)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        for frozen in (us, vs, indices, indptr):
            frozen.setflags(write=False)

        self._edges_cache = None
        self._edge_index = None
        self._packed_index = None
        self._rows = None
        self._indptr = indptr
        self._indices = indices
        self._edge_us = us
        self._edge_vs = vs
        self._nx_export = None
        self._max_degree = int(counts.max()) if n else 0
        self._min_degree = int(counts.min()) if n else 0
        self._set_identifiers(identifiers)

    def _set_identifiers(self, identifiers: Optional[Mapping[int, int]]) -> None:
        n = self.n
        if identifiers is None:
            # Sequential identifiers, materialised without the mapping round
            # trip (identical to ``sequential_ids(range(n))``).
            self._ids: Tuple[int, ...] = tuple(range(n))
            self._id_bits: int = (n - 1).bit_length() if n > 0 else 0
            return
        ids_module.validate_ids(identifiers, range(n))
        self._ids = tuple(identifiers[v] for v in range(n))
        self._id_bits = max((int(i).bit_length() for i in self._ids), default=0)

    @classmethod
    def _from_canonical(
        cls,
        n: int,
        edges: List[Tuple[int, int]],
        identifiers: Optional[Mapping[int, int]] = None,
    ) -> "Network":
        """Build directly from canonical edges, bypassing networkx entirely."""
        net = cls.__new__(cls)
        net._init_from_canonical(n, edges, identifiers, None)
        return net

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_graph(
        cls,
        graph: nx.Graph,
        id_scheme: str = "sequential",
        rng: Optional[random.Random] = None,
    ) -> "Network":
        """Build a network from a networkx graph with a named ID scheme.

        Args:
            graph: the topology.
            id_scheme: one of ``"sequential"``, ``"random"``, ``"permuted"``,
                ``"adversarial"``.
            rng: randomness source, required for the randomized schemes.
        """
        identifiers = _scheme_identifiers(graph.number_of_nodes(), id_scheme, rng)
        return cls(graph, identifiers)

    @classmethod
    def from_edge_list(
        cls,
        n: int,
        edges: Iterable[Tuple[int, int]],
        id_scheme: str = "sequential",
        rng: Optional[random.Random] = None,
    ) -> "Network":
        """Build a network straight from an edge list with a named ID scheme.

        The edge-list twin of :meth:`from_graph`: given the same topology and
        ``rng`` state it produces an identical network, but never touches
        networkx — the construction path for ``n ≥ 10⁵`` workloads fed by the
        direct generators in :mod:`repro.graphs.generators`.
        """
        identifiers = _scheme_identifiers(n, id_scheme, rng)
        return cls.from_edges(n, edges, identifiers)

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[Tuple[int, int]],
        identifiers: Optional[Mapping[int, int]] = None,
    ) -> "Network":
        """Build a network on vertices ``0..n-1`` from an edge list.

        This constructor never materialises a networkx graph: the CSR arrays
        are built straight from the edge list, which makes it the cheapest way
        to stand up large workloads.
        """
        canonical: List[Tuple[int, int]] = []
        append = canonical.append
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError("edge list refers to vertices outside 0..n-1")
            if u < v:
                append((u, v))
            elif v < u:
                append((v, u))
            else:
                canonical_edge(u, v)  # raises the canonical self-loop error
        return cls._from_canonical(n, canonical, identifiers)

    @classmethod
    def from_endpoint_arrays(
        cls,
        n: int,
        src,
        dst,
        identifiers: Optional[Mapping[int, int]] = None,
        *,
        id_scheme: Optional[str] = None,
        rng: Optional[random.Random] = None,
    ) -> "Network":
        """Build a network from flat endpoint arrays — the numpy CSR fast path.

        The array twin of :meth:`from_edges`: ``src``/``dst`` are parallel
        integer arrays (numpy arrays, or anything ``np.asarray`` accepts) such
        that edge ``i`` is ``{src[i], dst[i]}``.  Endpoint order is free and
        duplicate edges are removed; self-loops raise.  The CSR arrays are
        built entirely inside numpy — no Python tuple per edge — which makes
        this the cheapest way to stand up ``m ≥ 10⁶`` workloads (the
        ``kind="build"`` cells of ``BENCH_core.json`` record the speedup over
        the tuple-row build).  The sorted-tuple rows and the canonical
        :attr:`edges` view are derived lazily, so networks that are only ever
        consumed through the flat views never materialise them.

        Identifiers may be given either as an explicit mapping (as in
        :meth:`from_edges`) or via ``id_scheme``/``rng`` (as in
        :meth:`from_edge_list`); passing both is an error.  Given the same
        topology and identifiers, the resulting network is indistinguishable
        from its tuple-path twin — same rows, edge order, CSR arrays, and
        therefore seed-for-seed identical traces.
        """
        if id_scheme is not None:
            if identifiers is not None:
                raise ValueError("pass either identifiers or id_scheme, not both")
            if id_scheme != "sequential":  # sequential is the fast default below
                identifiers = _scheme_identifiers(n, id_scheme, rng)
        net = cls.__new__(cls)
        net._init_from_endpoint_arrays(n, src, dst, identifiers)
        return net

    @classmethod
    def _from_csr_arrays(
        cls,
        n: int,
        m: int,
        indptr,
        indices,
        edge_us,
        edge_vs,
        ids,
        max_degree: int,
        min_degree: int,
    ) -> "Network":
        """Reassemble a network from externally held CSR arrays — zero copy.

        Trusted constructor for the shared-memory sweep path: the arrays must
        be exactly an existing network's :attr:`indptr` / :attr:`indices` /
        :meth:`edge_endpoints` / :attr:`identifiers` views, typically
        re-attached across a process boundary.  No validation, sorting, or
        copying happens here — the arrays are adopted as-is, so they may be
        (read-only) views into a ``multiprocessing.shared_memory`` buffer
        that outlives the constructed network.
        """
        net = cls.__new__(cls)
        net._original_labels = None
        net.n = int(n)
        net.m = int(m)
        net._edges_cache = None
        net._edge_index = None
        net._packed_index = None
        net._rows = None
        net._indptr = indptr
        net._indices = indices
        net._edge_us = edge_us
        net._edge_vs = edge_vs
        net._nx_export = None
        net._max_degree = int(max_degree)
        net._min_degree = int(min_degree)
        net._ids = tuple(int(i) for i in ids)
        net._id_bits = max((int(i).bit_length() for i in net._ids), default=0)
        return net

    @classmethod
    def from_edge_arrays(
        cls,
        edge_arrays,
        id_scheme: str = "sequential",
        rng: Optional[random.Random] = None,
    ) -> "Network":
        """Build a network from an :class:`~repro.graphs.edgelist.EdgeArrays`.

        The array twin of :meth:`from_edge_list`: accepts any object exposing
        ``n``/``src``/``dst`` (duck-typed so this module needs no import from
        :mod:`repro.graphs`) and applies a named ID scheme.  Given the same
        topology and ``rng`` state it produces a network identical to the
        tuple-path constructors.
        """
        return cls.from_endpoint_arrays(
            edge_arrays.n,
            edge_arrays.src,
            edge_arrays.dst,
            id_scheme=id_scheme,
            rng=rng,
        )

    # ------------------------------------------------------------------ #
    # Topology accessors
    # ------------------------------------------------------------------ #

    @property
    def _adjacency(self) -> List[Tuple[int, ...]]:
        """Per-vertex sorted neighbour tuples (the simulator's representation).

        Eager on the tuple construction path; derived lazily from the CSR
        arrays on the array path, the first time a per-node consumer (the
        round simulator, :meth:`subnetwork`) asks for it.
        """
        rows = self._rows
        if rows is None:
            flat = self._indices.tolist()
            bounds = self._indptr.tolist()
            rows = self._rows = [
                tuple(flat[bounds[v] : bounds[v + 1]]) for v in range(self.n)
            ]
        return rows

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Neighbours of vertex ``v`` (sorted tuple of vertex indices)."""
        return self._adjacency[v]

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return len(self._adjacency[v])

    def max_degree(self) -> int:
        """Maximum degree Δ of the network (0 for the empty graph); cached."""
        return self._max_degree

    def min_degree(self) -> int:
        """Minimum degree of the network (0 for the empty graph); cached."""
        return self._min_degree

    def _build_csr(self) -> None:
        indptr = array("q", bytes(8 * (self.n + 1)))
        total = 0
        for v, row in enumerate(self._adjacency):
            indptr[v] = total
            total += len(row)
        indptr[self.n] = total
        indices = array("q", bytes(8 * total))
        position = 0
        for row in self._adjacency:
            indices[position : position + len(row)] = array("q", row)
            position += len(row)
        self._indptr = indptr
        self._indices = indices

    @property
    def indptr(self):
        """CSR row pointers: neighbours of ``v`` are ``indices[indptr[v]:indptr[v+1]]``.

        An int64 flat array — ``array('q')`` when derived lazily from the
        tuple-path adjacency, a read-only numpy array when the network was
        built on the array path (both support indexing, slicing, and the
        buffer protocol identically).  Intended for vectorised consumers that
        want the topology as flat arrays.
        """
        if self._indptr is None:
            self._build_csr()
        return self._indptr

    @property
    def indices(self):
        """CSR flat neighbour array (each row sorted ascending); see :attr:`indptr`."""
        if self._indices is None:
            self._build_csr()
        return self._indices

    def edge_endpoints(self):
        """Endpoint arrays ``(us, vs)`` of the canonical edge list (lazy).

        Two int64 numpy arrays of length ``m`` such that edge slot ``i`` is
        ``(us[i], vs[i])`` with ``us[i] < vs[i]`` — the vectorised twin of
        :attr:`edges`, consumed by the numpy measurement path.  Primary
        storage on the array construction path; on the tuple path they are
        derived from the CSR views: because every row is sorted ascending and
        rows are visited in vertex order, keeping only the
        ``neighbour > vertex`` half reproduces the lexicographic canonical
        edge order exactly.
        """
        if self._edge_us is None:
            indptr = np.frombuffer(self.indptr, dtype=np.int64)
            indices = np.frombuffer(self.indices, dtype=np.int64)
            owners = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(indptr))
            upper = indices > owners
            us = owners[upper]
            vs = indices[upper]
            us.setflags(write=False)
            vs.setflags(write=False)
            self._edge_us = us
            self._edge_vs = vs
        return self._edge_us, self._edge_vs

    @property
    def vertices(self) -> range:
        """All vertex indices."""
        return range(self.n)

    @property
    def edges(self) -> Tuple[Tuple[int, int], ...]:
        """All edges as canonical ``(u, v)`` tuples with ``u < v``.

        Eager on the tuple construction path; on the array path it is derived
        lazily from the endpoint arrays (same lexicographic order), so flat
        array consumers never pay for the per-edge tuples.
        """
        cached = self._edges_cache
        if cached is None:
            us, vs = self._edge_us, self._edge_vs
            cached = self._edges_cache = tuple(zip(us.tolist(), vs.tolist()))
        return cached

    def _edge_index_map(self) -> Dict[Tuple[int, int], int]:
        """Canonical edge → dense index mapping (built on first use).

        Kept for tuple-keyed callers; the hot paths (the runner's completion
        tracker and trace collection) use :meth:`_packed_edge_index` instead,
        which never materialises a tuple per edge.
        """
        index = self._edge_index
        if index is None:
            index = self._edge_index = {e: i for i, e in enumerate(self.edges)}
        return index

    def _packed_edge_index(self) -> Dict[int, int]:
        """Packed-key edge → dense index mapping: ``u * n + v ↦ slot``.

        The int-keyed twin of :meth:`_edge_index_map`, built straight from
        the flat :meth:`edge_endpoints` arrays — no tuple per edge anywhere,
        so array-built networks can resolve edge slots without materialising
        their lazy :attr:`edges` view.  Keys are ``u * n + v`` for canonical
        ``u < v`` (the same packing the vectorised CSR build sorts on).
        """
        index = self._packed_index
        if index is None:
            us, vs = self.edge_endpoints()
            if self.n < 3_000_000_000:
                keys = (np.asarray(us) * self.n + np.asarray(vs)).tolist()
            else:  # pragma: no cover - needs n ≥ 3·10⁹ to exercise
                # The int64 multiply would wrap exactly where the CSR build
                # falls back to lexsort; Python ints never overflow.
                n = self.n
                keys = [u * n + v for u, v in zip(us.tolist(), vs.tolist())]
            index = self._packed_index = dict(zip(keys, range(self.m)))
        return index

    def edge_index(self, u: int, v: int) -> int:
        """Dense index of the edge ``{u, v}``; raises ``KeyError`` if absent."""
        u, v = canonical_edge(u, v)
        # Out-of-range endpoints must not alias another row's packed key.
        if u < 0 or v >= self.n:
            raise KeyError((u, v))
        index = self._packed_edge_index().get(u * self.n + v)
        if index is None:
            raise KeyError((u, v))
        return index

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge of the network."""
        if u == v:
            return False
        u, v = canonical_edge(u, v)
        if u < 0 or v >= self.n:
            return False
        return u * self.n + v in self._packed_edge_index()

    def incident_edges(self, v: int) -> List[Tuple[int, int]]:
        """Canonical edges incident to vertex ``v``."""
        return [(v, u) if v < u else (u, v) for u in self._adjacency[v]]

    def incident_edge_indices(self, v: int) -> List[int]:
        """Dense indices of the edges incident to vertex ``v``."""
        edge_index = self._packed_edge_index()
        n = self.n
        return [
            edge_index[(v * n + u) if v < u else (u * n + v)]
            for u in self._adjacency[v]
        ]

    # ------------------------------------------------------------------ #
    # Identifiers
    # ------------------------------------------------------------------ #

    def identifier(self, v: int) -> int:
        """Unique identifier of vertex ``v``."""
        return self._ids[v]

    @property
    def identifiers(self) -> Tuple[int, ...]:
        """Identifiers indexed by vertex."""
        return self._ids

    def with_identifiers(self, identifiers: Mapping[int, int]) -> "Network":
        """Return a copy of this network with different identifiers."""
        if self._edge_us is not None:
            return Network.from_endpoint_arrays(
                self.n, self._edge_us, self._edge_vs, identifiers
            )
        return Network._from_canonical(self.n, list(self.edges), identifiers)

    def id_bit_length(self) -> int:
        """Bits needed for the largest identifier; cached."""
        return self._id_bits

    # ------------------------------------------------------------------ #
    # Conversions & misc
    # ------------------------------------------------------------------ #

    def to_networkx(self) -> nx.Graph:
        """Export the topology (on vertices ``0..n-1``) as a networkx graph.

        Networks are immutable, so the export is built once and cached —
        repeated legacy callers stop paying O(n + m) per call.  Treat the
        returned graph as **read-only**; mutating it corrupts the shared
        cache (copy it first if you need a scratch graph).
        """
        if self._nx_export is None:
            g = nx.Graph()
            g.add_nodes_from(range(self.n))
            g.add_edges_from(self.edges)
            self._nx_export = g
        return self._nx_export

    def original_label(self, v: int) -> object:
        """The label the vertex had in the graph the network was built from.

        Networks built straight from edge lists or endpoint arrays were never
        relabelled, so the label is the vertex index itself.
        """
        if self._original_labels is None:
            if not 0 <= v < self.n:
                raise IndexError(f"vertex {v} outside 0..{self.n - 1}")
            return v
        return self._original_labels[v]

    def subnetwork(self, vertices: Sequence[int]) -> "Network":
        """Induced sub-network on ``vertices`` (re-indexed to ``0..k-1``).

        Identifiers are preserved, which keeps the sub-network a legitimate
        LOCAL-model input.  Cost is O(sum of degrees of the kept vertices),
        not O(m): only the adjacency rows of the kept vertices are scanned —
        on array-built networks by slicing the CSR arrays directly (the lazy
        sorted-tuple rows stay unmaterialised), on tuple-built networks over
        the eager rows.
        """
        vertex_list = sorted(set(vertices))
        if self._rows is None:
            return self._subnetwork_csr(vertex_list)
        index = {v: i for i, v in enumerate(vertex_list)}
        edges: List[Tuple[int, int]] = []
        for v in vertex_list:
            iv = index[v]
            for u in self._adjacency[v]:
                # vertex_list is sorted, so v < u implies index[v] < index[u].
                if u > v:
                    iu = index.get(u)
                    if iu is not None:
                        edges.append((iv, iu))
        identifiers = {index[v]: self._ids[v] for v in vertex_list}
        return Network._from_canonical(len(vertex_list), edges, identifiers)

    def _subnetwork_csr(self, vertex_list: List[int]) -> "Network":
        """Array-path :meth:`subnetwork`: slice the kept rows out of the CSR.

        Gathers only the CSR segments of the kept vertices (O(sum of kept
        degrees)), keeps the neighbours that are themselves kept, re-indexes
        vectorised, and rebuilds through the numpy CSR constructor — no
        per-node tuple row and no per-edge tuple anywhere.
        """
        kept = np.asarray(vertex_list, dtype=np.int64)
        k = int(kept.size)
        if not k:
            return Network.from_endpoint_arrays(0, kept, kept, {})
        if kept[0] < 0 or kept[-1] >= self.n:
            raise IndexError("subnetwork vertices outside 0..n-1")
        indptr = np.asarray(self.indptr)
        indices = np.asarray(self.indices)
        starts = indptr[kept]
        lengths = indptr[kept + 1] - starts
        total = int(lengths.sum())
        # Vectorised multi-arange: positions of the kept rows' CSR segments.
        positions = (
            np.repeat(starts - np.cumsum(lengths) + lengths, lengths)
            + np.arange(total, dtype=np.int64)
        )
        owners = np.repeat(kept, lengths)
        neighbors = indices[positions]
        new_index = np.full(self.n, -1, dtype=np.int64)
        new_index[kept] = np.arange(k, dtype=np.int64)
        # Keep each induced edge once (owner < neighbour) with both ends kept.
        keep_edge = (neighbors > owners) & (new_index[neighbors] >= 0)
        src = new_index[owners[keep_edge]]
        dst = new_index[neighbors[keep_edge]]
        ids = self._ids
        identifiers = {i: ids[v] for i, v in enumerate(vertex_list)}
        return Network.from_endpoint_arrays(k, src, dst, identifiers)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Network(n={self.n}, m={self.m}, max_degree={self.max_degree()})"
