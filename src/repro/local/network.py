"""Static network topology for the LOCAL / CONGEST simulator.

A :class:`Network` is an immutable description of the communication graph:
vertices, adjacency, unique identifiers, and a canonical edge indexing.  The
dynamic per-execution state (inboxes, outputs, commit times) lives in
:mod:`repro.local.node` and :mod:`repro.local.runner`; the same
:class:`Network` can therefore be reused across many executions and
algorithms, which is what the experiment harness does.

Vertices are always the integers ``0..n-1``.  Edges are stored as sorted
tuples ``(u, v)`` with ``u < v`` and are also given a dense integer index so
that traces can be stored in arrays.

The adjacency is built in one pass directly from the canonical edge list —
no networkx object is required on the construction hot path
(:meth:`Network.from_edges`, :meth:`Network.subnetwork`) — with each row
stored as a sorted tuple (the representation the per-node simulator hot path
consumes).  A CSR (compressed sparse row) view is available as two flat
integer arrays ``indptr`` (length ``n + 1``) and ``indices`` (length ``2m``)
such that the neighbours of ``v`` are ``indices[indptr[v]:indptr[v + 1]]``;
it is derived lazily on first access so the topology is not stored twice.
Degree statistics (``max_degree``, ``min_degree``) and the identifier bit
length are computed once at construction time.
"""

from __future__ import annotations

import random
from array import array
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.local import ids as ids_module

__all__ = ["Network", "canonical_edge"]


def canonical_edge(u: int, v: int) -> Tuple[int, int]:
    """Return the canonical (sorted) representation of the undirected edge ``{u, v}``."""
    if u == v:
        raise ValueError(f"self-loops are not supported in the LOCAL simulator: ({u}, {v})")
    return (u, v) if u < v else (v, u)


def _scheme_identifiers(
    n: int, id_scheme: str, rng: Optional[random.Random]
) -> Mapping[int, int]:
    """Identifiers for vertices ``0..n-1`` under a named ID scheme."""
    vertices = list(range(n))
    if id_scheme == "sequential":
        return ids_module.sequential_ids(vertices)
    if id_scheme == "random":
        return ids_module.random_ids(vertices, rng or random.Random(0))
    if id_scheme == "permuted":
        return ids_module.permuted_ids(vertices, rng or random.Random(0))
    if id_scheme == "adversarial":
        return ids_module.adversarial_interval_ids(vertices)
    raise ValueError(f"unknown id scheme: {id_scheme!r}")


class Network:
    """Immutable communication graph with identifiers.

    Args:
        graph: an undirected :class:`networkx.Graph` whose nodes are hashable.
            Nodes are relabelled to ``0..n-1`` internally (in sorted order of
            the original labels when possible, insertion order otherwise).
        identifiers: optional mapping from *internal vertex index* to unique
            identifier.  When omitted, sequential identifiers are used.

    Attributes:
        n: number of vertices.
        m: number of edges.
    """

    def __init__(
        self,
        graph: nx.Graph,
        identifiers: Optional[Mapping[int, int]] = None,
    ) -> None:
        if graph.is_directed():
            raise ValueError("Network requires an undirected graph")

        original_nodes = list(graph.nodes())
        try:
            original_nodes = sorted(original_nodes)
        except TypeError:
            pass
        n = len(original_nodes)

        if original_nodes == list(range(n)):
            # Fast path: the graph is already on 0..n-1, no relabelling map.
            edges = [(u, v) if u < v else (v, u) for u, v in graph.edges()]
        else:
            index_of = {label: i for i, label in enumerate(original_nodes)}
            edges = []
            for u_label, v_label in graph.edges():
                u, v = index_of[u_label], index_of[v_label]
                edges.append((u, v) if u < v else (v, u))
        if any(u == v for u, v in edges):
            raise ValueError("Network does not support self-loops")
        self._init_from_canonical(n, edges, identifiers, original_nodes)

    # ------------------------------------------------------------------ #
    # Core construction (CSR build)
    # ------------------------------------------------------------------ #

    def _init_from_canonical(
        self,
        n: int,
        edges: List[Tuple[int, int]],
        identifiers: Optional[Mapping[int, int]],
        original_labels: List,
    ) -> None:
        """Initialise from canonical ``(u, v), u < v`` edges on ``0..n-1``.

        ``edges`` may contain duplicates; they are removed.  Self-loops must
        already have been rejected by the caller.
        """
        self._original_labels: List = original_labels
        self.n = n
        # Deduplicate parallel edges (networkx Graph already does, but be safe).
        edges = sorted(set(edges))
        self._edges: Tuple[Tuple[int, int], ...] = tuple(edges)
        # The edge → dense-index map is built lazily: node-labelling workloads
        # never consult it.
        self._edge_index: Optional[Dict[Tuple[int, int], int]] = None
        self.m: int = len(self._edges)

        # One-pass adjacency build.  Because the deduplicated edge list is
        # sorted lexicographically, every row comes out sorted ascending: row
        # u first receives the lower endpoints w < u (from edges (w, u),
        # which sort before any (u, ·)) in increasing w, then the upper
        # endpoints v > u in increasing v.  Rows are stored as tuples (the
        # per-node hot-path representation handed to NodeRuntime); the flat
        # CSR views are derived lazily so the adjacency is not held twice.
        rows: List[List[int]] = [[] for _ in range(n)]
        for u, v in edges:
            rows[u].append(v)
            rows[v].append(u)
        self._adjacency: List[Tuple[int, ...]] = [tuple(row) for row in rows]
        self._max_degree: int = max((len(row) for row in rows), default=0)
        self._min_degree: int = min((len(row) for row in rows), default=0)
        self._indptr: Optional[array] = None
        self._indices: Optional[array] = None
        self._edge_us = None
        self._edge_vs = None
        self._nx_export: Optional[nx.Graph] = None

        if identifiers is None:
            identifiers = ids_module.sequential_ids(list(range(n)))
        ids_module.validate_ids(identifiers, range(n))
        self._ids: Tuple[int, ...] = tuple(identifiers[v] for v in range(n))
        self._id_bits: int = max((int(i).bit_length() for i in self._ids), default=0)

    @classmethod
    def _from_canonical(
        cls,
        n: int,
        edges: List[Tuple[int, int]],
        identifiers: Optional[Mapping[int, int]] = None,
    ) -> "Network":
        """Build directly from canonical edges, bypassing networkx entirely."""
        net = cls.__new__(cls)
        net._init_from_canonical(n, edges, identifiers, list(range(n)))
        return net

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_graph(
        cls,
        graph: nx.Graph,
        id_scheme: str = "sequential",
        rng: Optional[random.Random] = None,
    ) -> "Network":
        """Build a network from a networkx graph with a named ID scheme.

        Args:
            graph: the topology.
            id_scheme: one of ``"sequential"``, ``"random"``, ``"permuted"``,
                ``"adversarial"``.
            rng: randomness source, required for the randomized schemes.
        """
        identifiers = _scheme_identifiers(graph.number_of_nodes(), id_scheme, rng)
        return cls(graph, identifiers)

    @classmethod
    def from_edge_list(
        cls,
        n: int,
        edges: Iterable[Tuple[int, int]],
        id_scheme: str = "sequential",
        rng: Optional[random.Random] = None,
    ) -> "Network":
        """Build a network straight from an edge list with a named ID scheme.

        The edge-list twin of :meth:`from_graph`: given the same topology and
        ``rng`` state it produces an identical network, but never touches
        networkx — the construction path for ``n ≥ 10⁵`` workloads fed by the
        direct generators in :mod:`repro.graphs.generators`.
        """
        identifiers = _scheme_identifiers(n, id_scheme, rng)
        return cls.from_edges(n, edges, identifiers)

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[Tuple[int, int]],
        identifiers: Optional[Mapping[int, int]] = None,
    ) -> "Network":
        """Build a network on vertices ``0..n-1`` from an edge list.

        This constructor never materialises a networkx graph: the CSR arrays
        are built straight from the edge list, which makes it the cheapest way
        to stand up large workloads.
        """
        canonical: List[Tuple[int, int]] = []
        append = canonical.append
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError("edge list refers to vertices outside 0..n-1")
            if u < v:
                append((u, v))
            elif v < u:
                append((v, u))
            else:
                canonical_edge(u, v)  # raises the canonical self-loop error
        return cls._from_canonical(n, canonical, identifiers)

    # ------------------------------------------------------------------ #
    # Topology accessors
    # ------------------------------------------------------------------ #

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Neighbours of vertex ``v`` (sorted tuple of vertex indices)."""
        return self._adjacency[v]

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return len(self._adjacency[v])

    def max_degree(self) -> int:
        """Maximum degree Δ of the network (0 for the empty graph); cached."""
        return self._max_degree

    def min_degree(self) -> int:
        """Minimum degree of the network (0 for the empty graph); cached."""
        return self._min_degree

    def _build_csr(self) -> None:
        indptr = array("q", bytes(8 * (self.n + 1)))
        total = 0
        for v, row in enumerate(self._adjacency):
            indptr[v] = total
            total += len(row)
        indptr[self.n] = total
        indices = array("q", bytes(8 * total))
        position = 0
        for row in self._adjacency:
            indices[position : position + len(row)] = array("q", row)
            position += len(row)
        self._indptr = indptr
        self._indices = indices

    @property
    def indptr(self) -> array:
        """CSR row pointers: neighbours of ``v`` are ``indices[indptr[v]:indptr[v+1]]``.

        Derived from the adjacency on first access and cached; intended for
        vectorised consumers that want the topology as flat arrays.
        """
        if self._indptr is None:
            self._build_csr()
        return self._indptr

    @property
    def indices(self) -> array:
        """CSR flat neighbour array (each row sorted ascending); see :attr:`indptr`."""
        if self._indices is None:
            self._build_csr()
        return self._indices

    def edge_endpoints(self):
        """Endpoint arrays ``(us, vs)`` of the canonical edge list (lazy).

        Two int64 numpy arrays of length ``m`` such that edge slot ``i`` is
        ``(us[i], vs[i])`` with ``us[i] < vs[i]`` — the vectorised twin of
        :attr:`edges`, consumed by the numpy measurement path.  Derived from
        the CSR views: because every row is sorted ascending and rows are
        visited in vertex order, keeping only the ``neighbour > vertex`` half
        reproduces the lexicographic canonical edge order exactly.
        """
        if self._edge_us is None:
            import numpy as np

            indptr = np.frombuffer(self.indptr, dtype=np.int64)
            indices = np.frombuffer(self.indices, dtype=np.int64)
            owners = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(indptr))
            upper = indices > owners
            us = owners[upper]
            vs = indices[upper]
            us.setflags(write=False)
            vs.setflags(write=False)
            self._edge_us = us
            self._edge_vs = vs
        return self._edge_us, self._edge_vs

    @property
    def vertices(self) -> range:
        """All vertex indices."""
        return range(self.n)

    @property
    def edges(self) -> Tuple[Tuple[int, int], ...]:
        """All edges as canonical ``(u, v)`` tuples with ``u < v``."""
        return self._edges

    def _edge_index_map(self) -> Dict[Tuple[int, int], int]:
        """Canonical edge → dense index mapping (built on first use)."""
        index = self._edge_index
        if index is None:
            index = self._edge_index = {e: i for i, e in enumerate(self._edges)}
        return index

    def edge_index(self, u: int, v: int) -> int:
        """Dense index of the edge ``{u, v}``; raises ``KeyError`` if absent."""
        return self._edge_index_map()[canonical_edge(u, v)]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge of the network."""
        if u == v:
            return False
        return canonical_edge(u, v) in self._edge_index_map()

    def incident_edges(self, v: int) -> List[Tuple[int, int]]:
        """Canonical edges incident to vertex ``v``."""
        return [(v, u) if v < u else (u, v) for u in self._adjacency[v]]

    def incident_edge_indices(self, v: int) -> List[int]:
        """Dense indices of the edges incident to vertex ``v``."""
        edge_index = self._edge_index_map()
        return [
            edge_index[(v, u) if v < u else (u, v)] for u in self._adjacency[v]
        ]

    # ------------------------------------------------------------------ #
    # Identifiers
    # ------------------------------------------------------------------ #

    def identifier(self, v: int) -> int:
        """Unique identifier of vertex ``v``."""
        return self._ids[v]

    @property
    def identifiers(self) -> Tuple[int, ...]:
        """Identifiers indexed by vertex."""
        return self._ids

    def with_identifiers(self, identifiers: Mapping[int, int]) -> "Network":
        """Return a copy of this network with different identifiers."""
        return Network._from_canonical(self.n, list(self._edges), identifiers)

    def id_bit_length(self) -> int:
        """Bits needed for the largest identifier; cached."""
        return self._id_bits

    # ------------------------------------------------------------------ #
    # Conversions & misc
    # ------------------------------------------------------------------ #

    def to_networkx(self) -> nx.Graph:
        """Export the topology (on vertices ``0..n-1``) as a networkx graph.

        Networks are immutable, so the export is built once and cached —
        repeated legacy callers stop paying O(n + m) per call.  Treat the
        returned graph as **read-only**; mutating it corrupts the shared
        cache (copy it first if you need a scratch graph).
        """
        if self._nx_export is None:
            g = nx.Graph()
            g.add_nodes_from(range(self.n))
            g.add_edges_from(self._edges)
            self._nx_export = g
        return self._nx_export

    def original_label(self, v: int) -> object:
        """The label the vertex had in the graph the network was built from."""
        return self._original_labels[v]

    def subnetwork(self, vertices: Sequence[int]) -> "Network":
        """Induced sub-network on ``vertices`` (re-indexed to ``0..k-1``).

        Identifiers are preserved, which keeps the sub-network a legitimate
        LOCAL-model input.  Cost is O(sum of degrees of the kept vertices),
        not O(m): only the adjacency rows of the kept vertices are scanned.
        """
        vertex_list = sorted(set(vertices))
        index = {v: i for i, v in enumerate(vertex_list)}
        edges: List[Tuple[int, int]] = []
        for v in vertex_list:
            iv = index[v]
            for u in self._adjacency[v]:
                # vertex_list is sorted, so v < u implies index[v] < index[u].
                if u > v:
                    iu = index.get(u)
                    if iu is not None:
                        edges.append((iv, iu))
        identifiers = {index[v]: self._ids[v] for v in vertex_list}
        return Network._from_canonical(len(vertex_list), edges, identifiers)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Network(n={self.n}, m={self.m}, max_degree={self.max_degree()})"
