"""Identifier assignment for LOCAL-model networks.

In the LOCAL model every node is equipped with a unique identifier of
``O(log n)`` bits.  Lower bounds (and some algorithms, e.g. Linial's colour
reduction) are sensitive to how these identifiers are chosen, so the
simulator supports several assignment schemes:

* :func:`sequential_ids` — node ``i`` receives identifier ``i`` (the simplest
  scheme, convenient for deterministic tests).
* :func:`random_ids` — identifiers are a uniformly random injection into a
  polynomially sized identifier space.  This is the assumption used by the
  KMW-style lower-bound argument in the paper ("IDs are assigned uniformly at
  random").
* :func:`permuted_ids` — a uniformly random permutation of ``0..n-1``.
* :func:`adversarial_interval_ids` — identifiers chosen from widely separated
  intervals, which is a simple adversarial pattern that maximises the number
  of rounds used by colour-reduction style algorithms.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Sequence

__all__ = [
    "sequential_ids",
    "random_ids",
    "permuted_ids",
    "adversarial_interval_ids",
    "id_bit_length",
    "validate_ids",
]


def sequential_ids(vertices: Sequence[int]) -> Dict[int, int]:
    """Assign identifier ``i`` to the ``i``-th vertex in ``vertices``."""
    return {v: i for i, v in enumerate(vertices)}


def random_ids(
    vertices: Sequence[int],
    rng: random.Random,
    id_space_factor: int = 8,
) -> Dict[int, int]:
    """Assign distinct identifiers drawn uniformly from ``[0, n^2 * factor)``.

    The identifier space is polynomial in ``n`` so that identifiers fit into
    ``O(log n)`` bits, as the LOCAL model requires.

    Args:
        vertices: vertices to label.
        rng: source of randomness.
        id_space_factor: multiplicative slack on the ``n^2`` identifier space.

    Returns:
        Mapping from vertex to identifier.
    """
    n = len(vertices)
    space = max(1, id_space_factor * n * n)
    chosen = rng.sample(range(space), n)
    return {v: ident for v, ident in zip(vertices, chosen)}


def permuted_ids(vertices: Sequence[int], rng: random.Random) -> Dict[int, int]:
    """Assign the identifiers ``0..n-1`` in a uniformly random order."""
    perm: List[int] = list(range(len(vertices)))
    rng.shuffle(perm)
    return {v: perm[i] for i, v in enumerate(vertices)}


def adversarial_interval_ids(
    vertices: Sequence[int],
    gap: int = 1 << 16,
) -> Dict[int, int]:
    """Assign identifiers ``0, gap, 2*gap, ...``.

    Widely spread identifiers are a classic adversarial input for iterated
    colour-reduction algorithms: each reduction step only shaves a logarithm
    off the identifier length, so large identifier values translate into more
    rounds.
    """
    if gap < 1:
        raise ValueError("gap must be a positive integer")
    return {v: i * gap for i, v in enumerate(vertices)}


def id_bit_length(ids: Dict[int, int]) -> int:
    """Number of bits needed to write the largest identifier."""
    if not ids:
        return 0
    return max(int(i).bit_length() for i in ids.values())


def validate_ids(ids: Dict[int, int], vertices: Iterable[int]) -> None:
    """Raise ``ValueError`` unless ``ids`` is an injection defined on ``vertices``.

    Membership is checked with ``in`` (never ``ids[v]``) so mappings with
    default-value semantics cannot fabricate identifiers for missing vertices.
    """
    vertices = list(vertices)
    missing = [v for v in vertices if v not in ids]
    if missing:
        raise ValueError(f"identifiers missing for vertices {missing[:5]}")
    values = [ids[v] for v in vertices]
    if len(set(values)) != len(values):
        raise ValueError("identifiers must be unique")
    if any(val < 0 for val in values):
        raise ValueError("identifiers must be non-negative")
