"""r-hop views of nodes, and view isomorphism tests.

Section 2 of the paper notes that in the LOCAL model an ``r``-round algorithm
is equivalent to one in which every node first collects its complete
``r``-hop neighbourhood and then computes its output from that information;
the node-averaged complexity is therefore the *average radius* to which nodes
must know the graph.  This module provides that neighbourhood-collection
primitive and the notion of (labelled) view isomorphism used by the lower
bound (Theorem 11: nodes of the special clusters ``S(c0)`` and ``S(c1)`` have
indistinguishable ``k``-hop views when those views are tree-like).

Views are *anonymous by default*: two views are isomorphic when there is a
graph isomorphism mapping one centre to the other that preserves the optional
edge labels.  Identifiers are deliberately not part of the view, matching the
lower-bound setting where identifiers are assigned uniformly at random and
hence carry no distinguishing information.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional, Tuple

import networkx as nx
from networkx.algorithms import isomorphism as nx_iso

__all__ = [
    "ego_view",
    "view_is_tree",
    "views_isomorphic",
    "canonical_view_signature",
]

Edge = Tuple[int, int]
EdgeLabeler = Callable[[int, int], Hashable]


def ego_view(graph: nx.Graph, center: int, radius: int) -> nx.Graph:
    """Return the ``radius``-hop view of ``center``.

    The view is the subgraph induced by the nodes at distance at most
    ``radius`` from the centre, **excluding** the edges between two nodes that
    are both at distance exactly ``radius`` (those edges cannot be seen in
    ``radius`` rounds).  The returned graph stores the distance of every node
    from the centre in the node attribute ``dist`` and marks the centre with
    ``center=True``.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    dist = {center: 0}
    frontier = [center]
    for d in range(1, radius + 1):
        nxt = []
        for v in frontier:
            for u in graph.neighbors(v):
                if u not in dist:
                    dist[u] = d
                    nxt.append(u)
        frontier = nxt
    view = nx.Graph()
    for v, d in dist.items():
        view.add_node(v, dist=d, center=(v == center))
    for u, v in graph.edges(dist.keys()):
        if u in dist and v in dist:
            if dist[u] == radius and dist[v] == radius:
                continue
            view.add_edge(u, v)
    return view


def view_is_tree(graph: nx.Graph, center: int, radius: int) -> bool:
    """Whether the ``radius``-hop view of ``center`` contains no cycle."""
    view = ego_view(graph, center, radius)
    return nx.is_forest(view)


def views_isomorphic(
    graph_a: nx.Graph,
    center_a: int,
    graph_b: nx.Graph,
    center_b: int,
    radius: int,
    edge_label_a: Optional[EdgeLabeler] = None,
    edge_label_b: Optional[EdgeLabeler] = None,
) -> bool:
    """Test whether two radius-``radius`` views are isomorphic.

    The isomorphism must map ``center_a`` to ``center_b`` and preserve the
    distance-from-centre layering; when edge labellers are provided it must
    also preserve edge labels (this is how Theorem 11's labelled
    indistinguishability is checked).
    """
    view_a = ego_view(graph_a, center_a, radius)
    view_b = ego_view(graph_b, center_b, radius)
    if view_a.number_of_nodes() != view_b.number_of_nodes():
        return False
    if view_a.number_of_edges() != view_b.number_of_edges():
        return False

    if edge_label_a is not None:
        for u, v in view_a.edges():
            view_a[u][v]["label"] = edge_label_a(u, v)
    if edge_label_b is not None:
        for u, v in view_b.edges():
            view_b[u][v]["label"] = edge_label_b(u, v)

    def node_match(attrs_a: Dict, attrs_b: Dict) -> bool:
        if attrs_a.get("dist") != attrs_b.get("dist"):
            return False
        return attrs_a.get("center", False) == attrs_b.get("center", False)

    def edge_match(attrs_a: Dict, attrs_b: Dict) -> bool:
        return attrs_a.get("label") == attrs_b.get("label")

    matcher = nx_iso.GraphMatcher(
        view_a,
        view_b,
        node_match=node_match,
        edge_match=edge_match if (edge_label_a or edge_label_b) else None,
    )
    return matcher.is_isomorphic()


def canonical_view_signature(
    graph: nx.Graph,
    center: int,
    radius: int,
    edge_label: Optional[EdgeLabeler] = None,
) -> Hashable:
    """A canonical, hashable signature of a *tree-like* radius-``radius`` view.

    Two nodes whose views are trees have equal signatures **iff** their views
    are isomorphic (rooted-tree canonical form with edge labels).  For views
    containing cycles the signature falls back to a coarse invariant (degree
    multiset per layer) which is sound for inequality only.
    """
    view = ego_view(graph, center, radius)
    if nx.is_forest(view):
        return _rooted_tree_signature(view, center, None, edge_label)
    layers: Dict[int, list] = {}
    for v, attrs in view.nodes(data=True):
        layers.setdefault(attrs["dist"], []).append(view.degree(v))
    return ("non-tree",) + tuple(
        (d, tuple(sorted(degrees))) for d, degrees in sorted(layers.items())
    )


def _rooted_tree_signature(
    tree: nx.Graph,
    root: int,
    parent: Optional[int],
    edge_label: Optional[EdgeLabeler],
) -> Hashable:
    children = [u for u in tree.neighbors(root) if u != parent]
    child_sigs = []
    for child in children:
        label = edge_label(root, child) if edge_label is not None else None
        child_sigs.append((label, _rooted_tree_signature(tree, child, root, edge_label)))
    return tuple(sorted(child_sigs, key=repr))
