"""Synchronous LOCAL / CONGEST model simulator."""

from repro.local.algorithm import NodeAlgorithm
from repro.local.coroutine import CoroutineAlgorithm
from repro.local.engine import ArrayAlgorithm, ArrayEngine, ArrayState, ArrayTopology
from repro.local.network import Network, canonical_edge
from repro.local.node import CommitError, NodeRuntime
from repro.local.runner import Runner, RoundLimitExceeded, estimate_message_bits

__all__ = [
    "Network",
    "canonical_edge",
    "NodeAlgorithm",
    "CoroutineAlgorithm",
    "ArrayAlgorithm",
    "ArrayEngine",
    "ArrayState",
    "ArrayTopology",
    "NodeRuntime",
    "CommitError",
    "Runner",
    "RoundLimitExceeded",
    "estimate_message_bits",
]
