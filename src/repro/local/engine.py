"""Vectorised array-native execution engine for the LOCAL-model round loop.

The per-node :class:`~repro.local.runner.Runner` simulates every node as a
Python coroutine: at ``n = 10⁶`` the round loop is ~60 s of a ~65 s pipeline
even after every other phase went array-native.  :class:`ArrayEngine` removes
that last per-node cost for algorithms that implement the
:class:`ArrayAlgorithm` protocol: a round is executed as a handful of numpy
operations over flat per-node/per-edge state arrays and the network's CSR
topology (``indptr``/``indices`` plus the canonical ``edge_endpoints()``
arrays) — no :class:`~repro.local.node.NodeRuntime`, no inbox dicts, no
per-node generator frames.

Relation to the coroutine runner (the relaxed trace-identity story).  The
coroutine path stays the **exact reference**: its traces remain seed-for-seed
bit-identical to the vendored seed pipeline, as asserted by
``benchmarks/core_perf.py``.  The array engine mirrors the precedent set by
:func:`repro.graphs.generators.fast_gnp_edges`: exact RNG-stream parity with
the per-node Mersenne path is mathematically impossible (one block-generated
PCG64 stream cannot replay ``n`` interleaved per-node Mersenne streams), so
the engine has its **own documented seed schedule** and is pinned by

* validator-verified outputs (every engine trace passes the CSR validators),
* identical round-stamp *semantics* (commit rounds, message counts and
  completion rounds follow exactly the coroutine timeline for the same
  decisions — see the algorithm classes for the round-by-round derivations),
* round-distribution agreement with the coroutine twin over exhaustive
  small-seed sweeps, plus statistical tests (``tests/local/test_engine.py``),
* a pinned fixed-seed execution so the schedule cannot silently drift.

Seed schedule.  All engine randomness for one run comes from a single
``numpy.random.Generator(numpy.random.PCG64(seed))`` (``seed`` is the run's
master seed, exactly the argument the coroutine runner feeds
``random.Random``).  Algorithms draw **one block of uniforms per randomised
round**, sized to the still-undecided entities of that round and assigned in
ascending vertex / canonical-edge-slot order:

* Luby MIS: phase ``k`` (rounds ``2k−1``/``2k``) draws ``rng.random(u_k)``
  priorities at round ``2k−1``, one per still-undecided vertex, ascending.
* Randomized matching: iteration ``k`` (rounds ``4k−3..4k``) draws
  ``rng.random(U_k)`` mark uniforms at round ``4k−2``, one per
  still-undecided edge, in canonical edge-slot order.

The same ``(algorithm, network, seed)`` triple therefore always produces the
same trace, on every platform numpy supports.

Routing.  ``run_trials`` / ``evaluate`` / :class:`~repro.core.experiment.
Experiment` / :func:`repro.analysis.sweep.sweep` accept
``engine="node" | "array" | "auto"``: ``"node"`` is the coroutine runner
(default — bit-exact traces), ``"array"`` demands the engine (raising if the
algorithm has no array implementation), ``"auto"`` picks the engine exactly
when ``algorithm.as_array_algorithm()`` returns one.
"""

from __future__ import annotations

from array import array
from collections import OrderedDict
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import RoundLimitExceeded
from repro.core.metrics import RecoveryTimeline
from repro.core.problems import ProblemSpec
from repro.core.trace import ExecutionTrace
from repro.local.faults import FaultSchedule, RoundFaults
from repro.local.network import Network

__all__ = [
    "ArrayAlgorithm",
    "ArrayState",
    "ArrayTopology",
    "ArrayEngine",
    "BatchState",
    "batch_chunk",
]


class ArrayTopology:
    """Flat numpy views of a :class:`Network`, shared by every engine run.

    All arrays are int64 and read-only (or treated as such): ``indptr`` /
    ``indices`` are the CSR adjacency, ``edge_us`` / ``edge_vs`` the
    canonical edge endpoints in :attr:`Network.edges` slot order,
    ``degrees`` the per-vertex degree vector and ``identifiers`` the
    per-vertex unique IDs.  Built once per network and cached on the engine
    (the conversion from the tuple path's ``array('q')`` buffers is
    zero-copy via ``np.frombuffer``).
    """

    __slots__ = (
        "n",
        "m",
        "indptr",
        "indices",
        "edge_us",
        "edge_vs",
        "degrees",
        "identifiers",
    )

    def __init__(self, network: Network) -> None:
        self.n = network.n
        self.m = network.m
        self.indptr = np.frombuffer(network.indptr, dtype=np.int64)
        self.indices = np.frombuffer(network.indices, dtype=np.int64)
        us, vs = network.edge_endpoints()
        self.edge_us = np.asarray(us)
        self.edge_vs = np.asarray(vs)
        self.degrees = np.diff(self.indptr)
        self.identifiers = np.asarray(network.identifiers, dtype=np.int64)


class ArrayState:
    """Per-run mutable state: the engine-facing half of the protocol.

    Algorithms allocate one in :meth:`ArrayAlgorithm.init_arrays`, mutate it
    in :meth:`ArrayAlgorithm.step`, and may hang any private per-run scratch
    off ``extra``.  The engine reads:

    * ``node_rounds`` / ``node_values`` — per-vertex commit rounds (int64,
      ``-1`` = uncommitted) and committed values,
    * ``edge_rounds`` / ``edge_values`` — the same per canonical edge slot,
    * ``halted`` — bool mask of nodes that stopped participating,
    * ``messages`` — cumulative point-to-point message count.

    ``node_values`` / ``edge_values`` may be numpy arrays or ``None`` (for
    the label side the problem does not use); slots whose round is ``-1``
    are ignored when the trace is filled.
    """

    __slots__ = (
        "node_rounds",
        "node_values",
        "edge_rounds",
        "edge_values",
        "halted",
        "messages",
        "extra",
    )

    def __init__(self, n: int, m: int, *, nodes: bool, edges: bool) -> None:
        self.node_rounds = np.full(n, -1, dtype=np.int64)
        self.node_values: Optional[np.ndarray] = (
            np.zeros(n, dtype=bool) if nodes else None
        )
        self.edge_rounds = np.full(m, -1, dtype=np.int64)
        self.edge_values: Optional[np.ndarray] = (
            np.zeros(m, dtype=bool) if edges else None
        )
        self.halted = np.zeros(n, dtype=bool)
        self.messages = 0
        self.extra: dict = {}


class BatchState:
    """Batched per-run state: ``T`` independent trials stepped in lockstep.

    The batched twin of :class:`ArrayState`: every per-entity array gains a
    leading trial axis (``(T, n)`` / ``(T, m)``), ``messages`` becomes a
    per-trial int64 vector, and row ``t`` of every array is *exactly* the
    state the single-trial engine would hold for trial ``t`` — batch
    execution is a layout change, not a semantics change.  Algorithms
    allocate one in :meth:`ArrayAlgorithm.init_batch` and mutate it in
    :meth:`ArrayAlgorithm.step_batch`; private scratch hangs off ``extra``.
    """

    __slots__ = (
        "trials",
        "node_rounds",
        "node_values",
        "edge_rounds",
        "edge_values",
        "halted",
        "messages",
        "extra",
    )

    def __init__(
        self, trials: int, n: int, m: int, *, nodes: bool, edges: bool
    ) -> None:
        self.trials = trials
        self.node_rounds = np.full((trials, n), -1, dtype=np.int64)
        self.node_values: Optional[np.ndarray] = (
            np.zeros((trials, n), dtype=bool) if nodes else None
        )
        self.edge_rounds = np.full((trials, m), -1, dtype=np.int64)
        self.edge_values: Optional[np.ndarray] = (
            np.zeros((trials, m), dtype=bool) if edges else None
        )
        self.halted = np.zeros((trials, n), dtype=bool)
        self.messages = np.zeros(trials, dtype=np.int64)
        self.extra: dict = {}


#: Byte budget for one batched chunk's working state (arrays + scratch).
#: Tuned to keep the chunk's gather/scatter targets cache-resident rather
#: than merely fitting RAM: measured throughput at n = 10⁴ / m = 5·10⁴
#: peaks around 8 trials per chunk and at n = 10⁵ around 1–2, both of
#: which this budget reproduces under the 48-bytes-per-slot model.
#: Chunking cannot change results because every trial owns an independent
#: PCG64 stream.
_BATCH_BYTE_BUDGET = 24 * 2**20


def batch_chunk(
    n: int, m: int, trials: int, budget_bytes: int = _BATCH_BYTE_BUDGET
) -> int:
    """Cost model: how many trials of an ``(n, m)`` cell to batch per chunk.

    Estimates the batched working set at ~48 bytes per node slot and per
    edge slot per trial (int64 rounds, bool values/masks, one float64
    scratch block, and the transient ``nonzero`` index arrays) and returns
    the largest chunk that fits ``budget_bytes``, clamped to
    ``[1, trials]``.  The same model backs ``engine="auto"`` batch routing
    in ``run_trials`` / :class:`~repro.core.experiment.Experiment` and the
    sweep's batched task groups.
    """
    per_trial = 48 * (max(n, 1) + max(m, 1))
    return max(1, min(int(trials), int(budget_bytes // per_trial) or 1))


class ArrayAlgorithm:
    """Protocol for algorithms executable by the :class:`ArrayEngine`.

    An array algorithm is the vectorised twin of a per-node
    :class:`~repro.local.algorithm.NodeAlgorithm`: instead of one coroutine
    per node it expresses every synchronous round as whole-graph numpy
    operations.  Subclasses implement:

    * :meth:`init_arrays` — allocate the :class:`ArrayState` and perform the
      round-0 work (e.g. isolated nodes committing immediately),
    * :meth:`step` — execute one synchronous round, recording commits into
      the state's round/value arrays with the *same round stamps and message
      counts* the coroutine twin would produce for the same decisions.

    The engine owns the loop, the round counter, the completion check and
    the trace assembly; per-node coroutine twins advertise their array twin
    through ``NodeAlgorithm.as_array_algorithm()``.
    """

    #: Human-readable name recorded on the trace (match the coroutine twin).
    name: str = "array-algorithm"

    #: Which entity kind(s) the algorithm commits outputs for.
    labels_nodes: bool = False
    labels_edges: bool = False

    #: Whether :meth:`step` accepts a ``faults`` keyword (a per-round
    #: :class:`~repro.local.faults.RoundFaults` view) and implements the
    #: crash/drop semantics.  The engine refuses fault schedules for
    #: algorithms that do not opt in.
    supports_faults: bool = False

    #: Whether the algorithm implements the batched protocol
    #: (:meth:`init_batch` / :meth:`step_batch`): ``T`` independent trials
    #: stepped together over ``(T, n)`` / ``(T, m)`` arrays, each trial
    #: drawing from its own per-trial generator so every row stays
    #: bit-identical to the single-trial engine (batch-size invariance).
    supports_batch: bool = False

    #: Self-stabilising array algorithms detect crashed neighbours straight
    #: from the round view's ``newly_crashed`` (no engine callback needed,
    #: unlike the coroutine runner's ``neighbor_crashed`` hook) and restart
    #: affected nodes by resetting their ``node_rounds`` slots to ``-1``.
    #: The engine keeps such runs going until the last scheduled crash has
    #: landed and records a per-round
    #: :class:`~repro.core.metrics.RecoveryTimeline` on the trace.
    self_stabilizing: bool = False

    def init_arrays(
        self, topology: ArrayTopology, rng: np.random.Generator
    ) -> ArrayState:
        """Allocate per-run state and perform round-0 initialisation."""
        raise NotImplementedError

    def step(
        self,
        round_index: int,
        state: ArrayState,
        topology: ArrayTopology,
        rng: np.random.Generator,
    ) -> None:
        """Execute synchronous round ``round_index`` (1-based) in place."""
        raise NotImplementedError

    def init_batch(
        self, topology: ArrayTopology, rngs: Sequence[np.random.Generator]
    ) -> BatchState:
        """Allocate batched state for ``len(rngs)`` trials (round 0 included).

        Row ``t`` must equal what :meth:`init_arrays` would produce with
        ``rngs[t]``; algorithms whose round 0 draws no randomness (both
        current implementations) simply broadcast the single-trial init.
        """
        raise NotImplementedError

    def step_batch(
        self,
        round_index: int,
        batch: BatchState,
        topology: ArrayTopology,
        rngs: Sequence[np.random.Generator],
        active: np.ndarray,
    ) -> None:
        """Execute round ``round_index`` for every trial flagged in ``active``.

        ``active[t]`` is False once trial ``t`` completed: such rows must
        not mutate state, must not accrue messages and — crucially for
        batch-size invariance — must not consume randomness from
        ``rngs[t]``, exactly as the single-trial loop exits before
        executing further rounds.
        """
        raise NotImplementedError

    def batch_complete(self, batch: "BatchState") -> Optional[np.ndarray]:
        """Optional O(trials) per-trial completion mask.

        The engine's generic completion check reduces over every
        ``(trials, n)`` / ``(trials, m)`` round array after *every* round,
        which dominates batched cells with long completion tails.  An
        algorithm that already tracks per-trial liveness (undecided
        counts, degree sums) can return the equivalent boolean mask here;
        returning ``None`` (the default) falls back to the generic
        reduction.  The mask must match the generic check exactly — it is
        a fast path, not a different contract.
        """
        return None


class ArrayEngine:
    """Drives an :class:`ArrayAlgorithm` and assembles the execution trace.

    The array twin of :class:`~repro.local.runner.Runner`: same constructor
    knobs (``max_rounds``, ``strict``), same completion semantics (node- /
    edge-labelling problems complete when every node / edge committed,
    problems labelling neither when every node halted), same strict-mode
    :class:`~repro.local.runner.RoundLimitExceeded`.  Per-network
    :class:`ArrayTopology` views are cached in a small LRU (like
    :class:`~repro.local.faults.FaultSchedule`'s mask cache), so trial
    loops — including sweeps alternating between a handful of networks —
    pay the (cheap, mostly zero-copy) view construction once per network.
    """

    _TOPOLOGY_CACHE_SIZE = 8

    def __init__(self, max_rounds: int = 10_000, strict: bool = True) -> None:
        if max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")
        self.max_rounds = max_rounds
        self.strict = strict
        self._topology_cache: "OrderedDict[int, Tuple[Network, ArrayTopology]]" = (
            OrderedDict()
        )

    def _topology(self, network: Network) -> ArrayTopology:
        # Keyed by id() with the network held strongly in the entry: the
        # stored reference keeps the id from being reused while cached, and
        # the identity check guards against a stale hit regardless.
        key = id(network)
        entry = self._topology_cache.get(key)
        if entry is not None and entry[0] is network:
            self._topology_cache.move_to_end(key)
            return entry[1]
        topology = ArrayTopology(network)
        self._topology_cache[key] = (network, topology)
        self._topology_cache.move_to_end(key)
        while len(self._topology_cache) > self._TOPOLOGY_CACHE_SIZE:
            self._topology_cache.popitem(last=False)
        return topology

    def run(
        self,
        algorithm: ArrayAlgorithm,
        network: Network,
        problem: ProblemSpec,
        seed: Optional[int] = None,
        faults: Optional[FaultSchedule] = None,
    ) -> ExecutionTrace:
        """Execute ``algorithm`` on ``network`` under the documented seed schedule.

        With a ``faults`` schedule, each round the engine computes the
        schedule's :class:`~repro.local.faults.RoundFaults` view (alive mask
        plus per-direction delivery masks) and hands it to
        ``algorithm.step(..., faults=...)``; completion excuses entities
        only a crashed node could still decide, fault events are recorded
        on the trace, and validation scores the surviving subgraph.  Delay
        faults are exposed to the algorithm as the round view's
        ``late_uv`` / ``late_vu`` one-round carry masks; fault-aware array
        algorithms document how their message kernels consume them.
        """
        topology = self._topology(network)
        rng = np.random.Generator(np.random.PCG64(seed))

        if faults is not None and (faults.crashes or faults.has_message_faults):
            if not getattr(algorithm, "supports_faults", False):
                raise TypeError(
                    f"{algorithm.name} has no fault-aware array implementation; "
                    f"use the coroutine runner (engine='node') for fault injection"
                )
            return self._run_faulted(algorithm, network, problem, rng, faults, topology)

        state = algorithm.init_arrays(topology, rng)

        rounds = 0
        completed = self._is_complete(state, problem)
        while not completed and rounds < self.max_rounds:
            rounds += 1
            algorithm.step(rounds, state, topology, rng)
            completed = self._is_complete(state, problem)

        if not completed and self.strict:
            raise RoundLimitExceeded(
                f"{algorithm.name} did not finish {problem.name} on a graph with "
                f"n={network.n}, m={network.m} within {self.max_rounds} rounds"
            )

        return self._collect_trace(
            algorithm, network, problem, state, rounds, completed
        )

    def run_batch(
        self,
        algorithm: ArrayAlgorithm,
        network: Network,
        problem: ProblemSpec,
        seeds: Sequence[Optional[int]],
        faults: Optional[FaultSchedule] = None,
        budget_bytes: Optional[int] = None,
    ) -> List[ExecutionTrace]:
        """Execute one trial per entry of ``seeds``, batched in lockstep.

        Trial ``t`` draws from its own ``PCG64(seeds[t])`` generator —
        the identical stream the single-trial :meth:`run` would use with
        ``seed=seeds[t]`` — and completed trials stop stepping, stop
        accruing messages and stop consuming randomness, so every returned
        trace is **bit-identical** to the corresponding single-trial run
        (batch-size invariance; pinned in ``tests/local/test_batch.py``).
        Large cells are stepped in chunks sized by :func:`batch_chunk`,
        which cannot change results because the per-trial streams are
        independent.  ``budget_bytes`` overrides the default
        :data:`_BATCH_BYTE_BUDGET` cost-model budget (``None`` keeps it);
        because of batch-size invariance the override is purely a
        throughput/footprint knob, never a results knob.

        Fault schedules are per-trial-timeline constructs; batched runs
        refuse them (route faulted trials through :meth:`run`).
        """
        if faults is not None and (faults.crashes or faults.has_message_faults):
            raise TypeError(
                "batched execution does not support fault schedules; "
                "run faulted trials one at a time (ArrayEngine.run)"
            )
        if not getattr(algorithm, "supports_batch", False):
            raise TypeError(
                f"{algorithm.name} has no batched array implementation; "
                f"run trials singly (ArrayEngine.run)"
            )
        topology = self._topology(network)
        seeds = list(seeds)
        traces: List[ExecutionTrace] = []
        chunk = batch_chunk(
            topology.n,
            topology.m,
            len(seeds),
            _BATCH_BYTE_BUDGET if budget_bytes is None else int(budget_bytes),
        )
        for start in range(0, len(seeds), chunk):
            traces.extend(
                self._run_batch_chunk(
                    algorithm, network, problem, topology, seeds[start : start + chunk]
                )
            )
        return traces

    def _run_batch_chunk(
        self,
        algorithm: ArrayAlgorithm,
        network: Network,
        problem: ProblemSpec,
        topology: ArrayTopology,
        seeds: Sequence[Optional[int]],
    ) -> List[ExecutionTrace]:
        rngs = [np.random.Generator(np.random.PCG64(s)) for s in seeds]
        trials = len(rngs)
        batch = algorithm.init_batch(topology, rngs)

        def completion() -> np.ndarray:
            mask = algorithm.batch_complete(batch)
            if mask is None:
                mask = self._batch_complete(batch, problem)
            return mask

        trial_rounds = np.zeros(trials, dtype=np.int64)
        complete = completion()
        active = ~complete
        rounds = 0
        while active.any() and rounds < self.max_rounds:
            rounds += 1
            algorithm.step_batch(rounds, batch, topology, rngs, active)
            complete = completion()
            trial_rounds[active & complete] = rounds
            active &= ~complete

        if active.any():
            trial_rounds[active] = rounds
            if self.strict:
                raise RoundLimitExceeded(
                    f"{algorithm.name} did not finish {problem.name} on a graph "
                    f"with n={network.n}, m={network.m} within "
                    f"{self.max_rounds} rounds"
                )

        traces = []
        for t in range(trials):
            state = ArrayState.__new__(ArrayState)
            state.node_rounds = batch.node_rounds[t]
            state.node_values = (
                None if batch.node_values is None else batch.node_values[t]
            )
            state.edge_rounds = batch.edge_rounds[t]
            state.edge_values = (
                None if batch.edge_values is None else batch.edge_values[t]
            )
            state.halted = batch.halted[t]
            state.messages = int(batch.messages[t])
            state.extra = {}
            traces.append(
                self._collect_trace(
                    algorithm,
                    network,
                    problem,
                    state,
                    int(trial_rounds[t]),
                    bool(complete[t]),
                )
            )
        return traces

    @staticmethod
    def _batch_complete(batch: BatchState, problem: ProblemSpec) -> np.ndarray:
        """Per-trial completion mask (row-wise :meth:`_is_complete`)."""
        # min-reductions rather than `(rounds < 0).any(axis=1)`: one pass,
        # no (trials, n) boolean temporary — this runs every round.
        complete = np.ones(batch.trials, dtype=bool)
        if problem.labels_nodes and batch.node_rounds.size:
            complete &= batch.node_rounds.min(axis=1) >= 0
        if problem.labels_edges and batch.edge_rounds.size:
            complete &= batch.edge_rounds.min(axis=1) >= 0
        if not problem.labels_nodes and not problem.labels_edges:
            complete &= batch.halted.all(axis=1)
        return complete

    def _run_faulted(
        self,
        algorithm: ArrayAlgorithm,
        network: Network,
        problem: ProblemSpec,
        rng: np.random.Generator,
        faults: FaultSchedule,
        topology: ArrayTopology,
    ) -> ExecutionTrace:
        state = algorithm.init_arrays(topology, rng)

        # Self-stabilising runs mirror the coroutine runner: completion is
        # additionally gated on the last scheduled crash having landed, and
        # every executed round appends a (pending, survivor-valid) entry to
        # the recovery timeline.
        selfstab = bool(getattr(algorithm, "self_stabilizing", False))
        final_crash = max(faults.crashes.values(), default=0) if selfstab else 0
        crash_rounds: list = []
        recovery_pending: list = []
        recovery_valid: list = []

        fault_events: list = []
        rounds = 0
        round_faults = faults.round_faults(
            0, topology.n, topology.m, topology.edge_us, topology.edge_vs
        )
        completed = (
            self._is_complete_faulted(state, problem, round_faults, topology)
            and rounds >= final_crash
        )
        while not completed and rounds < self.max_rounds:
            rounds += 1
            round_faults = faults.round_faults(
                rounds, topology.n, topology.m, topology.edge_us, topology.edge_vs
            )
            if round_faults.newly_crashed:
                crash_rounds.append(rounds)
            fault_events.extend(
                faults.round_events(rounds, topology.edge_us, topology.edge_vs)
            )
            algorithm.step(rounds, state, topology, rng, faults=round_faults)
            completed = self._is_complete_faulted(
                state, problem, round_faults, topology
            ) and (not selfstab or rounds >= final_crash)
            if selfstab:
                pending, valid = self._recovery_round_entry(
                    state, problem, round_faults, topology, network,
                    faults.crashed_by(rounds),
                )
                recovery_pending.append(pending)
                recovery_valid.append(valid)

        if not completed and self.strict:
            raise RoundLimitExceeded(
                f"{algorithm.name} did not finish {problem.name} on a graph with "
                f"n={network.n}, m={network.m} within {self.max_rounds} rounds"
            )

        recovery = None
        if selfstab:
            recovery = RecoveryTimeline(
                crash_rounds=tuple(crash_rounds),
                pending=tuple(recovery_pending),
                valid=tuple(recovery_valid),
            )
        return self._collect_trace(
            algorithm,
            network,
            problem,
            state,
            rounds,
            completed,
            fault_events=tuple(fault_events),
            crashed=faults.crashed_within(rounds),
            recovery=recovery,
        )

    @staticmethod
    def _is_complete(state: ArrayState, problem: ProblemSpec) -> bool:
        if problem.labels_nodes and (state.node_rounds < 0).any():
            return False
        if problem.labels_edges and (state.edge_rounds < 0).any():
            return False
        if not problem.labels_nodes and not problem.labels_edges:
            return bool(state.halted.all())
        return True

    @staticmethod
    def _is_complete_faulted(
        state: ArrayState,
        problem: ProblemSpec,
        round_faults: RoundFaults,
        topology: ArrayTopology,
    ) -> bool:
        """Completion with crash excusals (mirrors ``_CompletionTracker``).

        Uncommitted nodes only block completion while alive; uncommitted
        edges only while both endpoints are alive; halting-only problems
        complete when every node has halted or crashed.
        """
        alive = round_faults.alive
        if problem.labels_nodes and ((state.node_rounds < 0) & alive).any():
            return False
        if problem.labels_edges:
            pending = (
                (state.edge_rounds < 0)
                & alive[topology.edge_us]
                & alive[topology.edge_vs]
            )
            if pending.any():
                return False
        if not problem.labels_nodes and not problem.labels_edges:
            return bool((state.halted | ~alive).all())
        return True

    @staticmethod
    def _recovery_round_entry(
        state: ArrayState,
        problem: ProblemSpec,
        round_faults: RoundFaults,
        topology: ArrayTopology,
        network: Network,
        crashed: Tuple[int, ...],
    ) -> Tuple[int, bool]:
        """One ``(pending, valid)`` recovery-timeline entry (array form).

        Mirrors the coroutine runner's helper: ``pending`` counts required
        outputs still undecided among survivors; survivor-complete
        configurations are strictly validated on the induced survivor
        subnetwork so crashed commitments never carry an epoch.
        """
        alive = round_faults.alive
        pending = 0
        if problem.labels_nodes:
            pending += int(((state.node_rounds < 0) & alive).sum())
        if problem.labels_edges:
            pending += int(
                (
                    (state.edge_rounds < 0)
                    & alive[topology.edge_us]
                    & alive[topology.edge_vs]
                ).sum()
            )
        if pending > 0:
            return pending, False
        # State arrays go to the validator as (values, committed-mask)
        # pairs: problems with a vectorised induced_validator never see a
        # MISSING-marked Python list (the per-round list build + subnetwork
        # fallback used to dominate the whole faulted round loop).
        result = problem.validate_induced(
            network,
            state.node_values,
            state.edge_values,
            crashed,
            node_committed=state.node_rounds >= 0,
            edge_committed=state.edge_rounds >= 0,
        )
        return 0, bool(result)

    @staticmethod
    def _collect_trace(
        algorithm: ArrayAlgorithm,
        network: Network,
        problem: ProblemSpec,
        state: ArrayState,
        rounds: int,
        completed: bool,
        fault_events: Tuple = (),
        crashed: Tuple[int, ...] = (),
        recovery: Optional[RecoveryTimeline] = None,
    ) -> ExecutionTrace:
        # Straight into the trace's flat per-slot storage: int64 rounds as
        # array('q') buffers (one memcpy each), values as plain lists with
        # None in never-committed slots.  No dict view is materialised.
        node_rounds = array("q", state.node_rounds.tobytes())
        node_values = _value_slots(state.node_values, state.node_rounds)
        edge_rounds = array("q", state.edge_rounds.tobytes())
        edge_values = _value_slots(state.edge_values, state.edge_rounds)
        return ExecutionTrace.from_arrays(
            network,
            problem,
            node_values,
            node_rounds,
            edge_values,
            edge_rounds,
            rounds=rounds,
            completed=completed,
            total_messages=state.messages,
            max_message_bits=None,
            algorithm_name=algorithm.name,
            fault_events=fault_events,
            crashed=crashed,
            recovery=recovery,
        )


def _value_slots(values: Optional[np.ndarray], rounds: np.ndarray) -> Tuple[Any, ...]:
    """Per-slot value tuple for the trace: ``None`` where never committed.

    A tuple rather than a list so ``ExecutionTrace.from_arrays`` can adopt
    it without copying (``tuple(t)`` returns ``t`` itself).
    """
    if values is None:
        return (None,) * len(rounds)
    slots: List[Any] = values.tolist()
    if (rounds < 0).any():
        for i in np.flatnonzero(rounds < 0).tolist():
            slots[i] = None
    return tuple(slots)
