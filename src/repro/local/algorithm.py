"""Algorithm interface for the synchronous LOCAL / CONGEST simulator.

A distributed algorithm is written from the perspective of a single node as a
:class:`NodeAlgorithm` subclass with three callbacks:

* :meth:`NodeAlgorithm.init` — executed before the first round ("round 0").
  A node may already commit its output here (e.g. an isolated node in a
  matching algorithm outputs "unmatched" without communicating).
* :meth:`NodeAlgorithm.send` — produce the messages for the current round, as
  a mapping from neighbour vertex to message payload.
* :meth:`NodeAlgorithm.receive` — consume the messages delivered this round
  and update local state / commit outputs.

The runner drives all nodes in lock step, so one call to ``send`` plus one
call to ``receive`` per node constitutes one synchronous round, exactly the
round complexity counted in the paper.

Messages can be arbitrary Python objects in the LOCAL model.  Algorithms that
claim CONGEST bounds should keep messages to ``O(log n)``-bit payloads (small
tuples of integers/booleans); :class:`repro.local.runner.Runner` can verify
this with ``congest_check=True``.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.local.node import NodeRuntime

__all__ = ["NodeAlgorithm", "Broadcast"]


class Broadcast:
    """Outbox sentinel: send ``payload`` to *every* neighbour this round.

    Equivalent to ``{u: payload for u in node.neighbors}`` but lets the
    runner deliver without building (and re-validating) a per-round dict —
    the neighbour set is known to be valid.  Algorithms whose rounds are
    full-neighbourhood broadcasts (most symmetry-breaking algorithms) should
    prefer it on large instances.
    """

    __slots__ = ("payload",)

    def __init__(self, payload: Any) -> None:
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Broadcast({self.payload!r})"


class NodeAlgorithm:
    """Base class for node-centric synchronous distributed algorithms.

    Subclasses typically store only *per-execution configuration* on ``self``
    (probabilities, phase lengths, parameters such as Δ or n if the algorithm
    assumes global knowledge of them) and keep all per-node state inside
    ``node.state``.  A single algorithm instance is shared by every node of an
    execution, mirroring the fact that every node runs the same code.
    """

    #: Human-readable algorithm name used in experiment reports.
    name: str = "node-algorithm"

    #: Whether the algorithm uses unique identifiers (deterministic symmetry
    #: breaking).  Purely informational.
    uses_identifiers: bool = True

    #: Whether the algorithm uses private randomness.  Purely informational.
    randomized: bool = False

    #: Self-stabilising algorithms recover from crash-stop faults: the runner
    #: notifies survivors of crashed neighbours (:meth:`neighbor_crashed`),
    #: allows them to revoke and recompute outputs
    #: (:meth:`~repro.local.node.NodeRuntime.revoke` /
    #: :meth:`~repro.local.node.NodeRuntime.revoke_edge`), keeps the
    #: execution running until the last scheduled crash has landed, and
    #: records a per-round :class:`~repro.core.metrics.RecoveryTimeline` on
    #: the trace.
    self_stabilizing: bool = False

    def init(self, node: NodeRuntime) -> None:
        """Initialise the local state of ``node`` (round 0)."""

    def send(self, node: NodeRuntime) -> Dict[int, Any]:
        """Return messages to deliver this round: ``{neighbor_vertex: payload}``.

        Returning an empty dict (the default) means the node stays silent this
        round but keeps listening.  Returning :class:`Broadcast` sends one
        payload to every neighbour.
        """
        return {}

    def receive(self, node: NodeRuntime, messages: Dict[int, Any]) -> None:
        """Process the messages received this round.

        Args:
            node: the executing node.
            messages: mapping from neighbour vertex to the payload it sent
                this round.  Neighbours that sent nothing are absent.  The
                mapping is owned by the runner and is reused between rounds —
                copy it if you need its contents beyond this call.
        """

    def neighbor_crashed(self, node: NodeRuntime, neighbor: int) -> None:
        """Notification that ``neighbor`` just crashed (self-stabilising runs).

        Called by the runner at the start of the crash round, after the
        casualty has been marked dead and before any round-``r`` messages
        are produced, for every live, unhalted neighbour of the casualty.
        Only algorithms with :attr:`self_stabilizing` set receive the
        callback; the default is a no-op.
        """

    def describe(self) -> str:
        """One-line description used by the experiment harness."""
        kind = "randomized" if self.randomized else "deterministic"
        return f"{self.name} ({kind})"

    def as_array_algorithm(self):
        """This algorithm's vectorised twin for the array engine, if any.

        Algorithms that implement the
        :class:`repro.local.engine.ArrayAlgorithm` protocol override this to
        return a configured instance of their array twin; the
        ``engine="auto"`` knob of ``run_trials`` / ``Experiment`` / ``sweep``
        routes execution through :class:`repro.local.engine.ArrayEngine`
        exactly when this returns one.  The default is ``None``: the
        algorithm only runs on the per-node coroutine
        :class:`~repro.local.runner.Runner`.
        """
        return None
