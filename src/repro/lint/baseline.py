"""Versioned baseline of grandfathered findings (format ``lint-baseline/v1``).

A baseline lets a new rule land strict without first rewriting every
pre-existing violation: known findings are committed with a justification
and stop failing the build, while *new* occurrences of the same pattern
still do.  Matching keys on ``(rule, path, stripped source line)`` — not
the line number — so entries survive unrelated edits and expire exactly
when the offending line changes or disappears.  Expired entries are
reported (and fail ``--strict-baseline``) so the file can only shrink as
debt is paid down, never silently rot.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core import schemas
from repro.lint.findings import Finding

__all__ = ["Baseline", "BaselineEntry"]


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding plus the reason it is tolerated."""

    rule: str
    path: str
    snippet: str
    line: int = 0  # informational; matching ignores it
    justification: str = ""

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.snippet)

    def to_row(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "snippet": self.snippet,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    """The committed set of grandfathered findings."""

    entries: List[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
        fmt = document.get("format")
        if fmt != schemas.LINT_BASELINE:
            raise ValueError(
                f"{path} has baseline format {fmt!r}, this checker speaks "
                f"{schemas.LINT_BASELINE!r}"
            )
        entries = [
            BaselineEntry(
                rule=str(row["rule"]),
                path=str(row["path"]),
                snippet=str(row["snippet"]),
                line=int(row.get("line", 0)),
                justification=str(row.get("justification", "")),
            )
            for row in document.get("entries", [])
        ]
        return cls(entries=entries)

    def save(self, path: str) -> None:
        document = {
            "format": schemas.LINT_BASELINE,
            "entries": [entry.to_row() for entry in sorted(
                self.entries, key=lambda e: (e.path, e.line, e.rule)
            )],
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], justification: str = ""
    ) -> "Baseline":
        """Grandfather ``findings`` wholesale (``--write-baseline``)."""
        return cls(
            entries=[
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    snippet=finding.snippet,
                    line=finding.line,
                    justification=justification,
                )
                for finding in findings
            ]
        )

    def apply(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], int, List[BaselineEntry]]:
        """Split findings into (new, baselined-count, expired-entries).

        Multiset semantics: each entry absorbs at most one finding with the
        same key, so adding a *second* copy of a grandfathered pattern on a
        new line still fails the build.
        """
        budget = Counter(entry.key() for entry in self.entries)
        new: List[Finding] = []
        baselined = 0
        for finding in findings:
            key = finding.key()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined += 1
            else:
                new.append(finding)
        expired: List[BaselineEntry] = []
        remaining = dict(budget)
        for entry in self.entries:
            key = entry.key()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                expired.append(entry)
        return new, baselined, expired
