"""The checker framework: parsed modules, the rule protocol, dispatch.

One :class:`ModuleSource` is built per file (source text, split lines, the
``ast`` tree with parent links annotated).  A :class:`LintRunner` walks the
tree **once** per file and dispatches each node to the rules that declared
interest in its type (``Rule.interests``); rules with whole-module logic
additionally get a ``finish(module)`` call.  Findings whose physical line —
or the line immediately above — carries a ``# repro-lint: allow[RULE]``
comment are suppressed at the framework layer, so every rule gets the
escape hatch for free.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

from repro.lint.findings import Finding

__all__ = [
    "ModuleSource",
    "Rule",
    "LintRunner",
    "lint_paths",
    "iter_python_files",
    "PARENT_FIELD",
]

#: Attribute name under which a node's parent is annotated on the tree.
PARENT_FIELD = "_repro_lint_parent"

#: ``# repro-lint: allow[REP001]`` or ``# repro-lint: allow[REP001,REP005] why``.
_ALLOW_RE = re.compile(r"#\s*repro-lint:\s*allow\[([A-Z0-9,\s]+)\]")


@dataclass
class ModuleSource:
    """One parsed Python file, ready for rule dispatch.

    ``logical_path`` is the repo-relative POSIX path rules match against;
    tests lint fixture files under a pretend location by overriding it.
    """

    path: str
    logical_path: str
    source: str
    lines: List[str] = field(default_factory=list)
    tree: Optional[ast.Module] = None

    @classmethod
    def parse(
        cls, path: str, root: str, logical_path: Optional[str] = None
    ) -> "ModuleSource":
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        relative = logical_path or os.path.relpath(path, root).replace(os.sep, "/")
        tree = ast.parse(source, filename=relative)
        annotate_parents(tree)
        return cls(
            path=path,
            logical_path=relative,
            source=source,
            lines=source.splitlines(),
            tree=tree,
        )

    # ------------------------------------------------------------------ #
    # Helpers rules lean on
    # ------------------------------------------------------------------ #

    def line_text(self, lineno: int) -> str:
        """The physical source line (1-indexed; empty when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def allowed_rules(self, lineno: int) -> Iterator[str]:
        """Rule ids allow-listed on ``lineno`` or the line directly above."""
        for text in (self.line_text(lineno), self.line_text(lineno - 1)):
            match = _ALLOW_RE.search(text)
            if match:
                for rule_id in match.group(1).split(","):
                    yield rule_id.strip()

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.logical_path,
            line=lineno,
            col=col,
            rule=rule,
            message=message,
            snippet=self.line_text(lineno).strip(),
        )


def annotate_parents(tree: ast.AST) -> None:
    """Attach a parent pointer to every node (rules need enclosing context)."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            setattr(child, PARENT_FIELD, parent)


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, PARENT_FIELD, None)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """The chain of enclosing nodes, innermost first."""
    current = parent_of(node)
    while current is not None:
        yield current
        current = parent_of(current)


def enclosing_function(
    node: ast.AST,
) -> Optional[ast.AST]:
    """The nearest enclosing ``def``/``async def`` (``None`` at module level)."""
    for ancestor in ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def enclosing_class(node: ast.AST) -> Optional[ast.ClassDef]:
    """The nearest enclosing class definition, if any."""
    for ancestor in ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def is_docstring(node: ast.AST) -> bool:
    """Whether ``node`` is the docstring constant of its enclosing scope."""
    if not (isinstance(node, ast.Constant) and isinstance(node.value, str)):
        return False
    expr = parent_of(node)
    if not isinstance(expr, ast.Expr):
        return False
    scope = parent_of(expr)
    if not isinstance(
        scope, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
    ):
        return False
    return bool(scope.body) and scope.body[0] is expr


class Rule:
    """Base class of every checker rule.

    Subclasses declare an :attr:`id`, a one-line :attr:`title`, the node
    types they want dispatched (:attr:`interests`), and the path predicate
    :meth:`applies_to`.  Per-node logic goes in :meth:`visit`; whole-module
    logic (cross-referencing classes, for example) goes in :meth:`finish`.
    """

    id: str = "REP000"
    title: str = ""
    #: Node types to dispatch to :meth:`visit`; empty = finish-only rule.
    interests: Tuple[Type[ast.AST], ...] = ()

    def applies_to(self, logical_path: str) -> bool:  # pragma: no cover - trivial
        return True

    def visit(self, node: ast.AST, module: ModuleSource) -> Iterator[Finding]:
        return iter(())

    def finish(self, module: ModuleSource) -> Iterator[Finding]:
        return iter(())


class LintRunner:
    """Runs a rule set over files: one tree walk per file, typed dispatch."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        self.rules = list(rules)

    def lint_module(self, module: ModuleSource) -> List[Finding]:
        active = [rule for rule in self.rules if rule.applies_to(module.logical_path)]
        if not active or module.tree is None:
            return []
        by_type: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in active:
            for node_type in rule.interests:
                by_type.setdefault(node_type, []).append(rule)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            for rule in by_type.get(type(node), ()):
                findings.extend(rule.visit(node, module))
        for rule in active:
            findings.extend(rule.finish(module))
        return [
            finding
            for finding in findings
            if finding.rule not in set(module.allowed_rules(finding.line))
        ]

    def lint_file(
        self, path: str, root: str, logical_path: Optional[str] = None
    ) -> List[Finding]:
        return self.lint_module(ModuleSource.parse(path, root, logical_path))


def iter_python_files(paths: Iterable[str], root: str) -> Iterator[str]:
    """Expand files/directories into sorted ``.py`` file paths."""
    for raw in paths:
        path = raw if os.path.isabs(raw) else os.path.join(root, raw)
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name)
        elif path.endswith(".py"):
            yield path


def lint_paths(
    paths: Iterable[str], root: str, rules: Sequence[Rule]
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; findings sorted by location."""
    runner = LintRunner(rules)
    findings: List[Finding] = []
    for file_path in iter_python_files(paths, root):
        findings.extend(runner.lint_file(file_path, root))
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
