"""The repo-specific rule suite (REP001–REP006).

Each rule machine-enforces one of the contracts the reproduction's
correctness rests on; ``docs/lint.md`` states the invariant behind each
one and links back to ROADMAP's standing-invariants item and the seed
schedules in ``benchmarks/README.md``.  Rules are deliberately syntactic
and conservative: they flag the patterns that have actually bitten (or
nearly bitten) this code base, and the ``# repro-lint: allow[...]``
comment plus the committed baseline absorb the documented exceptions.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.framework import (
    ModuleSource,
    Rule,
    ancestors,
    dotted_name,
    enclosing_class,
    enclosing_function,
    is_docstring,
    parent_of,
)

__all__ = ["DEFAULT_RULES", "rule_by_id"]


def _logical(path: str) -> str:
    """Normalise ``src/repro/...`` and ``repro/...`` to the latter."""
    return path[4:] if path.startswith("src/") else path


def _under(path: str, prefixes: Sequence[str]) -> bool:
    logical = _logical(path)
    return any(logical.startswith(prefix) for prefix in prefixes)


# --------------------------------------------------------------------- #
# REP001 — determinism
# --------------------------------------------------------------------- #

#: Packages whose code feeds seeded executions; everything here must draw
#: randomness from an explicitly seeded generator and never read the clock.
_DETERMINISM_SCOPE = (
    "repro/local/",
    "repro/algorithms/",
    "repro/graphs/",
    "repro/core/",
)

#: RNG constructors that take their seed as the first argument / ``seed=``.
_SEEDED_CONSTRUCTORS = {"Random", "PCG64", "default_rng", "SeedSequence"}

#: Wall-clock reads (monotonic timers like ``perf_counter`` stay legal:
#: they time phases, they never influence a result).
_WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}


class DeterminismRule(Rule):
    """REP001: no unseeded randomness or wall-clock reads in seeded code."""

    id = "REP001"
    title = "determinism: unseeded randomness / wall-clock read in seeded code"
    interests = (ast.Call,)

    def applies_to(self, logical_path: str) -> bool:
        return _under(logical_path, _DETERMINISM_SCOPE)

    def visit(self, node: ast.AST, module: ModuleSource) -> Iterator[Finding]:
        if not isinstance(node, ast.Call):
            return
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        last = parts[-1]

        # random.shuffle(...) / random.random() / ... — process-global RNG.
        if len(parts) == 2 and parts[0] == "random" and last not in (
            _SEEDED_CONSTRUCTORS
        ):
            yield module.finding(
                node,
                self.id,
                f"random.{last}() draws from the process-global RNG; build a "
                "seeded random.Random(seed) (see the documented seed schedules)",
            )
            return

        # Random()/PCG64()/default_rng()/SeedSequence() without a seed.
        if last in _SEEDED_CONSTRUCTORS and self._seedless(node):
            yield module.finding(
                node,
                self.id,
                f"{last}() without an explicit seed pulls OS entropy; pass the "
                "seed from the documented schedule (block-PCG64 helpers are "
                "allow-listed where sanctioned)",
            )
            return

        # time.time() / datetime.now() — wall clock influencing seeded code.
        if len(parts) >= 2 and (parts[-2], last) in _WALL_CLOCK:
            yield module.finding(
                node,
                self.id,
                f"{name}() reads the wall clock inside seeded code; use a "
                "monotonic timer for phase timings and never let time reach "
                "a result",
            )

    @staticmethod
    def _seedless(node: ast.Call) -> bool:
        if not node.args and not node.keywords:
            return True
        if node.args:
            first = node.args[0]
            return isinstance(first, ast.Constant) and first.value is None
        for keyword in node.keywords:
            if keyword.arg == "seed":
                value = keyword.value
                return isinstance(value, ast.Constant) and value.value is None
        return True  # only non-seed keywords were given


# --------------------------------------------------------------------- #
# REP002 — hot-path purity
# --------------------------------------------------------------------- #

#: Modules on the per-round/per-trial hot path: one Python object per edge
#: here undoes the array-engine speedups (benchmarks bench-core/v5+).
_HOT_PATH_MODULES = {
    "repro/local/engine.py",
    "repro/local/runner.py",
    "repro/core/metrics.py",
    "repro/graphs/edgelist.py",
}

#: Calls that materialise a Python object per edge (or the nx graph).
_MATERIALISERS = {"to_networkx", "as_edge_list", "as_pairs"}


class HotPathRule(Rule):
    """REP002: no tuple-edge materialisation or per-edge loops on hot paths."""

    id = "REP002"
    title = "hot-path purity: per-edge Python work in a hot-path module"
    interests = (
        ast.Call,
        ast.For,
        ast.ListComp,
        ast.SetComp,
        ast.DictComp,
        ast.GeneratorExp,
    )

    def applies_to(self, logical_path: str) -> bool:
        return _logical(logical_path) in _HOT_PATH_MODULES

    def visit(self, node: ast.AST, module: ModuleSource) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _MATERIALISERS
            ):
                yield module.finding(
                    node,
                    self.id,
                    f".{node.func.attr}() materialises a Python object per "
                    "edge; hot paths must stay on the CSR/endpoint arrays",
                )
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in {"list", "tuple", "sorted"}
                and len(node.args) == 1
                and self._is_edges_call(node.args[0])
            ):
                yield module.finding(
                    node,
                    self.id,
                    f"{node.func.id}(…edges()) materialises the tuple edge "
                    "view; use Network.edge_endpoints() arrays instead",
                )
        elif isinstance(node, ast.For):
            if self._is_edges_call(node.iter):
                yield module.finding(
                    node,
                    self.id,
                    "per-edge Python for-loop over edges(); vectorise over "
                    "edge_endpoints() arrays instead",
                )
        else:  # comprehensions
            for generator in node.generators:  # type: ignore[union-attr]
                if self._is_edges_call(generator.iter):
                    yield module.finding(
                        node,
                        self.id,
                        "per-edge comprehension over edges(); vectorise over "
                        "edge_endpoints() arrays instead",
                    )
                    break

    @staticmethod
    def _is_edges_call(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "edges"
        )


# --------------------------------------------------------------------- #
# REP003 — array-algorithm protocol conformance
# --------------------------------------------------------------------- #

_BATCH_TRIO = ("init_batch", "step_batch", "batch_complete")


class ProtocolRule(Rule):
    """REP003: array-algorithm twins implement the full protocol.

    The engine duck-types (:class:`repro.local.engine.ArrayAlgorithm` is a
    Protocol), so a half-implemented twin only explodes at run time, deep
    in a sweep.  Three conformance checks, all syntactic:

    * a class defining ``init_arrays`` must define ``step`` (and vice
      versa when any batch method marks the class as an array algorithm);
    * the batch protocol is all-or-nothing: any of
      ``init_batch``/``step_batch``/``batch_complete`` requires all three;
    * a class whose ``as_array_algorithm`` returns an instance of a class
      defined in the same module requires that class to implement
      ``init_arrays``/``step`` (returning ``None`` — coroutine-only — is
      always legal).
    """

    id = "REP003"
    title = "protocol conformance: incomplete array-algorithm implementation"

    def applies_to(self, logical_path: str) -> bool:
        return _under(logical_path, ("repro/",))

    def finish(self, module: ModuleSource) -> Iterator[Finding]:
        if module.tree is None:
            return
        classes: Dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }
        for cls in classes.values():
            methods = self._methods(cls, classes)
            own = {
                stmt.name
                for stmt in cls.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            batch_present = [name for name in _BATCH_TRIO if name in methods]
            if batch_present and len(batch_present) < len(_BATCH_TRIO):
                missing = sorted(set(_BATCH_TRIO) - set(batch_present))
                yield module.finding(
                    cls,
                    self.id,
                    f"class {cls.name} defines {'/'.join(batch_present)} but "
                    f"not {'/'.join(missing)}; the batch protocol is "
                    "all-or-nothing",
                )
            is_array_algorithm = "init_arrays" in methods or bool(batch_present)
            if is_array_algorithm:
                missing = sorted({"init_arrays", "step"} - methods)
                if missing:
                    yield module.finding(
                        cls,
                        self.id,
                        f"class {cls.name} looks like an array algorithm but "
                        f"lacks {'/'.join(missing)}; the engine requires the "
                        "single-trial protocol (init_arrays/step)",
                    )
            if "as_array_algorithm" in own:
                yield from self._check_advertisement(cls, classes, module)

    def _check_advertisement(
        self,
        cls: ast.ClassDef,
        classes: Dict[str, ast.ClassDef],
        module: ModuleSource,
    ) -> Iterator[Finding]:
        advert = next(
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name == "as_array_algorithm"
        )
        for node in ast.walk(advert):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            if isinstance(value, ast.Constant) and value.value is None:
                continue  # coroutine-only algorithms opt out with None
            target: Optional[str] = None
            if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
                target = value.func.id
            elif isinstance(value, ast.Name):
                target = value.id
            if target is None or target not in classes:
                continue  # imported twin — out of this module's sight
            twin_methods = self._methods(classes[target], classes)
            missing = sorted({"init_arrays", "step"} - twin_methods)
            if missing:
                yield module.finding(
                    node,
                    self.id,
                    f"{cls.name}.as_array_algorithm() advertises {target}, "
                    f"which lacks {'/'.join(missing)}",
                )

    @staticmethod
    def _methods(
        cls: ast.ClassDef, classes: Dict[str, ast.ClassDef]
    ) -> Set[str]:
        """Method names of ``cls`` including same-module base classes."""
        names: Set[str] = set()
        seen: Set[str] = set()
        stack: List[ast.ClassDef] = [cls]
        while stack:
            current = stack.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            for stmt in current.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(stmt.name)
            for base in current.bases:
                if isinstance(base, ast.Name) and base.id in classes:
                    stack.append(classes[base.id])
        return names


# --------------------------------------------------------------------- #
# REP004 — schema literals
# --------------------------------------------------------------------- #

_SCHEMA_LITERAL = re.compile(r"[a-z][a-z0-9_-]*/v[0-9]+")

#: The one module allowed to spell schema strings out.
_SCHEMAS_MODULE = "repro/core/schemas.py"


class SchemaLiteralRule(Rule):
    """REP004: ``name/vN`` schema strings live only in repro.core.schemas."""

    id = "REP004"
    title = "schema literal outside repro.core.schemas"
    interests = (ast.Constant,)

    def applies_to(self, logical_path: str) -> bool:
        return (
            _under(logical_path, ("repro/",))
            and _logical(logical_path) != _SCHEMAS_MODULE
        )

    def visit(self, node: ast.AST, module: ModuleSource) -> Iterator[Finding]:
        if not isinstance(node, ast.Constant) or not isinstance(node.value, str):
            return
        if not _SCHEMA_LITERAL.fullmatch(node.value):
            return
        if is_docstring(node):
            return
        yield module.finding(
            node,
            self.id,
            f"schema literal {node.value!r} must come from repro.core.schemas "
            "so readers and writers can never drift",
        )


# --------------------------------------------------------------------- #
# REP005 — resource hygiene
# --------------------------------------------------------------------- #

_RESOURCE_SCOPE = ("repro/service/", "repro/analysis/")


class ResourceRule(Rule):
    """REP005: sqlite/SharedMemory/file handles are closed on all paths.

    Flow-insensitive approximation of "closed on all paths": a risky
    acquisition is clean when it is (a) the context expression of a
    ``with``, (b) assigned to ``self.X`` on a class that defines ``close``
    or ``__exit__``, or (c) assigned to a local whose ``.close()`` /
    ``.unlink()`` runs inside a ``finally`` block or ``except`` handler of
    the same function.  Ownership transfers (returning the live handle)
    need an ``allow`` comment naming the releasing site.
    """

    id = "REP005"
    title = "resource hygiene: handle not provably closed on all paths"
    interests = (ast.Call,)

    def applies_to(self, logical_path: str) -> bool:
        return _under(logical_path, _RESOURCE_SCOPE)

    def visit(self, node: ast.AST, module: ModuleSource) -> Iterator[Finding]:
        if not isinstance(node, ast.Call):
            return
        resource = self._resource_kind(node)
        if resource is None:
            return
        parent = parent_of(node)
        if isinstance(parent, ast.withitem) and parent.context_expr is node:
            return
        while isinstance(parent, ast.IfExp):  # x = a if cond else open(...)
            parent = parent_of(parent)
        if isinstance(parent, (ast.Assign, ast.AnnAssign, ast.NamedExpr)):
            targets = (
                parent.targets
                if isinstance(parent, ast.Assign)
                else [parent.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    cls = enclosing_class(node)
                    if cls is not None and self._has_releaser(cls):
                        return
                    yield module.finding(
                        node,
                        self.id,
                        f"{resource} stored on self in a class without "
                        "close()/__exit__(); the handle outlives every scope "
                        "that could release it",
                    )
                    return
                if isinstance(target, ast.Name):
                    scope = enclosing_function(node) or module.tree
                    if scope is not None and self._cleaned_up(
                        scope, target.id
                    ):
                        return
                    yield module.finding(
                        node,
                        self.id,
                        f"{resource} assigned to {target.id!r} with no "
                        ".close()/.unlink() in a finally/except of this "
                        "function; an error path leaks the handle",
                    )
                    return
            return
        yield module.finding(
            node,
            self.id,
            f"{resource} acquired without a with-statement or owning "
            "variable; nothing can close it on an error path",
        )

    @staticmethod
    def _resource_kind(node: ast.Call) -> Optional[str]:
        name = dotted_name(node.func)
        if name == "sqlite3.connect":
            return "sqlite3.connect()"
        if name is not None and name.split(".")[-1] == "SharedMemory":
            return "SharedMemory()"
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            return "open()"
        return None

    @staticmethod
    def _has_releaser(cls: ast.ClassDef) -> bool:
        return any(
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name in {"close", "__exit__", "__del__"}
            for stmt in cls.body
        )

    @staticmethod
    def _cleaned_up(scope: ast.AST, name: str) -> bool:
        """Whether ``name`` is entered as a ``with`` context or has
        ``.close()``/``.unlink()`` run in a finally/except."""
        for with_node in ast.walk(scope):
            if isinstance(with_node, (ast.With, ast.AsyncWith)) and any(
                isinstance(item.context_expr, ast.Name)
                and item.context_expr.id == name
                for item in with_node.items
            ):
                return True
        for try_node in ast.walk(scope):
            if not isinstance(try_node, ast.Try):
                continue
            regions: List[ast.AST] = list(try_node.finalbody)
            for handler in try_node.handlers:
                regions.extend(handler.body)
            for region in regions:
                for sub in ast.walk(region):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in {"close", "unlink"}
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id == name
                    ):
                        return True
        return False


# --------------------------------------------------------------------- #
# REP006 — error taxonomy
# --------------------------------------------------------------------- #


class ErrorTaxonomyRule(Rule):
    """REP006: runtime failures raise repro.core.errors kinds, not
    ``raise Exception``/``assert``."""

    id = "REP006"
    title = "error taxonomy: bare Exception/assert for a runtime failure"
    interests = (ast.Raise, ast.Assert)

    def applies_to(self, logical_path: str) -> bool:
        return _under(logical_path, ("repro/",))

    def visit(self, node: ast.AST, module: ModuleSource) -> Iterator[Finding]:
        if isinstance(node, ast.Raise):
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            if isinstance(target, ast.Name) and target.id in {
                "Exception",
                "BaseException",
            }:
                yield module.finding(
                    node,
                    self.id,
                    f"raise {target.id} defeats classify_failure()'s "
                    "structured failure rows; raise a repro.core.errors kind "
                    "(or at least a typed exception)",
                )
        elif isinstance(node, ast.Assert):
            yield module.finding(
                node,
                self.id,
                "assert vanishes under python -O and raises an untyped "
                "AssertionError; raise a repro.core.errors kind (or "
                "ValidationFailed) for runtime failures",
            )


DEFAULT_RULES: Tuple[Rule, ...] = (
    DeterminismRule(),
    HotPathRule(),
    ProtocolRule(),
    SchemaLiteralRule(),
    ResourceRule(),
    ErrorTaxonomyRule(),
)


def rule_by_id(rule_id: str) -> Rule:
    """The default-suite rule with ``rule_id`` (KeyError when unknown)."""
    for rule in DEFAULT_RULES:
        if rule.id == rule_id:
            return rule
    raise KeyError(rule_id)
