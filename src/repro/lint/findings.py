"""Structured finding rows produced by the checker.

A :class:`Finding` is one rule violation at one source location.  Findings
are the interchange between the framework, the baseline, and both report
formats, so their JSON shape is part of the ``lint-report/v1`` contract
(:data:`repro.core.schemas.LINT_REPORT`).

Baseline matching deliberately keys on the *stripped source line text*
(:attr:`Finding.snippet`) rather than the line number: grandfathered
findings survive unrelated edits above them, and a baseline entry expires
exactly when the offending line itself changes or disappears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    #: Repo-relative POSIX path of the offending file.
    path: str
    #: 1-indexed line of the offending node.
    line: int
    #: 0-indexed column of the offending node.
    col: int
    #: Rule identifier (``REP001`` … ``REP006``).
    rule: str
    #: Human-readable statement of the violation (one sentence).
    message: str
    #: The offending physical line, stripped — the baseline match key.
    snippet: str = ""

    def key(self) -> Tuple[str, str, str]:
        """Identity used for baseline matching (line numbers may drift)."""
        return (self.rule, self.path, self.snippet)

    def to_row(self) -> Dict[str, object]:
        """The JSON row shape of the ``lint-report/v1`` / baseline formats."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        """The one-line text-format rendering (``path:line:col: RULE message``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
