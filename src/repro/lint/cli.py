"""Command-line front end: ``python -m repro.lint``.

Exit status: 0 when every finding is baselined (or none exist), 1 when new
findings remain, 2 on usage errors.  ``--strict-baseline`` also fails the
run (exit 1) when baseline entries expired — the committed file must then
be pruned (``--write-baseline`` regenerates it from the live findings).

The JSON report (``--format=json``) has format
:data:`repro.core.schemas.LINT_REPORT`::

    {
      "format": "lint-report/v1",
      "rules": {"REP001": "<title>", ...},
      "findings": [{rule, path, line, col, message, snippet}, ...],
      "baselined": <int>,
      "expired": [{rule, path, line, snippet, justification}, ...]
    }
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.core import schemas
from repro.lint.baseline import Baseline
from repro.lint.framework import lint_paths
from repro.lint.rules import DEFAULT_RULES

__all__ = ["main", "build_parser"]

DEFAULT_PATHS = ("src/repro",)
DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant checker for this repository "
        "(rules REP001-REP006; see docs/lint.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files/directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root paths are resolved against (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        default=None,
        metavar="FILE",
        help="grandfathered-findings file (bare flag: lint-baseline.json)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings and exit 0",
    )
    parser.add_argument(
        "--strict-baseline",
        action="store_true",
        help="fail when baseline entries no longer match anything",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule suite and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    rules = list(DEFAULT_RULES)
    if args.rules:
        wanted = {rule_id.strip() for rule_id in args.rules.split(",")}
        unknown = wanted - {rule.id for rule in rules}
        if unknown:
            parser.error(f"unknown rule ids: {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.id in wanted]

    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}  {rule.title}")
        return 0

    root = os.path.abspath(args.root)
    findings = lint_paths(args.paths, root, rules)

    baseline_path = args.baseline
    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE
        target = target if os.path.isabs(target) else os.path.join(root, target)
        Baseline.from_findings(
            findings, justification="grandfathered by --write-baseline"
        ).save(target)
        print(f"wrote {len(findings)} baseline entries to {target}")
        return 0

    baselined = 0
    expired: List = []
    if baseline_path is not None:
        resolved = (
            baseline_path
            if os.path.isabs(baseline_path)
            else os.path.join(root, baseline_path)
        )
        try:
            baseline = Baseline.load(resolved)
        except FileNotFoundError:
            parser.error(f"baseline file not found: {resolved}")
        except ValueError as error:
            parser.error(str(error))
        findings, baselined, expired = baseline.apply(findings)

    if args.format == "json":
        report = {
            "format": schemas.LINT_REPORT,
            "rules": {rule.id: rule.title for rule in rules},
            "findings": [finding.to_row() for finding in findings],
            "baselined": baselined,
            "expired": [entry.to_row() for entry in expired],
        }
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.render())
        for entry in expired:
            print(
                f"{entry.path}: stale baseline entry for {entry.rule} "
                f"({entry.snippet!r} no longer matches; prune it)",
                file=sys.stderr,
            )
        summary = (
            f"{len(findings)} finding(s), {baselined} baselined, "
            f"{len(expired)} stale baseline entr{'y' if len(expired) == 1 else 'ies'}"
        )
        print(summary, file=sys.stderr)

    if findings:
        return 1
    if expired and args.strict_baseline:
        return 1
    return 0
