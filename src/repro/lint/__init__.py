"""``repro.lint`` — AST-based invariant checker for this repository.

The reproduction's correctness rests on contracts that ordinary tests
cannot see: the exact/relaxed/batch-invariant seed-schedule stories, the
"no per-node Python phase" hot-path rule, engine fault-event parity, and
the versioned schema strings that gate resume and store validation.  One
unseeded RNG or one ``to_networkx()`` in an engine kernel breaks
bit-identity without failing a single tier-1 test.  This package turns
those prose invariants (ROADMAP's standing-invariants item,
``benchmarks/README.md``'s seed-schedule sections) into machine-checked
rules over the Python AST.

Usage::

    python -m repro.lint                         # lint src/repro, text report
    python -m repro.lint --baseline lint-baseline.json
    python -m repro.lint --format=json path/...  # structured report
    python -m repro.lint --write-baseline        # grandfather current findings

Rules (see ``docs/lint.md`` for the invariant each one encodes):

========  ==============================================================
REP001    determinism — no unseeded randomness or wall-clock reads in
          ``src/repro/{local,algorithms,graphs,core}``
REP002    hot-path purity — no ``to_networkx``/tuple-edge
          materialisation/per-edge Python loops in hot-path modules
REP003    array-algorithm protocol conformance
          (``init_arrays``/``step``; batch trio all-or-nothing)
REP004    schema literals live only in :mod:`repro.core.schemas`
REP005    resource hygiene — sqlite/SharedMemory/file handles closed
          and unlinked on all paths in ``src/repro/{service,analysis}``
REP006    error taxonomy — no ``raise Exception``/``assert`` for runtime
          failures; use :mod:`repro.core.errors` kinds
========  ==============================================================

A finding is suppressed by a trailing (or immediately preceding) comment
``# repro-lint: allow[REP00X] <why>`` — the sanctioned escape hatch for
documented exceptions such as the block-PCG64 helpers and the tuple-edge
compat wrappers.  Findings that predate a rule live in the committed
``lint-baseline.json`` (format ``lint-baseline/v1``) with a justification.

Dependency discipline mirrors ``repro.service``: standard library
(``ast``, ``json``, ``argparse``) plus repo modules only.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.findings import Finding
from repro.lint.framework import LintRunner, ModuleSource, Rule, lint_paths
from repro.lint.rules import DEFAULT_RULES, rule_by_id

__all__ = [
    "Baseline",
    "Finding",
    "LintRunner",
    "ModuleSource",
    "Rule",
    "lint_paths",
    "DEFAULT_RULES",
    "rule_by_id",
]
