"""Execution traces: per-node and per-edge commit times and outputs.

An :class:`ExecutionTrace` is what the runner returns after simulating an
algorithm.  It records, for every node and every edge, the round at which the
corresponding output was committed, and derives the paper's *completion
times*:

* a node ``v`` has completed its computation as soon as ``v`` **and all its
  incident edges** have committed their outputs;
* an edge ``e = {u, v}`` has completed as soon as ``e`` **and both its
  endpoints** have committed their outputs.

For problems that only label nodes (MIS, colouring, ruling sets) the edge
side of the condition is vacuous, so a node completes when its own label is
fixed and an edge completes when both endpoint labels are fixed — exactly the
reading spelled out in Section 2 of the paper.  Symmetrically for problems
that only label edges (matching, orientations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.problems import ProblemSpec, ValidationResult

__all__ = ["ExecutionTrace"]

Edge = Tuple[int, int]


@dataclass
class ExecutionTrace:
    """Result of one execution of a distributed algorithm.

    Attributes:
        network: the :class:`repro.local.network.Network` the algorithm ran on.
        problem: the problem being solved (drives completion-time semantics).
        node_outputs: committed node outputs, vertex → value.
        node_commit_round: vertex → round of the node-output commit.
        edge_outputs: committed edge outputs, canonical edge → value.
        edge_commit_round: canonical edge → round of the edge-output commit.
        rounds: number of communication rounds executed.
        completed: whether all required outputs were committed before the
            round limit.
        total_messages: number of point-to-point messages sent.
        max_message_bits: rough upper bound on the largest message size in
            bits (only tracked when the runner is asked to).
        algorithm_name: name of the executed algorithm (for reports).
    """

    network: Any
    problem: ProblemSpec
    node_outputs: Dict[int, Any] = field(default_factory=dict)
    node_commit_round: Dict[int, int] = field(default_factory=dict)
    edge_outputs: Dict[Edge, Any] = field(default_factory=dict)
    edge_commit_round: Dict[Edge, int] = field(default_factory=dict)
    rounds: int = 0
    completed: bool = True
    total_messages: int = 0
    max_message_bits: Optional[int] = None
    algorithm_name: str = ""
    # Lazily computed completion-time vectors.  A trace is immutable once the
    # runner hands it out, and the metrics layer asks for the same vectors
    # several times per trace (averaged, expected, worst-case), so they are
    # computed once.
    _node_times: Optional[List[int]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _edge_times: Optional[List[int]] = field(
        default=None, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------ #
    # Completion times (Definition 1 semantics)
    # ------------------------------------------------------------------ #

    def node_completion_time(self, v: int) -> int:
        """Round at which node ``v`` completed its computation."""
        times: List[int] = []
        if self.problem.labels_nodes:
            times.append(self._node_round(v))
        if self.problem.labels_edges:
            for u in self.network.neighbors(v):
                times.append(self._edge_round(_canon(v, u)))
        if not times:
            return 0
        return max(times)

    def edge_completion_time(self, u: int, v: int) -> int:
        """Round at which edge ``{u, v}`` completed its computation."""
        e = _canon(u, v)
        times: List[int] = []
        if self.problem.labels_edges:
            times.append(self._edge_round(e))
        if self.problem.labels_nodes:
            times.append(self._node_round(u))
            times.append(self._node_round(v))
        if not times:
            return 0
        return max(times)

    def node_completion_times(self) -> List[int]:
        """Completion times of all nodes, indexed by vertex (cached)."""
        if self._node_times is None:
            self._node_times = self._compute_node_times()
        return self._node_times

    def edge_completion_times(self) -> List[int]:
        """Completion times of all edges, in the network's edge order (cached)."""
        if self._edge_times is None:
            self._edge_times = self._compute_edge_times()
        return self._edge_times

    def _node_rounds_vector(self) -> List[int]:
        """Per-vertex commit rounds (uncommitted charged the full length)."""
        rounds = self.rounds
        get = self.node_commit_round.get
        return [get(v, rounds) for v in self.network.vertices]

    def _edge_rounds_vector(self) -> List[int]:
        """Per-edge commit rounds in network edge order."""
        rounds = self.rounds
        get = self.edge_commit_round.get
        return [get(e, rounds) for e in self.network.edges]

    def _compute_node_times(self) -> List[int]:
        labels_nodes = self.problem.labels_nodes
        labels_edges = self.problem.labels_edges
        n = self.network.n
        if not labels_nodes and not labels_edges:
            return [0] * n
        acc = self._node_rounds_vector() if labels_nodes else [0] * n
        if labels_edges:
            edge_rounds = self._edge_rounds_vector()
            for i, (u, v) in enumerate(self.network.edges):
                t = edge_rounds[i]
                if t > acc[u]:
                    acc[u] = t
                if t > acc[v]:
                    acc[v] = t
        return acc

    def _compute_edge_times(self) -> List[int]:
        labels_nodes = self.problem.labels_nodes
        labels_edges = self.problem.labels_edges
        m = self.network.m
        if not labels_nodes and not labels_edges:
            return [0] * m
        acc = self._edge_rounds_vector() if labels_edges else [0] * m
        if labels_nodes:
            node_rounds = self._node_rounds_vector()
            for i, (u, v) in enumerate(self.network.edges):
                t = node_rounds[u]
                tv = node_rounds[v]
                if tv > t:
                    t = tv
                if t > acc[i]:
                    acc[i] = t
        return acc

    def worst_case_rounds(self) -> int:
        """Maximum completion time over all nodes and edges."""
        candidates = [0]
        candidates.extend(self.node_completion_times())
        candidates.extend(self.edge_completion_times())
        return max(candidates)

    def _node_round(self, v: int) -> int:
        if v not in self.node_commit_round:
            # Uncommitted entities are charged the full execution length; this
            # only happens for incomplete executions (round-limit hit).
            return self.rounds
        return self.node_commit_round[v]

    def _edge_round(self, e: Edge) -> int:
        if e not in self.edge_commit_round:
            return self.rounds
        return self.edge_commit_round[e]

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def validate(self) -> ValidationResult:
        """Check the committed outputs against the problem specification."""
        graph = self.network.to_networkx()
        return self.problem.validate(graph, self.node_outputs, self.edge_outputs)

    def require_valid(self) -> "ExecutionTrace":
        """Raise ``AssertionError`` unless the outputs are a valid solution."""
        result = self.validate()
        if not result:
            raise AssertionError(
                f"{self.algorithm_name or 'algorithm'} produced an invalid "
                f"{self.problem.name} solution: {result.reason}"
            )
        return self

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #

    def selected_nodes(self) -> List[int]:
        """Vertices whose committed output is truthy (e.g. MIS members)."""
        return [v for v, value in self.node_outputs.items() if value]

    def selected_edges(self) -> List[Edge]:
        """Edges whose committed output is truthy (e.g. matching edges)."""
        return [e for e, value in self.edge_outputs.items() if value]

    def summary(self) -> Dict[str, Any]:
        """Small dictionary of headline numbers for quick inspection."""
        node_times = self.node_completion_times()
        edge_times = self.edge_completion_times()
        return {
            "algorithm": self.algorithm_name,
            "problem": self.problem.name,
            "n": self.network.n,
            "m": self.network.m,
            "rounds": self.rounds,
            "completed": self.completed,
            "node_averaged": sum(node_times) / len(node_times) if node_times else 0.0,
            "edge_averaged": sum(edge_times) / len(edge_times) if edge_times else 0.0,
            "worst_case": self.worst_case_rounds(),
            "total_messages": self.total_messages,
        }


def _canon(u: int, v: int) -> Edge:
    return (u, v) if u < v else (v, u)
