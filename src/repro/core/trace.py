"""Execution traces: per-node and per-edge commit times and outputs.

An :class:`ExecutionTrace` is what the runner returns after simulating an
algorithm.  It records, for every node and every edge, the round at which the
corresponding output was committed, and derives the paper's *completion
times*:

* a node ``v`` has completed its computation as soon as ``v`` **and all its
  incident edges** have committed their outputs;
* an edge ``e = {u, v}`` has completed as soon as ``e`` **and both its
  endpoints** have committed their outputs.

For problems that only label nodes (MIS, colouring, ruling sets) the edge
side of the condition is vacuous, so a node completes when its own label is
fixed and an edge completes when both endpoint labels are fixed — exactly the
reading spelled out in Section 2 of the paper.  Symmetrically for problems
that only label edges (matching, orientations).

Storage.  Commit rounds and outputs live in **flat arrays indexed by vertex
and edge slot** (the :attr:`Network.edges` order): an ``array('q')`` of
commit rounds with ``-1`` marking "never committed" and an aligned value
list.  The runner fills these directly (:meth:`ExecutionTrace.from_arrays`);
the historical dict views (``node_outputs``, ``node_commit_round``,
``edge_outputs``, ``edge_commit_round``) are preserved as lazy properties
for API compatibility, and remain assignable so that hand-built traces (and
the vendored seed pipeline in ``benchmarks/``) can keep constructing traces
dict-first.  Whichever representation a trace was built from is canonical;
the other is derived on first access and cached.  Traces are treated as
immutable once handed out, so the two never diverge.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.errors import ValidationFailed
from repro.core.problems import MISSING, ProblemSpec, ValidationResult

__all__ = ["ExecutionTrace"]

Edge = Tuple[int, int]


def _new_round_array(length: int) -> array:
    """A length-``length`` int64 array of ``-1`` ("never committed")."""
    return array("q", [-1]) * length


class ExecutionTrace:
    """Result of one execution of a distributed algorithm.

    Attributes:
        network: the :class:`repro.local.network.Network` the algorithm ran on.
        problem: the problem being solved (drives completion-time semantics).
        node_outputs: committed node outputs, vertex → value (lazy dict view).
        node_commit_round: vertex → round of the node-output commit (lazy view).
        edge_outputs: committed edge outputs, canonical edge → value (lazy view).
        edge_commit_round: canonical edge → round of the edge-output commit.
        rounds: number of communication rounds executed.
        completed: whether all required outputs were committed before the
            round limit.
        total_messages: number of point-to-point messages sent.
        max_message_bits: rough upper bound on the largest message size in
            bits (only tracked when the runner is asked to).
        algorithm_name: name of the executed algorithm (for reports).
        fault_events: injected fault events, in execution order — tuples
            ``("crash", round, vertex)``, ``("drop", round, source, target)``
            or ``("delay", round, source, target)`` (empty for fault-free
            runs).  Derived purely from the :class:`~repro.local.faults.
            FaultSchedule`, so both engines record identical lists for the
            rounds they execute.
        crashed: sorted vertices that crashed during the execution.  When
            non-empty, :meth:`validate` scores the outputs on the surviving
            subgraph (:meth:`ProblemSpec.validate_surviving`).
        recovery: per-round :class:`~repro.core.metrics.RecoveryTimeline`
            of a self-stabilising execution (``None`` otherwise).
            :func:`repro.core.metrics.measure` aggregates it into
            time-to-restabilise statistics.  Excluded from trace equality,
            like the other lazily derived extras.
    """

    def __init__(
        self,
        network: Any,
        problem: ProblemSpec,
        node_outputs: Optional[Dict[int, Any]] = None,
        node_commit_round: Optional[Dict[int, int]] = None,
        edge_outputs: Optional[Dict[Edge, Any]] = None,
        edge_commit_round: Optional[Dict[Edge, int]] = None,
        rounds: int = 0,
        completed: bool = True,
        total_messages: int = 0,
        max_message_bits: Optional[int] = None,
        algorithm_name: str = "",
        fault_events: Tuple = (),
        crashed: Tuple[int, ...] = (),
        recovery: Optional[Any] = None,
    ) -> None:
        self.network = network
        self.problem = problem
        self.rounds = rounds
        self.completed = completed
        self.total_messages = total_messages
        self.max_message_bits = max_message_bits
        self.algorithm_name = algorithm_name
        self.fault_events = tuple(fault_events)
        self.crashed = tuple(crashed)
        self.recovery = recovery
        # Dict-canonical storage (legacy construction path).  ``None`` means
        # the corresponding flat arrays below are canonical instead.
        self._node_outputs: Optional[Dict[int, Any]] = (
            node_outputs if node_outputs is not None else {}
        )
        self._node_commit_round: Optional[Dict[int, int]] = (
            node_commit_round if node_commit_round is not None else {}
        )
        self._edge_outputs: Optional[Dict[Edge, Any]] = (
            edge_outputs if edge_outputs is not None else {}
        )
        self._edge_commit_round: Optional[Dict[Edge, int]] = (
            edge_commit_round if edge_commit_round is not None else {}
        )
        # Flat per-slot storage: value lists aligned with int64 round arrays
        # (-1 = never committed).  Canonical when built via `from_arrays`,
        # otherwise derived lazily from the dicts.
        self._node_values: Optional[List[Any]] = None
        self._node_rounds: Optional[array] = None
        self._edge_values: Optional[List[Any]] = None
        self._edge_rounds: Optional[array] = None
        # Lazily computed completion-time vectors.  A trace is immutable once
        # the runner hands it out, and the metrics layer asks for the same
        # vectors several times per trace (averaged, expected, worst-case).
        # The int64 numpy arrays are canonical; the list views derive from
        # them for API compatibility.
        self._node_times: Optional[List[int]] = None
        self._edge_times: Optional[List[int]] = None
        self._node_times_np: Optional[np.ndarray] = None
        self._edge_times_np: Optional[np.ndarray] = None

    @classmethod
    def from_arrays(
        cls,
        network: Any,
        problem: ProblemSpec,
        node_values: List[Any],
        node_rounds: array,
        edge_values: List[Any],
        edge_rounds: array,
        *,
        rounds: int = 0,
        completed: bool = True,
        total_messages: int = 0,
        max_message_bits: Optional[int] = None,
        algorithm_name: str = "",
        fault_events: Tuple = (),
        crashed: Tuple[int, ...] = (),
        recovery: Optional[Any] = None,
    ) -> "ExecutionTrace":
        """Build a trace directly from flat per-slot arrays (the hot path).

        ``node_values``/``node_rounds`` are vertex-indexed (length ``n``),
        ``edge_values``/``edge_rounds`` follow :attr:`Network.edges` order
        (length ``m``); round ``-1`` marks a slot that never committed.
        """
        trace = cls(
            network,
            problem,
            rounds=rounds,
            completed=completed,
            total_messages=total_messages,
            max_message_bits=max_message_bits,
            algorithm_name=algorithm_name,
            fault_events=fault_events,
            crashed=crashed,
            recovery=recovery,
        )
        trace._node_outputs = None
        trace._node_commit_round = None
        trace._edge_outputs = None
        trace._edge_commit_round = None
        # Value slots are stored as tuples: CPython's GC permanently
        # untracks a tuple of atomic values the first time a collection
        # sees it, whereas a list is re-scanned by every gen-2 collection
        # for as long as it lives.  With thousands of traces held by a
        # sweep or a batched run, list-backed slots turn each full
        # collection into a walk of 10⁷+ pointers and dominate the trial
        # loop; tuple-backed slots make held traces GC-inert.  (Round
        # buffers — ``array('q')`` — and numpy arrays are atomic already.)
        trace._node_values = tuple(node_values)
        trace._node_rounds = node_rounds
        trace._edge_values = tuple(edge_values)
        trace._edge_rounds = edge_rounds
        return trace

    # ------------------------------------------------------------------ #
    # Dict views (lazy; canonical when assigned)
    # ------------------------------------------------------------------ #

    @property
    def node_outputs(self) -> Dict[int, Any]:
        if self._node_outputs is None:
            rounds_arr = self._node_rounds
            values = self._node_values
            self._node_outputs = {
                v: values[v] for v in range(len(rounds_arr)) if rounds_arr[v] >= 0
            }
        return self._node_outputs

    @node_outputs.setter
    def node_outputs(self, mapping: Dict[int, Any]) -> None:
        # Assignment flips the node group back to dict-canonical; materialise
        # the sibling dict view first so the arrays can be dropped together
        # (a half-array, half-dict state would corrupt later derivations).
        if self._node_commit_round is None:
            _ = self.node_commit_round
        self._node_outputs = mapping
        self._node_values = None
        self._node_rounds = None
        self._invalidate_times()

    @property
    def node_commit_round(self) -> Dict[int, int]:
        if self._node_commit_round is None:
            rounds_arr = self._node_rounds
            self._node_commit_round = {
                v: rounds_arr[v] for v in range(len(rounds_arr)) if rounds_arr[v] >= 0
            }
        return self._node_commit_round

    @node_commit_round.setter
    def node_commit_round(self, mapping: Dict[int, int]) -> None:
        if self._node_outputs is None:
            _ = self.node_outputs
        self._node_commit_round = mapping
        self._node_rounds = None
        self._node_values = None
        self._invalidate_times()

    @property
    def edge_outputs(self) -> Dict[Edge, Any]:
        if self._edge_outputs is None:
            rounds_arr = self._edge_rounds
            values = self._edge_values
            edges = self.network.edges
            self._edge_outputs = {
                edges[i]: values[i] for i in range(len(rounds_arr)) if rounds_arr[i] >= 0
            }
        return self._edge_outputs

    @edge_outputs.setter
    def edge_outputs(self, mapping: Dict[Edge, Any]) -> None:
        if self._edge_commit_round is None:
            _ = self.edge_commit_round
        self._edge_outputs = mapping
        self._edge_values = None
        self._edge_rounds = None
        self._invalidate_times()

    @property
    def edge_commit_round(self) -> Dict[Edge, int]:
        if self._edge_commit_round is None:
            rounds_arr = self._edge_rounds
            edges = self.network.edges
            self._edge_commit_round = {
                edges[i]: rounds_arr[i] for i in range(len(rounds_arr)) if rounds_arr[i] >= 0
            }
        return self._edge_commit_round

    @edge_commit_round.setter
    def edge_commit_round(self, mapping: Dict[Edge, int]) -> None:
        if self._edge_outputs is None:
            _ = self.edge_outputs
        self._edge_commit_round = mapping
        self._edge_rounds = None
        self._edge_values = None
        self._invalidate_times()

    def _invalidate_times(self) -> None:
        self._node_times = None
        self._edge_times = None
        self._node_times_np = None
        self._edge_times_np = None

    # ------------------------------------------------------------------ #
    # Flat array views (lazy; canonical when built via `from_arrays`)
    # ------------------------------------------------------------------ #

    def node_commit_rounds(self) -> array:
        """Per-vertex commit rounds as an int64 array (``-1`` = uncommitted)."""
        if self._node_rounds is None:
            arr = _new_round_array(self.network.n)
            for v, r in self._node_commit_round.items():
                arr[v] = r
            self._node_rounds = arr
        return self._node_rounds

    def edge_commit_rounds(self) -> array:
        """Per-edge-slot commit rounds (``network.edges`` order, ``-1`` = uncommitted)."""
        if self._edge_rounds is None:
            arr = _new_round_array(self.network.m)
            mapping = self._edge_commit_round
            if mapping:
                for i, e in enumerate(self.network.edges):
                    r = mapping.get(e)
                    if r is not None:
                        arr[i] = r
            self._edge_rounds = arr
        return self._edge_rounds

    def _node_value_slots(self) -> List[Any]:
        """Per-vertex output values, ``MISSING`` where never committed."""
        if self._node_values is not None:
            rounds_arr = self._node_rounds
            values = self._node_values
            return [
                values[v] if rounds_arr[v] >= 0 else MISSING for v in range(len(values))
            ]
        mapping = self._node_outputs
        get = mapping.get
        return [get(v, MISSING) for v in range(self.network.n)]

    def _edge_value_slots(self) -> List[Any]:
        """Per-edge output values in ``network.edges`` order, ``MISSING`` where absent."""
        if self._edge_values is not None:
            rounds_arr = self._edge_rounds
            values = self._edge_values
            return [
                values[i] if rounds_arr[i] >= 0 else MISSING for i in range(len(values))
            ]
        mapping = self._edge_outputs
        get = mapping.get
        return [get(e, MISSING) for e in self.network.edges]

    # ------------------------------------------------------------------ #
    # Completion times (Definition 1 semantics)
    # ------------------------------------------------------------------ #

    def node_completion_time(self, v: int) -> int:
        """Round at which node ``v`` completed its computation."""
        times: List[int] = []
        if self.problem.labels_nodes:
            times.append(self._node_round(v))
        if self.problem.labels_edges:
            edge_rounds = self.edge_commit_rounds()
            rounds = self.rounds
            for i in self.network.incident_edge_indices(v):
                r = edge_rounds[i]
                times.append(r if r >= 0 else rounds)
        if not times:
            return 0
        return max(times)

    def edge_completion_time(self, u: int, v: int) -> int:
        """Round at which edge ``{u, v}`` completed its computation."""
        times: List[int] = []
        if self.problem.labels_edges:
            edge_rounds = self.edge_commit_rounds()
            r = edge_rounds[self.network.edge_index(u, v)]
            times.append(r if r >= 0 else self.rounds)
        if self.problem.labels_nodes:
            times.append(self._node_round(u))
            times.append(self._node_round(v))
        if not times:
            return 0
        return max(times)

    def node_completion_times(self) -> List[int]:
        """Completion times of all nodes, indexed by vertex (cached)."""
        if self._node_times is None:
            self._node_times = self.node_completion_array().tolist()
        return self._node_times

    def edge_completion_times(self) -> List[int]:
        """Completion times of all edges, in the network's edge order (cached)."""
        if self._edge_times is None:
            self._edge_times = self.edge_completion_array().tolist()
        return self._edge_times

    def _node_rounds_np(self) -> np.ndarray:
        """Per-vertex commit rounds (uncommitted charged the full length)."""
        rounds = np.frombuffer(self.node_commit_rounds(), dtype=np.int64)
        return np.where(rounds >= 0, rounds, self.rounds)

    def _edge_rounds_np(self) -> np.ndarray:
        """Per-edge commit rounds in network edge order."""
        rounds = np.frombuffer(self.edge_commit_rounds(), dtype=np.int64)
        return np.where(rounds >= 0, rounds, self.rounds)

    def _endpoint_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Edge endpoint arrays ``(us, vs)`` aligned with the edge slots."""
        endpoints = getattr(self.network, "edge_endpoints", None)
        if endpoints is not None:
            return endpoints()
        pairs = np.asarray(self.network.edges, dtype=np.int64).reshape(-1, 2)
        return pairs[:, 0], pairs[:, 1]

    def node_completion_array(self) -> np.ndarray:
        """Vectorised :meth:`node_completion_times`: an int64 numpy array.

        Computed entirely over the trace's flat per-slot round arrays — no
        per-node Python loop — and cached (the array is marked read-only so
        the list view and repeated metric reductions stay consistent).
        """
        if self._node_times_np is None:
            labels_nodes = self.problem.labels_nodes
            labels_edges = self.problem.labels_edges
            n = self.network.n
            if labels_nodes:
                acc = self._node_rounds_np()
            else:
                acc = np.zeros(n, dtype=np.int64)
            if labels_edges:
                edge_times = self._edge_rounds_np()
                us, vs = self._endpoint_arrays()
                np.maximum.at(acc, us, edge_times)
                np.maximum.at(acc, vs, edge_times)
            acc.setflags(write=False)
            self._node_times_np = acc
        return self._node_times_np

    def edge_completion_array(self) -> np.ndarray:
        """Vectorised :meth:`edge_completion_times`: an int64 numpy array."""
        if self._edge_times_np is None:
            labels_nodes = self.problem.labels_nodes
            labels_edges = self.problem.labels_edges
            m = self.network.m
            if labels_edges:
                acc = self._edge_rounds_np()
            else:
                acc = np.zeros(m, dtype=np.int64)
            if labels_nodes:
                node_rounds = self._node_rounds_np()
                us, vs = self._endpoint_arrays()
                np.maximum(acc, node_rounds[us], out=acc)
                np.maximum(acc, node_rounds[vs], out=acc)
            acc.setflags(write=False)
            self._edge_times_np = acc
        return self._edge_times_np

    def worst_case_rounds(self) -> int:
        """Maximum completion time over all nodes and edges."""
        return int(
            max(
                np.max(self.node_completion_array(), initial=0),
                np.max(self.edge_completion_array(), initial=0),
            )
        )

    def _node_round(self, v: int) -> int:
        r = self.node_commit_rounds()[v]
        if r < 0:
            # Uncommitted entities are charged the full execution length; this
            # only happens for incomplete executions (round-limit hit).
            return self.rounds
        return r

    def _edge_round(self, e: Edge) -> int:
        r = self.edge_commit_rounds()[self.network.edge_index(*e)]
        if r < 0:
            return self.rounds
        return r

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def validate(self) -> ValidationResult:
        """Check the committed outputs against the problem specification.

        Uses the CSR-native fast path (:meth:`ProblemSpec.validate_network`)
        when both the network and the problem support it — the topology is
        never exported back to networkx on this path.  Executions with
        crash-stop faults (:attr:`crashed` non-empty) are scored on the
        surviving subgraph via :meth:`ProblemSpec.validate_surviving`.
        """
        network = self.network
        problem = self.problem
        if self.crashed and hasattr(problem, "validate_surviving"):
            return problem.validate_surviving(
                network,
                self._node_value_slots(),
                self._edge_value_slots(),
                self.crashed,
            )
        if hasattr(problem, "validate_network") and hasattr(network, "indptr"):
            return problem.validate_network(
                network, self._node_value_slots(), self._edge_value_slots()
            )
        graph = network.to_networkx()
        return problem.validate(graph, self.node_outputs, self.edge_outputs)

    def require_valid(self) -> "ExecutionTrace":
        """Raise :class:`ValidationFailed` unless the outputs are valid.

        ``ValidationFailed`` subclasses ``AssertionError``, preserving the
        historical contract of this method.
        """
        result = self.validate()
        if not result:
            raise ValidationFailed(
                f"{self.algorithm_name or 'algorithm'} produced an invalid "
                f"{self.problem.name} solution: {result.reason}"
            )
        return self

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #

    def selected_nodes(self) -> List[int]:
        """Vertices whose committed output is truthy (e.g. MIS members)."""
        if self._node_values is not None:
            rounds_arr = self._node_rounds
            values = self._node_values
            return [v for v in range(len(values)) if rounds_arr[v] >= 0 and values[v]]
        return [v for v, value in self._node_outputs.items() if value]

    def selected_edges(self) -> List[Edge]:
        """Edges whose committed output is truthy (e.g. matching edges)."""
        if self._edge_values is not None:
            rounds_arr = self._edge_rounds
            values = self._edge_values
            edges = self.network.edges
            return [edges[i] for i in range(len(values)) if rounds_arr[i] >= 0 and values[i]]
        return [e for e, value in self._edge_outputs.items() if value]

    def summary(self) -> Dict[str, Any]:
        """Small dictionary of headline numbers for quick inspection."""
        node_times = self.node_completion_times()
        edge_times = self.edge_completion_times()
        return {
            "algorithm": self.algorithm_name,
            "problem": self.problem.name,
            "n": self.network.n,
            "m": self.network.m,
            "rounds": self.rounds,
            "completed": self.completed,
            "node_averaged": sum(node_times) / len(node_times) if node_times else 0.0,
            "edge_averaged": sum(edge_times) / len(edge_times) if edge_times else 0.0,
            "worst_case": self.worst_case_rounds(),
            "total_messages": self.total_messages,
        }

    def __eq__(self, other: object) -> bool:
        # Field-based equality over the same fields the former dataclass
        # compared (the lazy completion-time caches were compare=False), so
        # dict-built and array-built traces of the same execution are equal.
        if not isinstance(other, ExecutionTrace):
            return NotImplemented
        return (
            self.network == other.network
            and self.problem == other.problem
            and self.rounds == other.rounds
            and self.completed == other.completed
            and self.total_messages == other.total_messages
            and self.max_message_bits == other.max_message_bits
            and self.algorithm_name == other.algorithm_name
            and self.node_outputs == other.node_outputs
            and self.node_commit_round == other.node_commit_round
            and self.edge_outputs == other.edge_outputs
            and self.edge_commit_round == other.edge_commit_round
        )

    __hash__ = None  # mutable value type, like the former eq=True dataclass

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ExecutionTrace(algorithm={self.algorithm_name!r}, "
            f"problem={self.problem.name!r}, n={self.network.n}, "
            f"m={self.network.m}, rounds={self.rounds}, completed={self.completed})"
        )
