"""Graph problem specifications and validity checkers.

A :class:`ProblemSpec` declares which entities of the graph carry outputs
(nodes, edges, or both) and how to check a complete output assignment for
validity.  The declaration of *which* entities carry outputs matters beyond
validation: the paper's Definition 1 ties the completion time of a node to
the commitment of its own output **and** of the outputs of its incident
edges (and symmetrically for edges), so the averaged-complexity computation
in :mod:`repro.core.trace` consults the problem spec.

The concrete problems of the paper are provided as module-level constants /
factories:

* :data:`MIS` — maximal independent set (node outputs ``True``/``False``).
* :func:`ruling_set` — ``(α, β)``-ruling sets (node outputs).
* :data:`MAXIMAL_MATCHING` — maximal matching (edge outputs ``True``/``False``).
* :func:`coloring` — proper vertex colouring with a bound on the palette.
* :data:`SINKLESS_ORIENTATION` — sinkless orientation (edge outputs give the
  head of the edge; no node may have out-degree 0), for graphs of minimum
  degree ≥ 3 as in Theorem 6.

Every problem carries **two** validator implementations:

* a networkx reference validator (``is_maximal_independent_set`` and
  friends) — the seed implementation, kept as the executable specification
  and exercised by the compatibility path of :meth:`ProblemSpec.validate`;
* a CSR-native validator (``csr_is_maximal_independent_set`` and friends)
  that consumes a :class:`repro.local.network.Network`'s cached
  ``indptr``/``indices`` flat arrays directly.  This is the hot path used by
  :meth:`ProblemSpec.validate_network` and by
  :meth:`repro.core.trace.ExecutionTrace.validate`: validating a trace never
  exports the topology back to networkx.

CSR validators receive outputs as flat per-slot sequences (vertex-indexed
for nodes, :attr:`Network.edges`-indexed for edges) with the module sentinel
:data:`MISSING` marking absent outputs; :meth:`ProblemSpec.validate_network`
accepts either mappings (the trace representation) or such sequences and
normalises.

Every problem additionally carries a **surviving** validator
(``csr_is_surviving_mis`` and friends) used by
:meth:`ProblemSpec.validate_surviving` to score executions under crash-stop
faults: crashed nodes and crash-adjacent edges are excused from committing,
constraints are enforced on the surviving subgraph, and commitments a node
made before dying still count where crash-stop semantics say they must
(coverage, matchedness, domination, orientation heads).  The stricter
:meth:`ProblemSpec.validate_induced` — validity of the plain induced
subgraph, no concessions — backs the self-stabilisation recovery metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import networkx as nx

__all__ = [
    "MISSING",
    "ValidationResult",
    "ProblemSpec",
    "MIS",
    "MAXIMAL_MATCHING",
    "SINKLESS_ORIENTATION",
    "ruling_set",
    "coloring",
    "is_independent_set",
    "is_maximal_independent_set",
    "is_ruling_set",
    "is_matching",
    "is_maximal_matching",
    "is_proper_coloring",
    "is_sinkless_orientation",
    "csr_is_independent_set",
    "csr_is_maximal_independent_set",
    "csr_is_ruling_set",
    "csr_is_matching",
    "csr_is_maximal_matching",
    "csr_is_proper_coloring",
    "csr_is_sinkless_orientation",
    "csr_is_surviving_mis",
    "csr_is_surviving_maximal_matching",
    "csr_is_induced_mis",
    "csr_is_induced_maximal_matching",
    "csr_is_surviving_coloring",
    "csr_is_surviving_ruling_set",
    "csr_is_surviving_sinkless_orientation",
]

Edge = Tuple[int, int]


class _Missing:
    """Sentinel type for absent per-slot outputs (single instance, falsy repr)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "<MISSING>"


#: Sentinel marking an absent output in a per-slot value sequence.  Distinct
#: from ``None`` so that an algorithm legitimately committing ``None`` is not
#: mistaken for "never committed".
MISSING = _Missing()


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of validating an output assignment."""

    valid: bool
    reason: str = ""

    def __bool__(self) -> bool:
        return self.valid


@dataclass(frozen=True)
class ProblemSpec:
    """Specification of a distributed graph problem.

    Attributes:
        name: human-readable problem name.
        labels_nodes: whether the problem assigns an output to every node.
        labels_edges: whether the problem assigns an output to every edge.
        validator: callable ``(graph, node_outputs, edge_outputs) -> ValidationResult``
            checking a complete assignment.  ``graph`` is a networkx graph on
            vertices ``0..n-1``; ``node_outputs`` maps vertex → output;
            ``edge_outputs`` maps canonical edge ``(u, v), u < v`` → output.
        params: free-form parameters of the problem instance (e.g. α, β for
            ruling sets, the palette size for colouring).
        csr_validator: CSR-native fast-path validator
            ``(network, node_values, edge_values, stray_edges) -> ValidationResult``
            where ``node_values``/``edge_values`` are flat per-slot sequences
            (:data:`MISSING` marks absent outputs) and ``stray_edges`` lists
            ``((u, v), value)`` entries of a mapping input that are not edges
            of the network.  When ``None``, :meth:`validate_network` falls
            back to the networkx validator via the network's cached export.
        surviving_validator: fault-aware validator
            ``(network, node_values, edge_values, crashed) -> ValidationResult``
            scoring outputs on the **surviving subgraph** after crash-stop
            node faults (``crashed`` is a set of dead vertices).  Unlike a
            plain re-validation on the induced survivor graph, a surviving
            validator may credit commitments towards crashed nodes (e.g. an
            MIS survivor covered by a crashed-but-committed ``True``
            neighbour).  When ``None``, :meth:`validate_surviving` falls
            back to strict validation on the induced survivor subnetwork.
        induced_validator: vectorised fast path for
            :meth:`validate_induced`, signature ``(network, node_values,
            node_committed, edge_values, edge_committed, crashed) ->
            ValidationResult`` where the value/committed pairs are numpy
            bool arrays (values of uncommitted slots are ignored).  Must
            agree verdict-for-verdict with the strict
            induced-survivor-subnetwork fallback; it exists because that
            fallback (subnetwork build + relabel dicts per call) dominated
            the per-round recovery check of faulted runs on both engines.
            When ``None``, :meth:`validate_induced` uses the fallback.
    """

    name: str
    labels_nodes: bool
    labels_edges: bool
    validator: Callable[[nx.Graph, Mapping[int, Any], Mapping[Edge, Any]], ValidationResult]
    params: Mapping[str, Any] = field(default_factory=dict)
    csr_validator: Optional[
        Callable[[Any, Sequence[Any], Sequence[Any], Sequence[Tuple[Edge, Any]]], ValidationResult]
    ] = None
    surviving_validator: Optional[
        Callable[[Any, Sequence[Any], Sequence[Any], "frozenset[int]"], ValidationResult]
    ] = None
    induced_validator: Optional[
        Callable[[Any, Any, Any, Any, Any, "frozenset[int]"], ValidationResult]
    ] = None

    def validate(
        self,
        graph: "Union[nx.Graph, Any]",
        node_outputs: Optional[Mapping[int, Any]] = None,
        edge_outputs: Optional[Mapping[Edge, Any]] = None,
    ) -> ValidationResult:
        """Check a complete output assignment against this problem.

        ``graph`` may be a :class:`networkx.Graph` (the seed signature, kept
        as a thin compatibility wrapper around the reference validators) or a
        :class:`repro.local.network.Network`, which dispatches to the
        CSR-native fast path of :meth:`validate_network`.
        """
        if not isinstance(graph, nx.Graph):
            return self.validate_network(graph, node_outputs, edge_outputs)
        # An explicit MISSING value in a mapping is equivalent to the key
        # being absent (the sentinel means "never committed"); stripping the
        # entries here keeps this reference path in verdict agreement with
        # the CSR fast path, which normalises through slot sequences where
        # the two cases are indistinguishable by construction.
        node_outputs = {
            v: value for v, value in (node_outputs or {}).items() if value is not MISSING
        }
        edge_outputs = {
            e: value for e, value in (edge_outputs or {}).items() if value is not MISSING
        }
        if self.labels_nodes:
            missing = [v for v in graph.nodes() if v not in node_outputs]
            if missing:
                return ValidationResult(False, f"missing node outputs for {missing[:5]}")
        if self.labels_edges:
            missing_edges = [
                e for e in (_canon(u, v) for u, v in graph.edges()) if e not in edge_outputs
            ]
            if missing_edges:
                return ValidationResult(False, f"missing edge outputs for {missing_edges[:5]}")
        return self.validator(graph, node_outputs, edge_outputs)

    def validate_network(
        self,
        network: Any,
        node_outputs: "Optional[Union[Mapping[int, Any], Sequence[Any]]]" = None,
        edge_outputs: "Optional[Union[Mapping[Edge, Any], Sequence[Any]]]" = None,
    ) -> ValidationResult:
        """CSR fast path: validate against a :class:`Network` without networkx.

        ``node_outputs`` is either a vertex → value mapping or a sequence of
        length ``n`` (slot ``v`` = output of vertex ``v``); ``edge_outputs``
        is either a canonical-edge → value mapping or a sequence of length
        ``m`` in :attr:`Network.edges` order.  :data:`MISSING` marks absent
        outputs in sequence form.
        """
        if self.csr_validator is None:
            # Custom problem without a CSR validator: route through the
            # reference implementation on the network's (cached) export.
            return self.validate(
                network.to_networkx(),
                _slots_to_mapping_nodes(network, node_outputs),
                _slots_to_mapping_edges(network, edge_outputs),
            )
        node_values = _node_slots(network, node_outputs)
        edge_values, stray_edges = _edge_slots(network, edge_outputs)
        if self.labels_nodes:
            missing = [v for v in range(network.n) if node_values[v] is MISSING]
            if missing:
                return ValidationResult(False, f"missing node outputs for {missing[:5]}")
        if self.labels_edges:
            missing_slots = [i for i in range(network.m) if edge_values[i] is MISSING]
            if missing_slots:
                # Materialise the tuple edge view only on the failure path —
                # a complete assignment (the overwhelmingly common case)
                # never pays for per-edge tuples here.
                edges = network.edges
                missing_edges = [edges[i] for i in missing_slots[:5]]
                return ValidationResult(False, f"missing edge outputs for {missing_edges}")
        return self.csr_validator(network, node_values, edge_values, stray_edges)

    def validate_surviving(
        self,
        network: Any,
        node_outputs: "Optional[Union[Mapping[int, Any], Sequence[Any]]]" = None,
        edge_outputs: "Optional[Union[Mapping[Edge, Any], Sequence[Any]]]" = None,
        crashed: Sequence[int] = (),
    ) -> ValidationResult:
        """Score outputs on the surviving subgraph after crash-stop faults.

        ``crashed`` lists the dead vertices.  Missing outputs are only
        required of survivors (node problems) and survivor–survivor edges
        (edge problems): a crashed node that never committed — or an edge
        whose endpoint died before the edge was decided — is excused, not a
        failure.  Whatever a crashed node *did* commit before dying stands
        and is visible to the validator (it can, e.g., cover a surviving
        MIS non-member).

        Problems registering a :attr:`surviving_validator` get the
        fault-aware semantics; otherwise the outputs are strictly
        re-validated on the induced survivor subnetwork (correct for purely
        local constraints such as colouring, conservative for problems with
        maximality-style constraints).
        """
        crashed_set = frozenset(crashed)
        if not crashed_set:
            return self.validate_network(network, node_outputs, edge_outputs)
        node_values = _node_slots(network, node_outputs)
        edge_values, _stray = _edge_slots(network, edge_outputs)
        if self.labels_nodes:
            missing = [
                v
                for v in range(network.n)
                if v not in crashed_set and node_values[v] is MISSING
            ]
            if missing:
                return ValidationResult(
                    False, f"missing node outputs for survivors {missing[:5]}"
                )
        if self.labels_edges:
            missing_edges = [
                e
                for i, e in enumerate(network.edges)
                if edge_values[i] is MISSING
                and e[0] not in crashed_set
                and e[1] not in crashed_set
            ]
            if missing_edges:
                return ValidationResult(
                    False,
                    f"missing edge outputs for surviving edges {missing_edges[:5]}",
                )
        if self.surviving_validator is not None:
            return self.surviving_validator(network, node_values, edge_values, crashed_set)
        return self._validate_on_survivor_subnetwork(
            network, node_values, edge_values, crashed_set
        )

    def validate_induced(
        self,
        network: Any,
        node_outputs: "Optional[Union[Mapping[int, Any], Sequence[Any]]]" = None,
        edge_outputs: "Optional[Union[Mapping[Edge, Any], Sequence[Any]]]" = None,
        crashed: Sequence[int] = (),
        *,
        node_committed: Optional[Any] = None,
        edge_committed: Optional[Any] = None,
    ) -> ValidationResult:
        """Strictly validate outputs on the induced survivor subnetwork.

        Unlike :meth:`validate_surviving`, this never consults the (lenient)
        :attr:`surviving_validator`: commitments of crashed nodes are
        discarded and the survivors' outputs must stand on their own on the
        induced subgraph.  Self-stabilisation metrics use this form — a
        recovered configuration must be valid *for the survivors alone*, or
        "recovery" would be vacuously credited to pre-crash commitments.

        ``node_committed`` / ``edge_committed`` are optional numpy bool
        masks accompanying array-form outputs (slot committed iff the mask
        is True; values of uncommitted slots are ignored).  The array
        engine passes its state arrays this way so per-round recovery
        checks of problems with an :attr:`induced_validator` stay fully
        vectorised — no ``MISSING``-marked Python list is ever built.
        """
        crashed_set = frozenset(crashed)
        if crashed_set and self.induced_validator is not None:
            node_values, node_mask = _commit_arrays(
                network.n, network, node_outputs, node_committed, nodes=True
            )
            edge_values, edge_mask = _commit_arrays(
                network.m, network, edge_outputs, edge_committed, nodes=False
            )
            return self.induced_validator(
                network, node_values, node_mask, edge_values, edge_mask, crashed_set
            )
        if node_committed is not None:
            node_outputs = _masked_slots(node_outputs, node_committed)
        if edge_committed is not None:
            edge_outputs = _masked_slots(edge_outputs, edge_committed)
        if not crashed_set:
            return self.validate_network(network, node_outputs, edge_outputs)
        node_values = _node_slots(network, node_outputs)
        edge_values, _stray = _edge_slots(network, edge_outputs)
        return self._validate_on_survivor_subnetwork(
            network, node_values, edge_values, crashed_set
        )

    def _validate_on_survivor_subnetwork(
        self,
        network: Any,
        node_values: Sequence[Any],
        edge_values: Sequence[Any],
        crashed_set: "frozenset[int]",
    ) -> ValidationResult:
        """Strict fallback: re-validate on the induced survivor subnetwork.

        Outputs are re-indexed to the subnetwork's vertex numbering
        (``subnetwork`` relabels sorted survivors to ``0..k-1``).  Output
        *values* are passed through unchanged, so problems whose values
        reference vertex ids (e.g. orientation heads) need a dedicated
        surviving validator instead of this fallback.
        """
        survivors = [v for v in range(network.n) if v not in crashed_set]
        sub = network.subnetwork(survivors)
        relabel = {v: i for i, v in enumerate(survivors)}
        sub_nodes = {
            relabel[v]: node_values[v]
            for v in survivors
            if node_values[v] is not MISSING
        }
        sub_edges: Dict[Edge, Any] = {}
        for i, (u, v) in enumerate(network.edges):
            value = edge_values[i]
            if value is MISSING or u in crashed_set or v in crashed_set:
                continue
            a, b = relabel[u], relabel[v]
            sub_edges[(a, b) if a < b else (b, a)] = value
        return self.validate_network(sub, sub_nodes, sub_edges)


def _canon(u: int, v: int) -> Edge:
    return (u, v) if u < v else (v, u)


# ---------------------------------------------------------------------- #
# Slot normalisation for the CSR fast path
# ---------------------------------------------------------------------- #


def _node_slots(
    network: Any, node_outputs: "Optional[Union[Mapping[int, Any], Sequence[Any]]]"
) -> List[Any]:
    """Per-vertex value slots (``MISSING`` where absent) from either form.

    Mapping keys outside ``0..n-1`` are ignored, as the networkx reference
    path ignores them (it only ever consults real vertices).
    """
    n = network.n
    if node_outputs is None:
        return [MISSING] * n
    if isinstance(node_outputs, Mapping):
        get = node_outputs.get
        return [get(v, MISSING) for v in range(n)]
    # Trust lists (e.g. the slot lists ExecutionTrace.validate just built)
    # instead of re-copying them; validators never mutate their inputs.
    values = node_outputs if isinstance(node_outputs, list) else list(node_outputs)
    if len(values) != n:
        raise ValueError(f"expected {n} node output slots, got {len(values)}")
    return values


def _edge_slots(
    network: Any, edge_outputs: "Optional[Union[Mapping[Edge, Any], Sequence[Any]]]"
) -> Tuple[List[Any], List[Tuple[Edge, Any]]]:
    """Per-edge value slots in :attr:`Network.edges` order, plus stray entries.

    Mapping keys must be canonical ``(u, v), u < v`` tuples; keys that are
    not edges of the network are returned as ``stray_edges`` so validators
    can reproduce the reference behaviour for corrupted assignments (e.g. a
    matched edge that is not in the graph).
    """
    m = network.m
    if edge_outputs is None:
        return [MISSING] * m, []
    if isinstance(edge_outputs, Mapping):
        get = edge_outputs.get
        slots = [get(e, MISSING) for e in network.edges]
        strays: List[Tuple[Edge, Any]] = []
        if sum(1 for s in slots if s is not MISSING) != len(edge_outputs):
            known = set(network.edges)
            # Entries whose value is the MISSING sentinel are "never
            # committed" and therefore not strays — the nx reference path
            # strips them before it ever consults the graph.
            strays = [
                (e, value)
                for e, value in edge_outputs.items()
                if e not in known and value is not MISSING
            ]
        return slots, strays
    values = edge_outputs if isinstance(edge_outputs, list) else list(edge_outputs)
    if len(values) != m:
        raise ValueError(f"expected {m} edge output slots, got {len(values)}")
    return values, []


def _masked_slots(outputs: Optional[Any], committed: Any) -> List[Any]:
    """``MISSING``-marked slot list from an array + committed-mask pair."""
    count = len(committed)
    if outputs is None:
        return [MISSING] * count
    slots: List[Any] = list(outputs)
    for i in range(count):
        if not committed[i]:
            slots[i] = MISSING
    return slots


def _commit_arrays(
    count: int,
    network: Any,
    outputs: Optional[Any],
    committed: Optional[Any],
    *,
    nodes: bool,
) -> Tuple[Any, Any]:
    """``(values, committed)`` bool-array pair for an induced validator.

    Array-form inputs (``committed`` mask given) pass through as numpy
    views; mapping / ``MISSING``-marked sequence inputs are normalised
    through the usual slot helpers first.  Values are coerced to bool —
    induced validators are registered only for boolean-output problems.
    """
    import numpy as np

    if committed is not None:
        mask = np.asarray(committed, dtype=bool)
        if outputs is None:
            return np.zeros(count, dtype=bool), mask
        return np.asarray(outputs, dtype=bool), mask
    if outputs is None:
        return np.zeros(count, dtype=bool), np.zeros(count, dtype=bool)
    slots = (
        _node_slots(network, outputs) if nodes else _edge_slots(network, outputs)[0]
    )
    mask = np.fromiter((v is not MISSING for v in slots), dtype=bool, count=count)
    values = np.fromiter(
        (v is not MISSING and bool(v) for v in slots), dtype=bool, count=count
    )
    return values, mask


def _slots_to_mapping_nodes(
    network: Any, node_outputs: "Optional[Union[Mapping[int, Any], Sequence[Any]]]"
) -> Mapping[int, Any]:
    if node_outputs is None:
        return {}
    if isinstance(node_outputs, Mapping):
        return node_outputs
    return {v: value for v, value in enumerate(node_outputs) if value is not MISSING}


def _slots_to_mapping_edges(
    network: Any, edge_outputs: "Optional[Union[Mapping[Edge, Any], Sequence[Any]]]"
) -> Mapping[Edge, Any]:
    if edge_outputs is None:
        return {}
    if isinstance(edge_outputs, Mapping):
        return edge_outputs
    edges = network.edges
    return {edges[i]: value for i, value in enumerate(edge_outputs) if value is not MISSING}


# ---------------------------------------------------------------------- #
# Independent sets, MIS and ruling sets
# ---------------------------------------------------------------------- #


def is_independent_set(graph: nx.Graph, selected: Mapping[int, Any]) -> bool:
    """Whether the nodes with truthy output form an independent set."""
    return all(not (selected.get(u) and selected.get(v)) for u, v in graph.edges())


def is_maximal_independent_set(graph: nx.Graph, selected: Mapping[int, Any]) -> ValidationResult:
    """Check that the truthy nodes form a *maximal* independent set."""
    if not is_independent_set(graph, selected):
        return ValidationResult(False, "selected set is not independent")
    for v in graph.nodes():
        if selected.get(v):
            continue
        if not any(selected.get(u) for u in graph.neighbors(v)):
            return ValidationResult(False, f"node {v} is uncovered (not maximal)")
    return ValidationResult(True)


def is_ruling_set(
    graph: nx.Graph, selected: Mapping[int, Any], alpha: int, beta: int
) -> ValidationResult:
    """Check an ``(α, β)``-ruling set.

    Any two selected nodes must be at distance ≥ α and every unselected node
    must have a selected node within distance ≤ β.
    """
    members = [v for v in graph.nodes() if selected.get(v)]
    member_set = set(members)
    if not members and graph.number_of_nodes() > 0:
        return ValidationResult(False, "ruling set is empty")
    # Domination: BFS from all members simultaneously up to depth beta.
    dist: Dict[int, int] = {v: 0 for v in members}
    frontier = list(members)
    depth = 0
    while frontier and depth < beta:
        depth += 1
        new_frontier = []
        for v in frontier:
            for u in graph.neighbors(v):
                if u not in dist:
                    dist[u] = depth
                    new_frontier.append(u)
        frontier = new_frontier
    uncovered = [v for v in graph.nodes() if v not in dist]
    if uncovered:
        return ValidationResult(
            False, f"{len(uncovered)} nodes (e.g. {uncovered[:5]}) have no ruler within distance {beta}"
        )
    # Independence at distance alpha: BFS from each member up to depth alpha-1.
    for s in members:
        seen = {s: 0}
        frontier = [s]
        for d in range(1, alpha):
            nxt = []
            for v in frontier:
                for u in graph.neighbors(v):
                    if u not in seen:
                        seen[u] = d
                        nxt.append(u)
                        if u in member_set and u != s:
                            return ValidationResult(
                                False,
                                f"rulers {s} and {u} are at distance {d} < {alpha}",
                            )
            frontier = nxt
    return ValidationResult(True)


def _selected_flags(n: int, node_values: Sequence[Any]) -> bytearray:
    """Byte flags of the vertices whose slot value is present and truthy."""
    flags = bytearray(n)
    for v in range(n):
        value = node_values[v]
        if value is not MISSING and value:
            flags[v] = 1
    return flags


def _independence_violated(network: Any, selected: bytearray) -> bool:
    """Whether any edge has both endpoints selected.

    Vectorised over the network's endpoint arrays when it has them (one
    fancy-indexed AND instead of a tuple-per-edge scan — the difference
    between milliseconds and seconds at m = 5·10⁶); the tuple scan remains
    for duck-typed networks without :meth:`edge_endpoints`.  Verdicts are
    identical either way.
    """
    endpoints = getattr(network, "edge_endpoints", None)
    if endpoints is not None:
        import numpy as np

        us, vs = endpoints()
        if len(us) == 0:
            return False
        flags = np.frombuffer(selected, dtype=np.uint8)
        return bool(np.any(flags[us] & flags[vs]))
    return any(selected[u] and selected[v] for u, v in network.edges)


def csr_is_independent_set(network: Any, node_values: Sequence[Any]) -> bool:
    """CSR-native :func:`is_independent_set` (slot-sequence input)."""
    selected = _selected_flags(network.n, node_values)
    return not _independence_violated(network, selected)


def csr_is_maximal_independent_set(
    network: Any, node_values: Sequence[Any]
) -> ValidationResult:
    """CSR-native :func:`is_maximal_independent_set`.

    Independence is checked vectorised over the endpoint arrays; maximality
    scans each unselected vertex's CSR row for a selected neighbour.
    """
    n = network.n
    selected = _selected_flags(n, node_values)
    if _independence_violated(network, selected):
        return ValidationResult(False, "selected set is not independent")
    indptr = network.indptr
    indices = network.indices
    for v in range(n):
        if selected[v]:
            continue
        for k in range(indptr[v], indptr[v + 1]):
            if selected[indices[k]]:
                break
        else:
            return ValidationResult(False, f"node {v} is uncovered (not maximal)")
    return ValidationResult(True)


def csr_is_ruling_set(
    network: Any, node_values: Sequence[Any], alpha: int, beta: int
) -> ValidationResult:
    """CSR-native :func:`is_ruling_set`: array-stamped BFS, no dict frontiers."""
    n = network.n
    member_flags = _selected_flags(n, node_values)
    members = [v for v in range(n) if member_flags[v]]
    if not members and n > 0:
        return ValidationResult(False, "ruling set is empty")
    indptr = network.indptr
    indices = network.indices
    # Domination: BFS from all members simultaneously up to depth beta.
    covered = bytearray(n)
    for v in members:
        covered[v] = 1
    frontier = list(members)
    reached = len(members)
    depth = 0
    while frontier and depth < beta:
        depth += 1
        new_frontier: List[int] = []
        for v in frontier:
            for k in range(indptr[v], indptr[v + 1]):
                u = indices[k]
                if not covered[u]:
                    covered[u] = 1
                    new_frontier.append(u)
        reached += len(new_frontier)
        frontier = new_frontier
    if reached < n:
        uncovered = [v for v in range(n) if not covered[v]]
        return ValidationResult(
            False,
            f"{len(uncovered)} nodes (e.g. {uncovered[:5]}) have no ruler within distance {beta}",
        )
    # Independence at distance alpha: BFS from each member up to depth
    # alpha-1.  A shared stamp array replaces the per-member visited dict so
    # the total cost is the BFS work itself, not O(n) re-zeroing per member.
    stamps = [0] * n
    token = 0
    for s in members:
        token += 1
        stamps[s] = token
        frontier = [s]
        for d in range(1, alpha):
            nxt: List[int] = []
            for v in frontier:
                for k in range(indptr[v], indptr[v + 1]):
                    u = indices[k]
                    if stamps[u] != token:
                        stamps[u] = token
                        nxt.append(u)
                        if member_flags[u] and u != s:
                            return ValidationResult(
                                False,
                                f"rulers {s} and {u} are at distance {d} < {alpha}",
                            )
            frontier = nxt
    return ValidationResult(True)


def csr_is_surviving_ruling_set(
    network: Any,
    node_values: Sequence[Any],
    crashed: "frozenset[int]",
    alpha: int,
    beta: int,
) -> ValidationResult:
    """``(α, β)``-ruling set scored on the surviving subgraph after crashes.

    * every survivor must have committed (checked by the caller; crashed
      nodes are excused),
    * **independence** is required between *surviving* rulers only, at
      distance ≥ α measured through surviving vertices — paths through a
      corpse no longer exist, so they cannot bring two live rulers "close",
    * **domination**: every surviving non-member needs a committed ruler
      within distance ≤ β, where the ruler itself may be crashed (its
      commitment stands — the survivor retired because of it, exactly the
      crash-stop concession :func:`csr_is_surviving_mis` makes for
      coverage) but every *relay* vertex on the path must be alive: coverage
      is a property of the current surviving configuration, not of paths
      that died with their relays.
    """
    n = network.n
    member_flags = _selected_flags(n, node_values)
    alive = bytearray(1 for _ in range(n))
    for v in crashed:
        alive[v] = 0
    members = [v for v in range(n) if member_flags[v]]
    if not any(alive[v] for v in range(n)):
        return ValidationResult(True)
    if not members:
        return ValidationResult(False, "ruling set is empty")
    indptr = network.indptr
    indices = network.indices
    # Domination: BFS from every committed member (alive or crashed), but
    # only alive vertices relay the frontier onward.
    covered = bytearray(n)
    for v in members:
        covered[v] = 1
    frontier = list(members)
    depth = 0
    while frontier and depth < beta:
        depth += 1
        new_frontier: List[int] = []
        for v in frontier:
            for k in range(indptr[v], indptr[v + 1]):
                u = indices[k]
                if not covered[u]:
                    covered[u] = 1
                    if alive[u]:
                        new_frontier.append(u)
        frontier = new_frontier
    uncovered = [v for v in range(n) if alive[v] and not covered[v]]
    if uncovered:
        return ValidationResult(
            False,
            f"{len(uncovered)} surviving nodes (e.g. {uncovered[:5]}) have no "
            f"ruler within distance {beta}",
        )
    # Independence between surviving rulers, through surviving vertices only.
    surviving_members = [v for v in members if alive[v]]
    stamps = [0] * n
    token = 0
    for s in surviving_members:
        token += 1
        stamps[s] = token
        frontier = [s]
        for d in range(1, alpha):
            nxt: List[int] = []
            for v in frontier:
                for k in range(indptr[v], indptr[v + 1]):
                    u = indices[k]
                    if alive[u] and stamps[u] != token:
                        stamps[u] = token
                        nxt.append(u)
                        if member_flags[u] and u != s:
                            return ValidationResult(
                                False,
                                f"surviving rulers {s} and {u} are at distance {d} < {alpha}",
                            )
            frontier = nxt
    return ValidationResult(True)


def csr_is_surviving_mis(
    network: Any, node_values: Sequence[Any], crashed: "frozenset[int]"
) -> ValidationResult:
    """MIS scored on the surviving subgraph after crash-stop faults.

    * every survivor must have committed (checked by the caller,
      :meth:`ProblemSpec.validate_surviving`; crashed nodes are excused),
    * independence is required on **survivor–survivor** edges only (a
      survivor may legitimately sit next to a crashed ``True`` node it
      never heard retire),
    * a ``False`` survivor is covered iff *some* neighbour — surviving or
      crashed — committed ``True``.  This is exact for crash-stop faults:
      any neighbour that caused a ``False`` commit had itself committed
      ``True`` before announcing, so counting committed-``True`` crashed
      neighbours repairs maximality precisely.
    """
    n = network.n
    selected = _selected_flags(n, node_values)
    endpoints = getattr(network, "edge_endpoints", None)
    if endpoints is not None and network.m:
        import numpy as np

        us, vs = endpoints()
        flags = np.frombuffer(selected, dtype=np.uint8).astype(bool)
        alive = np.ones(n, dtype=bool)
        alive[list(crashed)] = False
        bad = flags[us] & flags[vs] & alive[us] & alive[vs]
        if bad.any():
            i = int(np.flatnonzero(bad)[0])
            return ValidationResult(
                False,
                f"surviving edge ({int(us[i])}, {int(vs[i])}) has both endpoints selected",
            )
    else:
        for u, v in network.edges:
            if selected[u] and selected[v] and u not in crashed and v not in crashed:
                return ValidationResult(
                    False, f"surviving edge ({u}, {v}) has both endpoints selected"
                )
    indptr = network.indptr
    indices = network.indices
    for v in range(n):
        if selected[v] or v in crashed:
            continue
        for k in range(indptr[v], indptr[v + 1]):
            if selected[indices[k]]:
                break
        else:
            return ValidationResult(
                False, f"surviving node {v} is uncovered (not maximal)"
            )
    return ValidationResult(True)


def csr_is_induced_mis(
    network: Any, node_values: Any, node_committed: Any, crashed: "frozenset[int]"
) -> ValidationResult:
    """MIS strictly validated on the induced survivor subgraph, vectorised.

    Verdict-identical to rebuilding ``network.subnetwork(survivors)`` and
    re-validating (the :meth:`ProblemSpec.validate_induced` fallback), but
    expressed as a handful of fancy-indexed array operations over the
    endpoint arrays — no subnetwork, no relabel dicts, no per-node loop:

    * crashed commitments are discarded (a dead ``True`` covers nobody),
    * every survivor must have committed,
    * independence is required over alive–alive edges,
    * every unselected survivor needs an alive selected neighbour.
    """
    import numpy as np

    n = network.n
    alive = np.ones(n, dtype=bool)
    if crashed:
        alive[list(crashed)] = False
    committed = np.asarray(node_committed, dtype=bool)
    missing = alive & ~committed
    if missing.any():
        bad = np.flatnonzero(missing)[:5].tolist()
        return ValidationResult(False, f"missing node outputs for survivors {bad}")
    selected = alive & committed & np.asarray(node_values, dtype=bool)
    us, vs = network.edge_endpoints()
    us = np.asarray(us)
    vs = np.asarray(vs)
    live = alive[us] & alive[vs]
    conflict = live & selected[us] & selected[vs]
    if conflict.any():
        i = int(np.flatnonzero(conflict)[0])
        return ValidationResult(
            False,
            f"surviving edge ({int(us[i])}, {int(vs[i])}) has both endpoints selected",
        )
    covered = np.zeros(n, dtype=bool)
    covered[us[live & selected[vs]]] = True
    covered[vs[live & selected[us]]] = True
    uncovered = alive & ~selected & ~covered
    if uncovered.any():
        v = int(np.flatnonzero(uncovered)[0])
        return ValidationResult(
            False, f"surviving node {v} is uncovered (not maximal)"
        )
    return ValidationResult(True)


def _mis_validator(
    graph: nx.Graph, node_outputs: Mapping[int, Any], _: Mapping[Edge, Any]
) -> ValidationResult:
    return is_maximal_independent_set(graph, node_outputs)


def _mis_csr_validator(
    network: Any,
    node_values: Sequence[Any],
    _edge_values: Sequence[Any],
    _strays: Sequence[Tuple[Edge, Any]],
) -> ValidationResult:
    return csr_is_maximal_independent_set(network, node_values)


def _mis_surviving_validator(
    network: Any,
    node_values: Sequence[Any],
    _edge_values: Sequence[Any],
    crashed: "frozenset[int]",
) -> ValidationResult:
    return csr_is_surviving_mis(network, node_values, crashed)


def _mis_induced_validator(
    network: Any,
    node_values: Any,
    node_committed: Any,
    _edge_values: Any,
    _edge_committed: Any,
    crashed: "frozenset[int]",
) -> ValidationResult:
    return csr_is_induced_mis(network, node_values, node_committed, crashed)


MIS = ProblemSpec(
    name="maximal-independent-set",
    labels_nodes=True,
    labels_edges=False,
    validator=_mis_validator,
    csr_validator=_mis_csr_validator,
    surviving_validator=_mis_surviving_validator,
    induced_validator=_mis_induced_validator,
)


def ruling_set(alpha: int, beta: int) -> ProblemSpec:
    """Problem spec for ``(α, β)``-ruling sets (node outputs are membership flags)."""
    if alpha < 1 or beta < 1:
        raise ValueError("ruling set parameters must be positive")

    def _validator(
        graph: nx.Graph, node_outputs: Mapping[int, Any], _: Mapping[Edge, Any]
    ) -> ValidationResult:
        return is_ruling_set(graph, node_outputs, alpha, beta)

    def _csr_validator(
        network: Any,
        node_values: Sequence[Any],
        _edge_values: Sequence[Any],
        _strays: Sequence[Tuple[Edge, Any]],
    ) -> ValidationResult:
        return csr_is_ruling_set(network, node_values, alpha, beta)

    def _surviving_validator(
        network: Any,
        node_values: Sequence[Any],
        _edge_values: Sequence[Any],
        crashed: "frozenset[int]",
    ) -> ValidationResult:
        return csr_is_surviving_ruling_set(network, node_values, crashed, alpha, beta)

    return ProblemSpec(
        name=f"({alpha},{beta})-ruling-set",
        labels_nodes=True,
        labels_edges=False,
        validator=_validator,
        params={"alpha": alpha, "beta": beta},
        csr_validator=_csr_validator,
        surviving_validator=_surviving_validator,
    )


# ---------------------------------------------------------------------- #
# Matchings
# ---------------------------------------------------------------------- #


def is_matching(graph: nx.Graph, edge_outputs: Mapping[Edge, Any]) -> bool:
    """Whether the truthy edges form a matching (no shared endpoint)."""
    matched_nodes = set()
    for (u, v), value in edge_outputs.items():
        if not value:
            continue
        if u in matched_nodes or v in matched_nodes:
            return False
        matched_nodes.add(u)
        matched_nodes.add(v)
    return True


def is_maximal_matching(graph: nx.Graph, edge_outputs: Mapping[Edge, Any]) -> ValidationResult:
    """Check that the truthy edges form a *maximal* matching of ``graph``."""
    for (u, v), value in edge_outputs.items():
        if value and not graph.has_edge(u, v):
            return ValidationResult(False, f"matched edge ({u}, {v}) is not in the graph")
    if not is_matching(graph, edge_outputs):
        return ValidationResult(False, "selected edges are not a matching")
    matched_nodes = set()
    for (u, v), value in edge_outputs.items():
        if value:
            matched_nodes.add(u)
            matched_nodes.add(v)
    for u, v in graph.edges():
        if u not in matched_nodes and v not in matched_nodes:
            return ValidationResult(False, f"edge ({u}, {v}) could be added (not maximal)")
    return ValidationResult(True)


def csr_is_matching(network: Any, edge_values: Sequence[Any]) -> bool:
    """CSR-native :func:`is_matching` (edge slots in ``network.edges`` order)."""
    matched = bytearray(network.n)
    for i, (u, v) in enumerate(network.edges):
        value = edge_values[i]
        if value is MISSING or not value:
            continue
        if matched[u] or matched[v]:
            return False
        matched[u] = 1
        matched[v] = 1
    return True


def csr_is_maximal_matching(
    network: Any,
    edge_values: Sequence[Any],
    stray_edges: Sequence[Tuple[Edge, Any]] = (),
) -> ValidationResult:
    """CSR-native :func:`is_maximal_matching`.

    ``stray_edges`` carries entries of a mapping input that were not edges of
    the network; a truthy stray reproduces the reference "matched edge is not
    in the graph" failure.
    """
    for (u, v), value in stray_edges:
        if value:
            return ValidationResult(False, f"matched edge ({u}, {v}) is not in the graph")
    matched = bytearray(network.n)
    edges = network.edges
    for i, (u, v) in enumerate(edges):
        value = edge_values[i]
        if value is MISSING or not value:
            continue
        if matched[u] or matched[v]:
            return ValidationResult(False, "selected edges are not a matching")
        matched[u] = 1
        matched[v] = 1
    for u, v in edges:
        if not matched[u] and not matched[v]:
            return ValidationResult(False, f"edge ({u}, {v}) could be added (not maximal)")
    return ValidationResult(True)


def csr_is_surviving_maximal_matching(
    network: Any, edge_values: Sequence[Any], crashed: "frozenset[int]"
) -> ValidationResult:
    """Maximal matching scored on the surviving subgraph after crashes.

    * every survivor–survivor edge must have committed (checked by the
      caller; edges with a crashed endpoint are excused),
    * the matching constraint (≤ 1 incident ``True`` edge) is enforced for
      **all** nodes over all ``True`` edges — a crashed node cannot be
      matched twice either, its surviving partners both believe the match,
    * a ``False`` survivor–survivor edge is justified iff one endpoint is
      matched via *some* ``True`` edge, possibly towards a crashed node
      (the match happened before the partner died; that does not free the
      surviving endpoint).
    """
    matched = bytearray(network.n)
    edges = network.edges
    for i, (u, v) in enumerate(edges):
        value = edge_values[i]
        if value is MISSING or not value:
            continue
        if matched[u] or matched[v]:
            return ValidationResult(False, "selected edges are not a matching")
        matched[u] = 1
        matched[v] = 1
    for i, (u, v) in enumerate(edges):
        if u in crashed or v in crashed:
            continue
        if not matched[u] and not matched[v]:
            return ValidationResult(
                False, f"surviving edge ({u}, {v}) could be added (not maximal)"
            )
    return ValidationResult(True)


def csr_is_induced_maximal_matching(
    network: Any, edge_values: Any, edge_committed: Any, crashed: "frozenset[int]"
) -> ValidationResult:
    """Maximal matching strictly validated on the induced survivor subgraph.

    The vectorised twin of re-validating on ``network.subnetwork``
    (:meth:`ProblemSpec.validate_induced` fallback): commitments on edges
    with a crashed endpoint are discarded, every alive–alive edge must have
    committed, the selected alive–alive edges must form a matching, and
    every unselected alive–alive edge needs an endpoint matched by a
    selected alive–alive edge.
    """
    import numpy as np

    n = network.n
    alive = np.ones(n, dtype=bool)
    if crashed:
        alive[list(crashed)] = False
    us, vs = network.edge_endpoints()
    us = np.asarray(us)
    vs = np.asarray(vs)
    live = alive[us] & alive[vs]
    committed = np.asarray(edge_committed, dtype=bool)
    missing = live & ~committed
    if missing.any():
        i = int(np.flatnonzero(missing)[0])
        return ValidationResult(
            False,
            f"missing edge outputs for surviving edges "
            f"[({int(us[i])}, {int(vs[i])})]",
        )
    selected = live & committed & np.asarray(edge_values, dtype=bool)
    matched_degree = np.bincount(us[selected], minlength=n) + np.bincount(
        vs[selected], minlength=n
    )
    if (matched_degree > 1).any():
        return ValidationResult(False, "selected edges are not a matching")
    matched = matched_degree > 0
    addable = live & ~selected & ~matched[us] & ~matched[vs]
    if addable.any():
        i = int(np.flatnonzero(addable)[0])
        return ValidationResult(
            False,
            f"surviving edge ({int(us[i])}, {int(vs[i])}) could be added "
            f"(not maximal)",
        )
    return ValidationResult(True)


def _matching_validator(
    graph: nx.Graph, _: Mapping[int, Any], edge_outputs: Mapping[Edge, Any]
) -> ValidationResult:
    return is_maximal_matching(graph, edge_outputs)


def _matching_csr_validator(
    network: Any,
    _node_values: Sequence[Any],
    edge_values: Sequence[Any],
    stray_edges: Sequence[Tuple[Edge, Any]],
) -> ValidationResult:
    return csr_is_maximal_matching(network, edge_values, stray_edges)


def _matching_surviving_validator(
    network: Any,
    _node_values: Sequence[Any],
    edge_values: Sequence[Any],
    crashed: "frozenset[int]",
) -> ValidationResult:
    return csr_is_surviving_maximal_matching(network, edge_values, crashed)


def _matching_induced_validator(
    network: Any,
    _node_values: Any,
    _node_committed: Any,
    edge_values: Any,
    edge_committed: Any,
    crashed: "frozenset[int]",
) -> ValidationResult:
    return csr_is_induced_maximal_matching(network, edge_values, edge_committed, crashed)


MAXIMAL_MATCHING = ProblemSpec(
    name="maximal-matching",
    labels_nodes=False,
    labels_edges=True,
    validator=_matching_validator,
    csr_validator=_matching_csr_validator,
    surviving_validator=_matching_surviving_validator,
    induced_validator=_matching_induced_validator,
)


# ---------------------------------------------------------------------- #
# Colouring
# ---------------------------------------------------------------------- #


def is_proper_coloring(
    graph: nx.Graph, node_outputs: Mapping[int, Any], num_colors: Optional[int] = None
) -> ValidationResult:
    """Check a proper vertex colouring, optionally bounding the palette size."""
    for u, v in graph.edges():
        if node_outputs.get(u) == node_outputs.get(v):
            return ValidationResult(False, f"edge ({u}, {v}) is monochromatic")
    if num_colors is not None:
        used = {node_outputs[v] for v in graph.nodes()}
        bad = [c for c in used if not (isinstance(c, int) and 0 <= c < num_colors)]
        if bad:
            return ValidationResult(
                False, f"colours {bad[:5]} are outside the allowed palette [0, {num_colors})"
            )
    return ValidationResult(True)


def csr_is_proper_coloring(
    network: Any, node_values: Sequence[Any], num_colors: Optional[int] = None
) -> ValidationResult:
    """CSR-native :func:`is_proper_coloring` (slot-sequence input).

    Mirrors the reference semantics for partial assignments: two endpoints
    that are both missing compare equal (as two ``None`` defaults do on the
    networkx path) and hence flag the edge as monochromatic.
    """
    for u, v in network.edges:
        if node_values[u] == node_values[v]:
            return ValidationResult(False, f"edge ({u}, {v}) is monochromatic")
    if num_colors is not None:
        used = set(node_values)
        bad = [c for c in used if not (isinstance(c, int) and 0 <= c < num_colors)]
        if bad:
            return ValidationResult(
                False, f"colours {bad[:5]} are outside the allowed palette [0, {num_colors})"
            )
    return ValidationResult(True)


def csr_is_surviving_coloring(
    network: Any,
    node_values: Sequence[Any],
    crashed: "frozenset[int]",
    num_colors: Optional[int] = None,
) -> ValidationResult:
    """Proper colouring scored on the surviving subgraph after crashes.

    * every survivor must have committed (checked by the caller; crashed
      nodes are excused),
    * the monochromatic check runs on **survivor–survivor** edges only — a
      colour clash against a corpse constrains nobody (the edge is gone from
      the surviving subgraph),
    * the palette bound applies to the colours survivors actually use;
      whatever a crashed node committed before dying is not held against the
      configuration.
    """
    for u, v in network.edges:
        if u in crashed or v in crashed:
            continue
        if node_values[u] == node_values[v]:
            return ValidationResult(
                False, f"surviving edge ({u}, {v}) is monochromatic"
            )
    if num_colors is not None:
        used = {
            node_values[v]
            for v in range(network.n)
            if v not in crashed and node_values[v] is not MISSING
        }
        bad = [c for c in used if not (isinstance(c, int) and 0 <= c < num_colors)]
        if bad:
            return ValidationResult(
                False,
                f"colours {bad[:5]} are outside the allowed palette [0, {num_colors})",
            )
    return ValidationResult(True)


def coloring(num_colors: Optional[int] = None, name: Optional[str] = None) -> ProblemSpec:
    """Problem spec for proper vertex colouring with palette ``[0, num_colors)``."""

    def _validator(
        graph: nx.Graph, node_outputs: Mapping[int, Any], _: Mapping[Edge, Any]
    ) -> ValidationResult:
        return is_proper_coloring(graph, node_outputs, num_colors)

    def _csr_validator(
        network: Any,
        node_values: Sequence[Any],
        _edge_values: Sequence[Any],
        _strays: Sequence[Tuple[Edge, Any]],
    ) -> ValidationResult:
        return csr_is_proper_coloring(network, node_values, num_colors)

    def _surviving_validator(
        network: Any,
        node_values: Sequence[Any],
        _edge_values: Sequence[Any],
        crashed: "frozenset[int]",
    ) -> ValidationResult:
        return csr_is_surviving_coloring(network, node_values, crashed, num_colors)

    label = name or (f"{num_colors}-coloring" if num_colors is not None else "coloring")
    return ProblemSpec(
        name=label,
        labels_nodes=True,
        labels_edges=False,
        validator=_validator,
        params={"num_colors": num_colors},
        csr_validator=_csr_validator,
        surviving_validator=_surviving_validator,
    )


# ---------------------------------------------------------------------- #
# Sinkless orientation
# ---------------------------------------------------------------------- #


def is_sinkless_orientation(
    graph: nx.Graph, edge_outputs: Mapping[Edge, Any], min_degree: int = 3
) -> ValidationResult:
    """Check a sinkless orientation.

    The output of edge ``(u, v)`` (with ``u < v``) is the vertex the edge
    points *towards* (its head).  Every node of degree ≥ ``min_degree`` must
    have at least one outgoing edge.  Nodes of smaller degree are exempt, as
    in the paper the problem is only posed for minimum degree ≥ 3.
    """
    out_degree: Dict[int, int] = {v: 0 for v in graph.nodes()}
    for (u, v), head in edge_outputs.items():
        if not graph.has_edge(u, v):
            return ValidationResult(False, f"oriented edge ({u}, {v}) is not in the graph")
        if head not in (u, v):
            return ValidationResult(
                False, f"edge ({u}, {v}) oriented towards {head}, which is not an endpoint"
            )
        tail = u if head == v else v
        out_degree[tail] += 1
    for v in graph.nodes():
        if graph.degree(v) >= min_degree and out_degree[v] == 0:
            return ValidationResult(False, f"node {v} (degree {graph.degree(v)}) is a sink")
    return ValidationResult(True)


def csr_is_sinkless_orientation(
    network: Any,
    edge_values: Sequence[Any],
    stray_edges: Sequence[Tuple[Edge, Any]] = (),
    min_degree: int = 3,
) -> ValidationResult:
    """CSR-native :func:`is_sinkless_orientation`.

    Degrees come straight from the CSR row pointers; only an "has an outgoing
    edge" flag is tracked per node (the sink check needs nothing more).
    """
    if stray_edges:
        (u, v), _ = stray_edges[0]
        return ValidationResult(False, f"oriented edge ({u}, {v}) is not in the graph")
    n = network.n
    has_out = bytearray(n)
    for i, (u, v) in enumerate(network.edges):
        head = edge_values[i]
        if head is MISSING:
            continue
        if head == v:
            has_out[u] = 1
        elif head == u:
            has_out[v] = 1
        else:
            return ValidationResult(
                False, f"edge ({u}, {v}) oriented towards {head}, which is not an endpoint"
            )
    indptr = network.indptr
    for v in range(n):
        degree = indptr[v + 1] - indptr[v]
        if degree >= min_degree and not has_out[v]:
            return ValidationResult(False, f"node {v} (degree {degree}) is a sink")
    return ValidationResult(True)


def csr_is_surviving_sinkless_orientation(
    network: Any,
    edge_values: Sequence[Any],
    crashed: "frozenset[int]",
    min_degree: int = 3,
) -> ValidationResult:
    """Sinkless orientation scored on the surviving subgraph after crashes.

    * every survivor–survivor edge must have committed (checked by the
      caller; edges with a crashed endpoint are excused),
    * committed orientations must still point at an endpoint of their edge,
      wherever they sit — a malformed head is a bug, not a casualty,
    * the sink check applies to surviving nodes whose **original** degree is
      ≥ ``min_degree`` (the paper poses the problem for minimum degree ≥ 3;
      a crash does not re-pose it), and an outgoing edge whose head has
      since crashed still counts: under crash-stop the edge physically
      remains, the orientation was committed while both endpoints ran, and
      the tail is no sink along it.
    """
    n = network.n
    has_out = bytearray(n)
    for i, (u, v) in enumerate(network.edges):
        head = edge_values[i]
        if head is MISSING:
            continue
        if head == v:
            has_out[u] = 1
        elif head == u:
            has_out[v] = 1
        else:
            return ValidationResult(
                False,
                f"edge ({u}, {v}) oriented towards {head}, which is not an endpoint",
            )
    indptr = network.indptr
    for v in range(n):
        if v in crashed:
            continue
        degree = indptr[v + 1] - indptr[v]
        if degree >= min_degree and not has_out[v]:
            return ValidationResult(
                False, f"surviving node {v} (degree {degree}) is a sink"
            )
    return ValidationResult(True)


def _sinkless_validator(
    graph: nx.Graph, _: Mapping[int, Any], edge_outputs: Mapping[Edge, Any]
) -> ValidationResult:
    return is_sinkless_orientation(graph, edge_outputs)


def _sinkless_csr_validator(
    network: Any,
    _node_values: Sequence[Any],
    edge_values: Sequence[Any],
    stray_edges: Sequence[Tuple[Edge, Any]],
) -> ValidationResult:
    return csr_is_sinkless_orientation(network, edge_values, stray_edges)


def _sinkless_surviving_validator(
    network: Any,
    _node_values: Sequence[Any],
    edge_values: Sequence[Any],
    crashed: "frozenset[int]",
) -> ValidationResult:
    return csr_is_surviving_sinkless_orientation(network, edge_values, crashed)


SINKLESS_ORIENTATION = ProblemSpec(
    name="sinkless-orientation",
    labels_nodes=False,
    labels_edges=True,
    validator=_sinkless_validator,
    csr_validator=_sinkless_csr_validator,
    surviving_validator=_sinkless_surviving_validator,
)
