"""Graph problem specifications and validity checkers.

A :class:`ProblemSpec` declares which entities of the graph carry outputs
(nodes, edges, or both) and how to check a complete output assignment for
validity.  The declaration of *which* entities carry outputs matters beyond
validation: the paper's Definition 1 ties the completion time of a node to
the commitment of its own output **and** of the outputs of its incident
edges (and symmetrically for edges), so the averaged-complexity computation
in :mod:`repro.core.trace` consults the problem spec.

The concrete problems of the paper are provided as module-level constants /
factories:

* :data:`MIS` — maximal independent set (node outputs ``True``/``False``).
* :func:`ruling_set` — ``(α, β)``-ruling sets (node outputs).
* :data:`MAXIMAL_MATCHING` — maximal matching (edge outputs ``True``/``False``).
* :func:`coloring` — proper vertex colouring with a bound on the palette.
* :data:`SINKLESS_ORIENTATION` — sinkless orientation (edge outputs give the
  head of the edge; no node may have out-degree 0), for graphs of minimum
  degree ≥ 3 as in Theorem 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

import networkx as nx

__all__ = [
    "ValidationResult",
    "ProblemSpec",
    "MIS",
    "MAXIMAL_MATCHING",
    "SINKLESS_ORIENTATION",
    "ruling_set",
    "coloring",
    "is_independent_set",
    "is_maximal_independent_set",
    "is_ruling_set",
    "is_matching",
    "is_maximal_matching",
    "is_proper_coloring",
    "is_sinkless_orientation",
]

Edge = Tuple[int, int]


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of validating an output assignment."""

    valid: bool
    reason: str = ""

    def __bool__(self) -> bool:
        return self.valid


@dataclass(frozen=True)
class ProblemSpec:
    """Specification of a distributed graph problem.

    Attributes:
        name: human-readable problem name.
        labels_nodes: whether the problem assigns an output to every node.
        labels_edges: whether the problem assigns an output to every edge.
        validator: callable ``(graph, node_outputs, edge_outputs) -> ValidationResult``
            checking a complete assignment.  ``graph`` is a networkx graph on
            vertices ``0..n-1``; ``node_outputs`` maps vertex → output;
            ``edge_outputs`` maps canonical edge ``(u, v), u < v`` → output.
        params: free-form parameters of the problem instance (e.g. α, β for
            ruling sets, the palette size for colouring).
    """

    name: str
    labels_nodes: bool
    labels_edges: bool
    validator: Callable[[nx.Graph, Mapping[int, Any], Mapping[Edge, Any]], ValidationResult]
    params: Mapping[str, Any] = field(default_factory=dict)

    def validate(
        self,
        graph: nx.Graph,
        node_outputs: Optional[Mapping[int, Any]] = None,
        edge_outputs: Optional[Mapping[Edge, Any]] = None,
    ) -> ValidationResult:
        """Check a complete output assignment against this problem."""
        node_outputs = dict(node_outputs or {})
        edge_outputs = dict(edge_outputs or {})
        if self.labels_nodes:
            missing = [v for v in graph.nodes() if v not in node_outputs]
            if missing:
                return ValidationResult(False, f"missing node outputs for {missing[:5]}")
        if self.labels_edges:
            missing_edges = [
                e for e in (_canon(u, v) for u, v in graph.edges()) if e not in edge_outputs
            ]
            if missing_edges:
                return ValidationResult(False, f"missing edge outputs for {missing_edges[:5]}")
        return self.validator(graph, node_outputs, edge_outputs)


def _canon(u: int, v: int) -> Edge:
    return (u, v) if u < v else (v, u)


# ---------------------------------------------------------------------- #
# Independent sets, MIS and ruling sets
# ---------------------------------------------------------------------- #


def is_independent_set(graph: nx.Graph, selected: Mapping[int, Any]) -> bool:
    """Whether the nodes with truthy output form an independent set."""
    return all(not (selected.get(u) and selected.get(v)) for u, v in graph.edges())


def is_maximal_independent_set(graph: nx.Graph, selected: Mapping[int, Any]) -> ValidationResult:
    """Check that the truthy nodes form a *maximal* independent set."""
    if not is_independent_set(graph, selected):
        return ValidationResult(False, "selected set is not independent")
    for v in graph.nodes():
        if selected.get(v):
            continue
        if not any(selected.get(u) for u in graph.neighbors(v)):
            return ValidationResult(False, f"node {v} is uncovered (not maximal)")
    return ValidationResult(True)


def is_ruling_set(
    graph: nx.Graph, selected: Mapping[int, Any], alpha: int, beta: int
) -> ValidationResult:
    """Check an ``(α, β)``-ruling set.

    Any two selected nodes must be at distance ≥ α and every unselected node
    must have a selected node within distance ≤ β.
    """
    members = [v for v in graph.nodes() if selected.get(v)]
    member_set = set(members)
    if not members and graph.number_of_nodes() > 0:
        return ValidationResult(False, "ruling set is empty")
    # Domination: BFS from all members simultaneously up to depth beta.
    dist: Dict[int, int] = {v: 0 for v in members}
    frontier = list(members)
    depth = 0
    while frontier and depth < beta:
        depth += 1
        new_frontier = []
        for v in frontier:
            for u in graph.neighbors(v):
                if u not in dist:
                    dist[u] = depth
                    new_frontier.append(u)
        frontier = new_frontier
    uncovered = [v for v in graph.nodes() if v not in dist]
    if uncovered:
        return ValidationResult(
            False, f"{len(uncovered)} nodes (e.g. {uncovered[:5]}) have no ruler within distance {beta}"
        )
    # Independence at distance alpha: BFS from each member up to depth alpha-1.
    for s in members:
        seen = {s: 0}
        frontier = [s]
        for d in range(1, alpha):
            nxt = []
            for v in frontier:
                for u in graph.neighbors(v):
                    if u not in seen:
                        seen[u] = d
                        nxt.append(u)
                        if u in member_set and u != s:
                            return ValidationResult(
                                False,
                                f"rulers {s} and {u} are at distance {d} < {alpha}",
                            )
            frontier = nxt
    return ValidationResult(True)


def _mis_validator(
    graph: nx.Graph, node_outputs: Mapping[int, Any], _: Mapping[Edge, Any]
) -> ValidationResult:
    return is_maximal_independent_set(graph, node_outputs)


MIS = ProblemSpec(
    name="maximal-independent-set",
    labels_nodes=True,
    labels_edges=False,
    validator=_mis_validator,
)


def ruling_set(alpha: int, beta: int) -> ProblemSpec:
    """Problem spec for ``(α, β)``-ruling sets (node outputs are membership flags)."""
    if alpha < 1 or beta < 1:
        raise ValueError("ruling set parameters must be positive")

    def _validator(
        graph: nx.Graph, node_outputs: Mapping[int, Any], _: Mapping[Edge, Any]
    ) -> ValidationResult:
        return is_ruling_set(graph, node_outputs, alpha, beta)

    return ProblemSpec(
        name=f"({alpha},{beta})-ruling-set",
        labels_nodes=True,
        labels_edges=False,
        validator=_validator,
        params={"alpha": alpha, "beta": beta},
    )


# ---------------------------------------------------------------------- #
# Matchings
# ---------------------------------------------------------------------- #


def is_matching(graph: nx.Graph, edge_outputs: Mapping[Edge, Any]) -> bool:
    """Whether the truthy edges form a matching (no shared endpoint)."""
    matched_nodes = set()
    for (u, v), value in edge_outputs.items():
        if not value:
            continue
        if u in matched_nodes or v in matched_nodes:
            return False
        matched_nodes.add(u)
        matched_nodes.add(v)
    return True


def is_maximal_matching(graph: nx.Graph, edge_outputs: Mapping[Edge, Any]) -> ValidationResult:
    """Check that the truthy edges form a *maximal* matching of ``graph``."""
    for (u, v), value in edge_outputs.items():
        if value and not graph.has_edge(u, v):
            return ValidationResult(False, f"matched edge ({u}, {v}) is not in the graph")
    if not is_matching(graph, edge_outputs):
        return ValidationResult(False, "selected edges are not a matching")
    matched_nodes = set()
    for (u, v), value in edge_outputs.items():
        if value:
            matched_nodes.add(u)
            matched_nodes.add(v)
    for u, v in graph.edges():
        if u not in matched_nodes and v not in matched_nodes:
            return ValidationResult(False, f"edge ({u}, {v}) could be added (not maximal)")
    return ValidationResult(True)


def _matching_validator(
    graph: nx.Graph, _: Mapping[int, Any], edge_outputs: Mapping[Edge, Any]
) -> ValidationResult:
    return is_maximal_matching(graph, edge_outputs)


MAXIMAL_MATCHING = ProblemSpec(
    name="maximal-matching",
    labels_nodes=False,
    labels_edges=True,
    validator=_matching_validator,
)


# ---------------------------------------------------------------------- #
# Colouring
# ---------------------------------------------------------------------- #


def is_proper_coloring(
    graph: nx.Graph, node_outputs: Mapping[int, Any], num_colors: Optional[int] = None
) -> ValidationResult:
    """Check a proper vertex colouring, optionally bounding the palette size."""
    for u, v in graph.edges():
        if node_outputs.get(u) == node_outputs.get(v):
            return ValidationResult(False, f"edge ({u}, {v}) is monochromatic")
    if num_colors is not None:
        used = {node_outputs[v] for v in graph.nodes()}
        bad = [c for c in used if not (isinstance(c, int) and 0 <= c < num_colors)]
        if bad:
            return ValidationResult(
                False, f"colours {bad[:5]} are outside the allowed palette [0, {num_colors})"
            )
    return ValidationResult(True)


def coloring(num_colors: Optional[int] = None, name: Optional[str] = None) -> ProblemSpec:
    """Problem spec for proper vertex colouring with palette ``[0, num_colors)``."""

    def _validator(
        graph: nx.Graph, node_outputs: Mapping[int, Any], _: Mapping[Edge, Any]
    ) -> ValidationResult:
        return is_proper_coloring(graph, node_outputs, num_colors)

    label = name or (f"{num_colors}-coloring" if num_colors is not None else "coloring")
    return ProblemSpec(
        name=label,
        labels_nodes=True,
        labels_edges=False,
        validator=_validator,
        params={"num_colors": num_colors},
    )


# ---------------------------------------------------------------------- #
# Sinkless orientation
# ---------------------------------------------------------------------- #


def is_sinkless_orientation(
    graph: nx.Graph, edge_outputs: Mapping[Edge, Any], min_degree: int = 3
) -> ValidationResult:
    """Check a sinkless orientation.

    The output of edge ``(u, v)`` (with ``u < v``) is the vertex the edge
    points *towards* (its head).  Every node of degree ≥ ``min_degree`` must
    have at least one outgoing edge.  Nodes of smaller degree are exempt, as
    in the paper the problem is only posed for minimum degree ≥ 3.
    """
    out_degree: Dict[int, int] = {v: 0 for v in graph.nodes()}
    for (u, v), head in edge_outputs.items():
        if not graph.has_edge(u, v):
            return ValidationResult(False, f"oriented edge ({u}, {v}) is not in the graph")
        if head not in (u, v):
            return ValidationResult(
                False, f"edge ({u}, {v}) oriented towards {head}, which is not an endpoint"
            )
        tail = u if head == v else v
        out_degree[tail] += 1
    for v in graph.nodes():
        if graph.degree(v) >= min_degree and out_degree[v] == 0:
            return ValidationResult(False, f"node {v} (degree {graph.degree(v)}) is a sink")
    return ValidationResult(True)


def _sinkless_validator(
    graph: nx.Graph, _: Mapping[int, Any], edge_outputs: Mapping[Edge, Any]
) -> ValidationResult:
    return is_sinkless_orientation(graph, edge_outputs)


SINKLESS_ORIENTATION = ProblemSpec(
    name="sinkless-orientation",
    labels_nodes=False,
    labels_edges=True,
    validator=_sinkless_validator,
)
