"""Trial running, aggregation helpers, and the :class:`Experiment` facade.

Randomized averaged complexities are expectations, so a single execution is a
noisy estimate.  The helpers here run an algorithm several times (with
different seeds) on the same network, validate every produced solution, and
aggregate the traces into a :class:`~repro.core.metrics.ComplexityMeasurement`.

The whole trial pipeline stays free of networkx and per-entity dicts:
``validate=True`` checks each trace through the CSR-native fast path
(:meth:`ProblemSpec.validate_network` on the trace's array storage), so even
``n ≥ 10⁵`` trial batches never export the topology back to a
``networkx.Graph``.

The functions take an *algorithm factory* (a zero-argument callable returning
a fresh :class:`~repro.local.algorithm.NodeAlgorithm`) rather than an
algorithm instance, so that algorithms are free to keep per-execution
configuration on ``self`` without leaking state across trials.

:class:`Experiment` is the single documented entry point over the whole
generate → network → run → validate → measure plumbing.  It accepts graph
sources in every interchange form the lower layers understand —
ready-made :class:`Network` objects, legacy ``(n, edges)`` tuple pairs,
:class:`repro.graphs.edgelist.EdgeArrays` (the array-first interchange, built
through the vectorised numpy CSR path), networkx graphs, or zero-argument
callables producing any of those — and returns structured results: the
traces, per-trial validation verdicts, per-phase wall-clock timings, and a
:class:`ComplexityMeasurement` with tail quantiles.  A complete run is three
lines::

    >>> from repro.core import problems
    >>> from repro.core.experiment import Experiment
    >>> from repro.algorithms.mis.luby import LubyMIS
    >>> from repro.graphs.generators import fast_gnp_edges
    >>> result = Experiment(
    ...     problem=problems.MIS,
    ...     algorithm=LubyMIS,
    ...     graphs=fast_gnp_edges(10_000, 8 / 9_999, seed=3, as_arrays=True),
    ...     seeds=range(3),
    ... ).run()
    >>> run = result.runs[0]
    >>> run.ok, run.measurement.node_averaged <= run.measurement.worst_case
    (True, True)
"""

from __future__ import annotations

import inspect
import numbers
import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.errors import cell_deadline
from repro.core.metrics import DEFAULT_QUANTILES, ComplexityMeasurement, measure
from repro.core.problems import ProblemSpec
from repro.core.trace import ExecutionTrace
from repro.graphs.edgelist import EdgeArrays
from repro.local.algorithm import NodeAlgorithm
from repro.local.engine import ArrayEngine
from repro.local.faults import FaultSchedule
from repro.local.network import Network
from repro.local.runner import Runner

__all__ = [
    "run_trials",
    "evaluate",
    "trial_seed",
    "seed_schedule",
    "resolve_network",
    "resolve_engine",
    "Experiment",
    "ExperimentRun",
    "ExperimentResult",
]

#: Valid values of the ``engine`` knob shared by :func:`run_trials`,
#: :class:`Experiment` and :func:`repro.analysis.sweep.sweep`.
ENGINES = ("node", "array", "auto")


def resolve_engine(engine: str, algorithm: NodeAlgorithm) -> bool:
    """Whether ``algorithm`` should run on the array engine under ``engine``.

    ``"node"`` always uses the per-node coroutine
    :class:`~repro.local.runner.Runner` (the exact-reference path — traces
    stay seed-for-seed bit-identical to the vendored seed pipeline);
    ``"array"`` demands the vectorised
    :class:`~repro.local.engine.ArrayEngine` and raises ``TypeError`` when
    the algorithm has no array twin; ``"auto"`` picks the array engine
    exactly when ``algorithm.as_array_algorithm()`` returns one.
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    if engine == "node":
        return False
    supported = getattr(algorithm, "as_array_algorithm", lambda: None)() is not None
    if engine == "array" and not supported:
        raise TypeError(
            f"{type(algorithm).__name__} does not implement the ArrayAlgorithm "
            "protocol (as_array_algorithm() returned None); use engine='node' "
            "or engine='auto'"
        )
    return supported


def _faults_active(faults: Optional[FaultSchedule]) -> bool:
    """Whether ``faults`` actually injects anything (empty schedules are inert)."""
    return faults is not None and (bool(faults.crashes) or faults.has_message_faults)


def _array_supports_faults(algorithm: NodeAlgorithm) -> bool:
    """Whether ``algorithm``'s array twin implements fault-aware stepping."""
    twin = getattr(algorithm, "as_array_algorithm", lambda: None)()
    return twin is not None and getattr(twin, "supports_faults", False)


AlgorithmFactory = Callable[[], NodeAlgorithm]
#: A graph source the facade understands: a finished :class:`Network`, a
#: legacy ``(n, edges)`` pair, flat :class:`EdgeArrays` endpoints, a
#: networkx-like graph, or a zero-argument callable producing any of those.
#: Annotated as ``object`` (networkx is deliberately not imported here, so
#: the set is not expressible as a Union); dispatch happens at runtime in
#: :func:`resolve_network`.
GraphSource = object


def trial_seed(base_seed: int, trial: int) -> int:
    """Seed of trial ``trial`` for a batch with base seed ``base_seed``.

    This is the single definition of the per-trial seed schedule; the serial
    trial loop and the parallel sweep both use it, which is what makes the
    two paths produce identical RNG streams cell for cell.
    """
    return base_seed + trial


def seed_schedule(base_seed: int, trials: int) -> List[int]:
    """The explicit per-trial seed list derived from ``(base_seed, trials)``.

    Exactly the seeds :func:`run_trials` uses — the serialisable form of the
    schedule, recorded verbatim by the experiment service's provenance rows
    so a stored result names every seed that produced it.
    """
    return [trial_seed(base_seed, i) for i in range(trials)]


def run_trials(
    algorithm_factory: AlgorithmFactory,
    network: Network,
    problem: ProblemSpec,
    trials: int = 5,
    seed: int = 0,
    runner: Optional[Runner] = None,
    validate: bool = True,
    engine: str = "node",
    faults: Optional[FaultSchedule] = None,
    timeout_s: Optional[float] = None,
    batch_budget_bytes: Optional[int] = None,
) -> List[ExecutionTrace]:
    """Run ``trials`` independent executions and return their traces.

    Args:
        algorithm_factory: builds a fresh algorithm instance per trial.
        network: the communication graph.
        problem: problem specification used for termination, completion-time
            semantics, and (optionally) validation.
        trials: number of independent executions.
        seed: base seed; trial ``i`` uses ``seed + i``.
        runner: runner to use (a default strict runner when omitted).
        validate: assert that every trial produced a valid solution.
        engine: ``"node"`` (default) runs the per-node coroutine runner —
            the exact-reference path with seed-for-seed bit-identical
            traces; ``"array"`` runs the vectorised
            :class:`~repro.local.engine.ArrayEngine` (raising ``TypeError``
            for algorithms without an array twin); ``"auto"`` picks the
            array engine exactly when the algorithm implements the
            :class:`~repro.local.engine.ArrayAlgorithm` protocol.  The
            array engine follows its own documented PCG64 seed schedule, so
            its traces are reproducible but not bit-identical to the node
            path (see :mod:`repro.local.engine`).
        faults: optional :class:`~repro.local.faults.FaultSchedule` injected
            into every trial (the schedule is engine-independent, so trial
            ``i`` sees the same crash rounds and message fates on either
            engine).  Under ``engine="auto"``, an algorithm whose array twin
            does not implement fault-aware stepping silently falls back to
            the coroutine runner; ``engine="array"`` raises ``TypeError``
            for such algorithms, like the engine itself does.
        timeout_s: optional wall-clock budget in seconds for the whole batch
            of trials; on expiry a :class:`~repro.core.errors.CellTimeout`
            is raised (main-thread POSIX only — a no-op elsewhere).
        batch_budget_bytes: optional override of the trial-batched engine's
            chunk byte budget (:func:`repro.local.engine.batch_chunk`;
            default the engine's 24 MiB cache-residency model).  Batch-size
            invariance makes this a pure throughput knob — traces are
            bit-identical for every budget.

    Returns:
        One :class:`ExecutionTrace` per trial.
    """
    if trials < 1:
        raise ValueError("trials must be at least 1")
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    # Probe the first trial's instance for engine dispatch (and reuse it for
    # trial 0): the factory is called exactly `trials` times on every path,
    # so stateful factories see the same invocation count as before the
    # engine knob existed.
    probe: Optional[NodeAlgorithm] = None
    use_array = False
    if engine != "node":
        probe = algorithm_factory()
        use_array = resolve_engine(engine, probe)
        if use_array and engine == "auto" and _faults_active(faults):
            # "auto" prefers the array engine but never at the cost of
            # refusing a fault schedule the coroutine runner can honour.
            use_array = _array_supports_faults(probe)
    active_runner = runner or Runner()
    traces: List[ExecutionTrace] = []
    with cell_deadline(timeout_s, what=f"run_trials({trials} trials)"):
        if use_array:
            array_engine = ArrayEngine(
                max_rounds=active_runner.max_rounds, strict=active_runner.strict
            )
            # The factory is still invoked exactly `trials` times (documented
            # contract); each instance's array twin runs its trial.  When the
            # twin implements the batched protocol and no faults are active,
            # all trials step together over (T, n)/(T, m) arrays — traces are
            # bit-identical to the per-trial loop (batch-size invariance), so
            # this is purely a throughput decision.
            twins = [
                (probe if i == 0 else algorithm_factory()).as_array_algorithm()
                for i in range(trials)
            ]
            seeds = [trial_seed(seed, i) for i in range(trials)]
            if (
                trials > 1
                and not _faults_active(faults)
                and getattr(twins[0], "supports_batch", False)
            ):
                traces = array_engine.run_batch(
                    twins[0],
                    network,
                    problem,
                    seeds,
                    faults=faults,
                    budget_bytes=batch_budget_bytes,
                )
                if validate:
                    for trace in traces:
                        trace.require_valid()
                return traces
            for twin, trial_s in zip(twins, seeds):
                trace = array_engine.run(
                    twin, network, problem, seed=trial_s, faults=faults
                )
                if validate:
                    trace.require_valid()
                traces.append(trace)
            return traces
        for i in range(trials):
            algorithm = probe if (i == 0 and probe is not None) else algorithm_factory()
            trace = active_runner.run(
                algorithm, network, problem, seed=trial_seed(seed, i), faults=faults
            )
            if validate:
                trace.require_valid()
            traces.append(trace)
    return traces


def evaluate(
    algorithm_factory: AlgorithmFactory,
    network: Network,
    problem: ProblemSpec,
    trials: int = 5,
    seed: int = 0,
    runner: Optional[Runner] = None,
    validate: bool = True,
    engine: str = "node",
    faults: Optional[FaultSchedule] = None,
    timeout_s: Optional[float] = None,
    batch_budget_bytes: Optional[int] = None,
) -> ComplexityMeasurement:
    """Run trials and aggregate them into a single complexity measurement."""
    traces = run_trials(
        algorithm_factory,
        network,
        problem,
        trials=trials,
        seed=seed,
        runner=runner,
        validate=validate,
        engine=engine,
        faults=faults,
        timeout_s=timeout_s,
        batch_budget_bytes=batch_budget_bytes,
    )
    return measure(traces)


# ---------------------------------------------------------------------- #
# The Experiment facade
# ---------------------------------------------------------------------- #


def resolve_network(
    source: GraphSource, seed: int = 0, id_scheme: str = "permuted"
) -> Network:
    """Turn any supported graph source into a :class:`Network`.

    Accepts a ready-made :class:`Network` (returned as-is), an
    :class:`EdgeArrays` (built through the vectorised
    :meth:`Network.from_endpoint_arrays` CSR path), a legacy ``(n, edges)``
    pair, a networkx-like graph (anything with ``number_of_nodes()``;
    duck-typed so this module never imports networkx), or a zero-argument
    callable producing any of those.  Equivalent sources produce identical
    networks for the same ``seed`` — the same guarantee
    :func:`repro.analysis.sweep.network_from` gives.
    """
    if callable(source) and not isinstance(source, Network):
        source = source()
    if isinstance(source, Network):
        return source
    if isinstance(source, EdgeArrays):
        return Network.from_edge_arrays(source, id_scheme=id_scheme, rng=random.Random(seed))
    if isinstance(source, tuple) and len(source) == 2:
        n, edges = source
        return Network.from_edge_list(n, edges, id_scheme=id_scheme, rng=random.Random(seed))
    if callable(getattr(source, "number_of_nodes", None)):
        return Network.from_graph(source, id_scheme=id_scheme, rng=random.Random(seed))
    raise TypeError(
        f"cannot interpret {type(source).__name__!r} as a graph source "
        "(expected Network, EdgeArrays, (n, edges), a networkx graph, or a "
        "callable producing one)"
    )


@dataclass(frozen=True)
class ExperimentRun:
    """One graph's worth of an :class:`Experiment`: traces, verdicts, measurement.

    Attributes:
        name: the graph's display name (mapping key, provenance family, or
            positional fallback).
        network: the resolved communication graph.
        problem: the problem spec the trials were checked against.
        seeds: the per-trial seeds, in trial order.
        traces: one :class:`ExecutionTrace` per trial.
        verdicts: per-trial validation verdicts (aligned with ``traces``).
        measurement: the aggregate complexity measurement (with quantiles
            when the experiment asked for them).
        timings: per-phase wall-clock seconds (``generate_s`` for callable
            sources, ``network_s``, ``runner_s``, ``validate_s``,
            ``measure_s``, ``total_s``).
    """

    name: str
    network: Network
    problem: ProblemSpec
    seeds: Tuple[int, ...]
    traces: Tuple[ExecutionTrace, ...]
    verdicts: Tuple[bool, ...]
    measurement: ComplexityMeasurement
    timings: Dict[str, float]

    @property
    def ok(self) -> bool:
        """Whether every trial produced a valid solution."""
        return all(self.verdicts)

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary form (one table row per graph)."""
        row: Dict[str, object] = {"graph": self.name, "valid": self.ok}
        row.update(self.measurement.as_dict())
        return row


@dataclass(frozen=True)
class ExperimentResult:
    """Structured results of :meth:`Experiment.run`, one entry per graph."""

    runs: Tuple[ExperimentRun, ...]

    def __iter__(self):
        return iter(self.runs)

    def __len__(self) -> int:
        return len(self.runs)

    def __getitem__(self, index: int) -> ExperimentRun:
        return self.runs[index]

    @property
    def run(self) -> ExperimentRun:
        """The single run of a one-graph experiment (raises otherwise)."""
        if len(self.runs) != 1:
            raise ValueError(
                f"experiment has {len(self.runs)} runs; index runs explicitly"
            )
        return self.runs[0]

    @property
    def ok(self) -> bool:
        """Whether every trial of every run validated."""
        return all(run.ok for run in self.runs)

    @property
    def measurements(self) -> Tuple[ComplexityMeasurement, ...]:
        return tuple(run.measurement for run in self.runs)

    def as_rows(self) -> List[Dict[str, object]]:
        """One flat dictionary per graph (for table rendering)."""
        return [run.as_row() for run in self.runs]


def _make_algorithm_factory(algorithm: object) -> Callable[[Network], NodeAlgorithm]:
    """Normalise the ``algorithm`` argument into a ``network -> algorithm`` maker.

    Accepts an algorithm class / zero-argument factory (the
    :func:`run_trials` convention) or a one-argument factory taking the
    network (the :func:`repro.analysis.sweep.sweep` convention, for
    algorithms that consume global knowledge such as Δ).
    """
    if not callable(algorithm):
        raise TypeError("algorithm must be callable (a class or a factory)")
    try:
        signature = inspect.signature(algorithm)
    except (TypeError, ValueError):  # builtins without introspectable signatures
        return lambda network: algorithm()
    required = [
        parameter
        for parameter in signature.parameters.values()
        if parameter.kind
        in (inspect.Parameter.POSITIONAL_ONLY, inspect.Parameter.POSITIONAL_OR_KEYWORD)
        and parameter.default is inspect.Parameter.empty
    ]
    if inspect.isclass(algorithm):
        # A class's required constructor parameters are configuration values,
        # never the network — refusing here beats silently binding the
        # network to the first config slot.
        if required:
            raise TypeError(
                f"algorithm class {algorithm.__name__} takes required constructor "
                "arguments; pass a factory instead, e.g. "
                f"lambda network: {algorithm.__name__}(...)"
            )
        return lambda network: algorithm()
    if len(required) == 1:
        return lambda network: algorithm(network)
    if len(required) > 1:
        raise TypeError(
            "algorithm factory must take zero arguments or only the network; "
            f"{algorithm!r} requires {len(required)} positional arguments"
        )
    return lambda network: algorithm()


def _source_name(source: object, index: int) -> str:
    meta = getattr(source, "meta", None)
    if isinstance(meta, Mapping) and meta.get("family"):
        return str(meta["family"])
    return f"graph-{index}"


class Experiment:
    """One-stop builder for the generate → network → run → validate → measure pipeline.

    Args:
        problem: a :class:`ProblemSpec`, or a callable receiving the resolved
            :class:`Network` and returning one (for specs parameterised by
            the topology, e.g. ``problems.coloring(delta + 1)``).
        algorithm: the algorithm under test — a class or zero-argument
            factory, or a one-argument factory receiving the network.
        graphs: the workload(s): a single graph source, a sequence of them,
            or a mapping ``name -> source`` (names appear in the results).
            Every interchange form is accepted — :class:`Network`,
            :class:`EdgeArrays`, ``(n, edges)`` pair, networkx graph, or a
            zero-argument callable producing any of those (callables are
            timed as the ``generate_s`` phase).
        seeds: explicit per-trial seeds (one trial per entry).  Mutually
            exclusive with ``trials``/``seed``, which derive the schedule
            ``[trial_seed(seed, i) for i in range(trials)]`` — the exact
            seeds :func:`run_trials` would use.
        trials: number of trials when ``seeds`` is not given (default 5).
        seed: base seed for the derived schedule (default 0).
        id_scheme: identifier scheme for graph sources that are not already
            networks (default ``"permuted"``, the benchmark convention).
        graph_seed: base seed for identifier assignment; graph ``i`` uses
            ``graph_seed + i`` (the :func:`repro.analysis.sweep.sweep`
            convention).
        max_rounds: round cap of the runner.
        runner: a pre-configured :class:`Runner` (overrides ``max_rounds``).
        engine: execution engine — ``"node"`` (default, per-node coroutine
            runner; bit-exact traces), ``"array"`` (the vectorised
            :class:`~repro.local.engine.ArrayEngine`; raises for algorithms
            without an array twin), or ``"auto"`` (array engine exactly when
            the algorithm implements the ArrayAlgorithm protocol).
        faults: optional :class:`~repro.local.faults.FaultSchedule` injected
            into every trial of every graph.  ``"auto"`` falls back to the
            coroutine runner for algorithms whose array twin is not
            fault-aware; ``"array"`` raises ``TypeError`` for them.
        timeout_s: optional wall-clock budget in seconds per graph (covers
            that graph's whole trial batch); expiry raises
            :class:`~repro.core.errors.CellTimeout`.
        require_valid: raise on the first invalid trial (default); when
            ``False``, invalid trials are only recorded in ``verdicts``.
        quantiles: completion-time quantile levels for the measurement
            (default :data:`DEFAULT_QUANTILES`; pass ``None`` to skip).
        batch_budget_bytes: optional override of the trial-batched engine's
            chunk byte budget (see :func:`run_trials`); a pure throughput
            knob — batch-size invariance keeps traces bit-identical.

    ``run()`` executes the whole pipeline and returns an
    :class:`ExperimentResult`; the builder itself is reusable (every call
    runs the same schedule from scratch, so results are reproducible).
    """

    def __init__(
        self,
        *,
        problem: Union[ProblemSpec, Callable[[Network], ProblemSpec]],
        algorithm: object,
        graphs: Union[GraphSource, Sequence[GraphSource], Mapping[str, GraphSource]],
        seeds: Optional[Iterable[int]] = None,
        trials: Optional[int] = None,
        seed: int = 0,
        id_scheme: str = "permuted",
        graph_seed: int = 0,
        max_rounds: int = 20_000,
        runner: Optional[Runner] = None,
        engine: str = "node",
        faults: Optional[FaultSchedule] = None,
        timeout_s: Optional[float] = None,
        require_valid: bool = True,
        quantiles: Optional[Sequence[float]] = DEFAULT_QUANTILES,
        batch_budget_bytes: Optional[int] = None,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        if seeds is not None and (trials is not None or seed != 0):
            raise ValueError(
                "pass either an explicit seeds schedule or trials/seed, not both"
            )
        if seeds is not None:
            self._seeds: Tuple[int, ...] = tuple(int(s) for s in seeds)
        else:
            self._seeds = tuple(trial_seed(seed, i) for i in range(trials if trials is not None else 5))
        if not self._seeds:
            raise ValueError("at least one trial seed is required")
        self._make_problem = problem if callable(problem) and not isinstance(problem, ProblemSpec) else (lambda network: problem)
        self._make_algorithm = _make_algorithm_factory(algorithm)
        # Unnamed sources get ``None`` here and are named in :meth:`run`,
        # *after* callables have produced their workload — so provenance
        # metadata on generated EdgeArrays still reaches the display name.
        if isinstance(graphs, Mapping):
            self._graphs: List[Tuple[Optional[str], GraphSource]] = list(graphs.items())
        elif isinstance(graphs, (list, tuple)) and not (
            # A 2-tuple led by an integer (numpy integers included) is one
            # legacy (n, edges) pair, not a sequence of two graph sources.
            isinstance(graphs, tuple)
            and len(graphs) == 2
            and isinstance(graphs[0], numbers.Integral)
        ):
            self._graphs = [(None, g) for g in graphs]
        else:
            self._graphs = [(None, graphs)]
        self._id_scheme = id_scheme
        self._graph_seed = graph_seed
        self._runner = runner or Runner(max_rounds=max_rounds)
        self._engine = engine
        self._array_engine = ArrayEngine(
            max_rounds=self._runner.max_rounds, strict=self._runner.strict
        )
        self._faults = faults
        self._timeout_s = timeout_s
        self._require_valid = require_valid
        self._quantiles = quantiles
        self._batch_budget_bytes = batch_budget_bytes

    def run(self) -> ExperimentResult:
        """Execute every (graph, seed) cell and return the structured results."""
        runs: List[ExperimentRun] = []
        used_names: set = set()
        for index, (name, source) in enumerate(self._graphs):
            timings: Dict[str, float] = {}
            if callable(source) and not isinstance(source, Network):
                t0 = time.perf_counter()
                source = source()
                timings["generate_s"] = time.perf_counter() - t0
            if name is None:
                name = _source_name(source, index)
                if name in used_names:
                    # Two unnamed sources from the same generator family —
                    # disambiguate so result rows stay tellable-apart.
                    name = f"{name}-{index}"
            used_names.add(name)

            t0 = time.perf_counter()
            network = resolve_network(
                source, seed=self._graph_seed + index, id_scheme=self._id_scheme
            )
            timings["network_s"] = time.perf_counter() - t0

            problem = self._make_problem(network)
            # Probe the first trial's instance for engine dispatch and reuse
            # it, so the algorithm factory runs once per trial exactly.
            probe = self._make_algorithm(network)
            use_array = resolve_engine(self._engine, probe)
            if use_array and self._engine == "auto" and _faults_active(self._faults):
                use_array = _array_supports_faults(probe)
            t0 = time.perf_counter()
            with cell_deadline(self._timeout_s, what=f"experiment graph {name!r}"):
                if use_array:
                    # Same batching decision as run_trials: the factory runs
                    # once per trial either way; fault-free batch-capable
                    # twins step all trials together (bit-identical traces).
                    twins = tuple(
                        (
                            probe if i == 0 else self._make_algorithm(network)
                        ).as_array_algorithm()
                        for i in range(len(self._seeds))
                    )
                    if (
                        len(self._seeds) > 1
                        and not _faults_active(self._faults)
                        and getattr(twins[0], "supports_batch", False)
                    ):
                        traces = tuple(
                            self._array_engine.run_batch(
                                twins[0],
                                network,
                                problem,
                                list(self._seeds),
                                faults=self._faults,
                                budget_bytes=self._batch_budget_bytes,
                            )
                        )
                    else:
                        traces = tuple(
                            self._array_engine.run(
                                twin,
                                network,
                                problem,
                                seed=s,
                                faults=self._faults,
                            )
                            for twin, s in zip(twins, self._seeds)
                        )
                else:
                    traces = tuple(
                        self._runner.run(
                            probe if i == 0 else self._make_algorithm(network),
                            network,
                            problem,
                            seed=s,
                            faults=self._faults,
                        )
                        for i, s in enumerate(self._seeds)
                    )
            timings["runner_s"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            verdicts = tuple(bool(trace.validate()) for trace in traces)
            timings["validate_s"] = time.perf_counter() - t0
            if self._require_valid and not all(verdicts):
                bad = verdicts.index(False)
                traces[bad].require_valid()  # raises with the validator's reason

            t0 = time.perf_counter()
            measurement = measure(traces, quantiles=self._quantiles)
            timings["measure_s"] = time.perf_counter() - t0
            timings["total_s"] = sum(timings.values())

            runs.append(
                ExperimentRun(
                    name=name,
                    network=network,
                    problem=problem,
                    seeds=self._seeds,
                    traces=traces,
                    verdicts=verdicts,
                    measurement=measurement,
                    timings=timings,
                )
            )
        return ExperimentResult(runs=tuple(runs))
