"""Trial running and aggregation helpers.

Randomized averaged complexities are expectations, so a single execution is a
noisy estimate.  The helpers here run an algorithm several times (with
different seeds) on the same network, validate every produced solution, and
aggregate the traces into a :class:`~repro.core.metrics.ComplexityMeasurement`.

The whole trial pipeline stays free of networkx and per-entity dicts:
``validate=True`` checks each trace through the CSR-native fast path
(:meth:`ProblemSpec.validate_network` on the trace's array storage), so even
``n ≥ 10⁵`` trial batches never export the topology back to a
``networkx.Graph``.

The functions take an *algorithm factory* (a zero-argument callable returning
a fresh :class:`~repro.local.algorithm.NodeAlgorithm`) rather than an
algorithm instance, so that algorithms are free to keep per-execution
configuration on ``self`` without leaking state across trials.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.metrics import ComplexityMeasurement, measure
from repro.core.problems import ProblemSpec
from repro.core.trace import ExecutionTrace
from repro.local.algorithm import NodeAlgorithm
from repro.local.network import Network
from repro.local.runner import Runner

__all__ = ["run_trials", "evaluate", "trial_seed"]

AlgorithmFactory = Callable[[], NodeAlgorithm]


def trial_seed(base_seed: int, trial: int) -> int:
    """Seed of trial ``trial`` for a batch with base seed ``base_seed``.

    This is the single definition of the per-trial seed schedule; the serial
    trial loop and the parallel sweep both use it, which is what makes the
    two paths produce identical RNG streams cell for cell.
    """
    return base_seed + trial


def run_trials(
    algorithm_factory: AlgorithmFactory,
    network: Network,
    problem: ProblemSpec,
    trials: int = 5,
    seed: int = 0,
    runner: Optional[Runner] = None,
    validate: bool = True,
) -> List[ExecutionTrace]:
    """Run ``trials`` independent executions and return their traces.

    Args:
        algorithm_factory: builds a fresh algorithm instance per trial.
        network: the communication graph.
        problem: problem specification used for termination, completion-time
            semantics, and (optionally) validation.
        trials: number of independent executions.
        seed: base seed; trial ``i`` uses ``seed + i``.
        runner: runner to use (a default strict runner when omitted).
        validate: assert that every trial produced a valid solution.

    Returns:
        One :class:`ExecutionTrace` per trial.
    """
    if trials < 1:
        raise ValueError("trials must be at least 1")
    active_runner = runner or Runner()
    traces: List[ExecutionTrace] = []
    for i in range(trials):
        algorithm = algorithm_factory()
        trace = active_runner.run(algorithm, network, problem, seed=trial_seed(seed, i))
        if validate:
            trace.require_valid()
        traces.append(trace)
    return traces


def evaluate(
    algorithm_factory: AlgorithmFactory,
    network: Network,
    problem: ProblemSpec,
    trials: int = 5,
    seed: int = 0,
    runner: Optional[Runner] = None,
    validate: bool = True,
) -> ComplexityMeasurement:
    """Run trials and aggregate them into a single complexity measurement."""
    traces = run_trials(
        algorithm_factory,
        network,
        problem,
        trials=trials,
        seed=seed,
        runner=runner,
        validate=validate,
    )
    return measure(traces)
