"""Core measurement framework: problems, traces, metrics, experiments."""

from repro.core import experiment, metrics, problems, trace

__all__ = ["problems", "metrics", "trace", "experiment"]
