"""Core measurement framework: problems, traces, metrics, experiments."""

from repro.core import experiment, metrics, problems, trace
from repro.core.experiment import Experiment, ExperimentResult, ExperimentRun

__all__ = [
    "problems",
    "metrics",
    "trace",
    "experiment",
    "Experiment",
    "ExperimentResult",
    "ExperimentRun",
]
