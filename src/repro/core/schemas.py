"""The single home of every versioned schema/format identifier.

Every on-disk or over-the-wire artifact this repo produces carries a
``name/vN`` schema string so readers can refuse payloads they don't speak:
the service's job language and sqlite store, the resilient sweep's
checkpoint journal, the benchmark documents, and the lint baseline itself.
Those strings are *contracts* — a drifted literal silently breaks resume,
store validation, or harness comparison without failing a unit test.

This module is therefore the only place in ``src/repro`` allowed to spell
a schema literal out; everything else imports the constant.  The rule is
machine-enforced by ``repro.lint`` rule **REP004** (see ``docs/lint.md``),
which flags any ``name/vN`` string constant elsewhere under ``src/repro``.

Bumping a version is a deliberate act: change it here, update the readers
and writers in the same commit, and document the migration in
``benchmarks/README.md`` (benchmark schemas) or ``docs/service.md``
(service schemas).
"""

from __future__ import annotations

from typing import Mapping

__all__ = [
    "SWEEP_SPEC",
    "RESULT_STORE",
    "SWEEP_CHECKPOINT",
    "BENCH_CORE",
    "LINT_BASELINE",
    "LINT_REPORT",
    "ALL_SCHEMAS",
]

#: Serialisable sweep-job language accepted by the experiment service
#: (:mod:`repro.service.specs`).
SWEEP_SPEC = "sweep-spec/v1"

#: Sqlite schema of the persistent result store
#: (:mod:`repro.service.store`).
RESULT_STORE = "result-store/v1"

#: JSON-lines journal of finished sweep cells
#: (:mod:`repro.analysis.sweep`).
SWEEP_CHECKPOINT = "sweep-checkpoint/v1"

#: Benchmark document written by ``benchmarks/core_perf.py`` /
#: ``benchmarks/sweep_scaling.py`` into ``BENCH_core.json``.
BENCH_CORE = "bench-core/v7"

#: Grandfathered-findings file consumed by ``python -m repro.lint``
#: (:mod:`repro.lint.baseline`).
LINT_BASELINE = "lint-baseline/v1"

#: JSON report emitted by ``python -m repro.lint --format=json``
#: (:mod:`repro.lint.cli`).
LINT_REPORT = "lint-report/v1"

#: Every schema identifier this code base speaks, keyed by a short slug.
ALL_SCHEMAS: Mapping[str, str] = {
    "sweep_spec": SWEEP_SPEC,
    "result_store": RESULT_STORE,
    "sweep_checkpoint": SWEEP_CHECKPOINT,
    "bench_core": BENCH_CORE,
    "lint_baseline": LINT_BASELINE,
    "lint_report": LINT_REPORT,
}
