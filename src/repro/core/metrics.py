"""Averaged complexity measures (Definition 1 and Appendix A of the paper).

Given one or several :class:`~repro.core.trace.ExecutionTrace` objects
(several traces of the same algorithm on the same graph correspond to the
expectation over the algorithm's randomness), this module computes:

* the **node-averaged complexity** ``AVG_V`` — average over nodes of the
  expected completion time,
* the **edge-averaged complexity** ``AVG_E`` — average over edges of the
  expected completion time,
* the **weighted** node/edge-averaged complexities ``AVG^w`` of Appendix A,
* the **node/edge expected complexity** ``EXP`` of Appendix A — the maximum
  over nodes/edges of the expected completion time,
* the **worst-case complexity** — maximum completion time over everything.

The paper's chain of inequalities (Appendix A)

    ``AVG_V(P) ≤ AVG^w_V(P) ≤ EXP_V(P) ≤ WORST_V(P)``

holds per graph for the worst-case weight distribution; the helper
:func:`complexity_hierarchy` reports all four measured quantities so the
benchmarks can verify the chain empirically (with the weighted value computed
for a caller-supplied or worst-case-per-node weighting).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from statistics import mean
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.trace import ExecutionTrace

__all__ = [
    "node_averaged_complexity",
    "edge_averaged_complexity",
    "worst_case_complexity",
    "weighted_node_averaged_complexity",
    "weighted_edge_averaged_complexity",
    "node_expected_complexity",
    "edge_expected_complexity",
    "ComplexityMeasurement",
    "measure",
    "complexity_hierarchy",
]

Edge = Tuple[int, int]


def _as_list(traces: "ExecutionTrace | Iterable[ExecutionTrace]") -> List[ExecutionTrace]:
    if isinstance(traces, ExecutionTrace):
        return [traces]
    traces = list(traces)
    if not traces:
        raise ValueError("at least one execution trace is required")
    first = traces[0]
    for t in traces[1:]:
        if t.network is not first.network and t.network.n != first.network.n:
            raise ValueError("all traces must come from executions on the same network")
    return traces


def _expected_times(vectors: List[Sequence[int]], length: int, trials: int) -> List[float]:
    """Element-wise mean of per-trial completion-time vectors.

    Accumulates into a flat float64 array; the vectors themselves may be
    lists or ``array('q')`` payloads (as shipped by parallel sweep workers) —
    the arithmetic, and hence the result, is identical either way.
    """
    sums = array("d", bytes(8 * length))
    for times in vectors:
        for v in range(length):
            sums[v] += times[v]
    return [s / trials for s in sums]


def _expected_node_times(traces: List[ExecutionTrace]) -> List[float]:
    n = traces[0].network.n
    return _expected_times([t.node_completion_times() for t in traces], n, len(traces))


def _expected_edge_times(traces: List[ExecutionTrace]) -> List[float]:
    m = traces[0].network.m
    return _expected_times([t.edge_completion_times() for t in traces], m, len(traces))


# ---------------------------------------------------------------------- #
# Definition 1
# ---------------------------------------------------------------------- #


def node_averaged_complexity(traces: "ExecutionTrace | Iterable[ExecutionTrace]") -> float:
    """``AVG_V``: average over nodes of the expected completion time."""
    ts = _as_list(traces)
    expected = _expected_node_times(ts)
    if not expected:
        return 0.0
    return mean(expected)


def edge_averaged_complexity(traces: "ExecutionTrace | Iterable[ExecutionTrace]") -> float:
    """``AVG_E``: average over edges of the expected completion time."""
    ts = _as_list(traces)
    expected = _expected_edge_times(ts)
    if not expected:
        return 0.0
    return mean(expected)


def worst_case_complexity(traces: "ExecutionTrace | Iterable[ExecutionTrace]") -> int:
    """Maximum completion time over all trials, nodes and edges."""
    ts = _as_list(traces)
    return max(trace.worst_case_rounds() for trace in ts)


# ---------------------------------------------------------------------- #
# Appendix A notions
# ---------------------------------------------------------------------- #


def weighted_node_averaged_complexity(
    traces: "ExecutionTrace | Iterable[ExecutionTrace]",
    weights: Optional[Mapping[int, float]] = None,
) -> float:
    """``AVG^w_V``: weighted average of expected node completion times.

    When ``weights`` is omitted the *worst-case* weight distribution is used:
    all weight is placed on the slowest node, which makes the weighted value
    coincide with the node expected complexity (the supremum over weight
    distributions, as in Appendix A).
    """
    ts = _as_list(traces)
    expected = _expected_node_times(ts)
    if not expected:
        return 0.0
    if weights is None:
        return max(expected)
    total = sum(weights.get(v, 0.0) for v in range(len(expected)))
    if total <= 0:
        raise ValueError("weights must have positive total mass")
    return sum(weights.get(v, 0.0) * expected[v] for v in range(len(expected))) / total


def weighted_edge_averaged_complexity(
    traces: "ExecutionTrace | Iterable[ExecutionTrace]",
    weights: Optional[Mapping[Edge, float]] = None,
) -> float:
    """``AVG^w_E``: weighted average of expected edge completion times."""
    ts = _as_list(traces)
    expected = _expected_edge_times(ts)
    if not expected:
        return 0.0
    edges = list(ts[0].network.edges)
    if weights is None:
        return max(expected)
    total = sum(weights.get(e, 0.0) for e in edges)
    if total <= 0:
        raise ValueError("weights must have positive total mass")
    return sum(weights.get(e, 0.0) * expected[i] for i, e in enumerate(edges)) / total


def node_expected_complexity(traces: "ExecutionTrace | Iterable[ExecutionTrace]") -> float:
    """``EXP_V``: maximum over nodes of the expected completion time."""
    ts = _as_list(traces)
    expected = _expected_node_times(ts)
    return max(expected) if expected else 0.0


def edge_expected_complexity(traces: "ExecutionTrace | Iterable[ExecutionTrace]") -> float:
    """``EXP_E``: maximum over edges of the expected completion time."""
    ts = _as_list(traces)
    expected = _expected_edge_times(ts)
    return max(expected) if expected else 0.0


# ---------------------------------------------------------------------- #
# Bundled measurement
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ComplexityMeasurement:
    """All complexity measures of one algorithm on one graph (over trials)."""

    algorithm: str
    problem: str
    n: int
    m: int
    trials: int
    node_averaged: float
    edge_averaged: float
    node_expected: float
    edge_expected: float
    worst_case: int

    def as_dict(self) -> Dict[str, object]:
        """Dictionary form, convenient for table rendering."""
        return {
            "algorithm": self.algorithm,
            "problem": self.problem,
            "n": self.n,
            "m": self.m,
            "trials": self.trials,
            "node_averaged": round(self.node_averaged, 3),
            "edge_averaged": round(self.edge_averaged, 3),
            "node_expected": round(self.node_expected, 3),
            "edge_expected": round(self.edge_expected, 3),
            "worst_case": self.worst_case,
        }


def measure(traces: "ExecutionTrace | Iterable[ExecutionTrace]") -> ComplexityMeasurement:
    """Compute every complexity measure for a collection of traces.

    The expected completion-time vectors are computed once and shared by the
    averaged and expected measures (they are pure reductions of the same
    vectors), which matters when measuring large graphs.
    """
    ts = _as_list(traces)
    first = ts[0]
    expected_nodes = _expected_node_times(ts)
    expected_edges = _expected_edge_times(ts)
    return ComplexityMeasurement(
        algorithm=first.algorithm_name,
        problem=first.problem.name,
        n=first.network.n,
        m=first.network.m,
        trials=len(ts),
        node_averaged=mean(expected_nodes) if expected_nodes else 0.0,
        edge_averaged=mean(expected_edges) if expected_edges else 0.0,
        node_expected=max(expected_nodes) if expected_nodes else 0.0,
        edge_expected=max(expected_edges) if expected_edges else 0.0,
        worst_case=worst_case_complexity(ts),
    )


def complexity_hierarchy(
    traces: "ExecutionTrace | Iterable[ExecutionTrace]",
    node_weights: Optional[Mapping[int, float]] = None,
) -> Dict[str, float]:
    """The Appendix A chain ``AVG_V ≤ AVG^w_V ≤ EXP_V ≤ WORST_V`` for node measures.

    Returns a dictionary with keys ``avg``, ``weighted_avg``, ``expected`` and
    ``worst``; with the default (worst-case) weighting, ``weighted_avg`` equals
    ``expected`` and the chain is guaranteed to be monotone.
    """
    ts = _as_list(traces)
    return {
        "avg": node_averaged_complexity(ts),
        "weighted_avg": weighted_node_averaged_complexity(ts, node_weights),
        "expected": node_expected_complexity(ts),
        "worst": float(worst_case_complexity(ts)),
    }
