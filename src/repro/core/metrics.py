"""Averaged complexity measures (Definition 1 and Appendix A of the paper).

Given one or several :class:`~repro.core.trace.ExecutionTrace` objects
(several traces of the same algorithm on the same graph correspond to the
expectation over the algorithm's randomness), this module computes:

* the **node-averaged complexity** ``AVG_V`` — average over nodes of the
  expected completion time,
* the **edge-averaged complexity** ``AVG_E`` — average over edges of the
  expected completion time,
* the **weighted** node/edge-averaged complexities ``AVG^w`` of Appendix A,
* the **node/edge expected complexity** ``EXP`` of Appendix A — the maximum
  over nodes/edges of the expected completion time,
* the **worst-case complexity** — maximum completion time over everything,
* **quantiles** of the expected completion-time distribution
  (:func:`completion_time_quantiles`) — the tail view the averaged measures
  compress away.

The paper's chain of inequalities (Appendix A)

    ``AVG_V(P) ≤ AVG^w_V(P) ≤ EXP_V(P) ≤ WORST_V(P)``

holds per graph for the worst-case weight distribution; the helper
:func:`complexity_hierarchy` reports all four measured quantities so the
benchmarks can verify the chain empirically (with the weighted value computed
for a caller-supplied or worst-case-per-node weighting).

Implementation.  Every reduction runs over numpy float64/int64 arrays and
consumes the trace's flat per-slot storage directly
(:meth:`ExecutionTrace.node_completion_array` /
:meth:`~ExecutionTrace.edge_completion_array`), so there is no per-node
Python loop anywhere on the measurement path — the layer that made
million-node measurement batches feasible.  Duck-typed traces that only
offer the list-returning accessors (e.g. the parallel sweep's worker
payloads, which ship ``array('q')`` buffers) are converted with a single
buffer-protocol ``np.asarray`` call.  The per-trial accumulation adds the
trial vectors in trace order and divides once, exactly the float64 operation
sequence of the seed implementation, so expected-time vectors are
bit-identical to the pure-Python path; the final scalar means use numpy's
pairwise summation and may differ from ``statistics.mean`` in the last ulp
(the differential tests in ``tests/core/test_metrics_numpy.py`` pin
agreement to ≤ 1e-12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.trace import ExecutionTrace

__all__ = [
    "node_averaged_complexity",
    "edge_averaged_complexity",
    "worst_case_complexity",
    "weighted_node_averaged_complexity",
    "weighted_edge_averaged_complexity",
    "node_expected_complexity",
    "edge_expected_complexity",
    "completion_time_quantiles",
    "ComplexityMeasurement",
    "RecoveryTimeline",
    "measure",
    "complexity_hierarchy",
]

Edge = Tuple[int, int]

#: Quantile levels reported by :func:`measure` when asked for quantiles.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)


def _as_list(traces: "ExecutionTrace | Iterable[ExecutionTrace]") -> List[ExecutionTrace]:
    if isinstance(traces, ExecutionTrace):
        return [traces]
    traces = list(traces)
    if not traces:
        raise ValueError("at least one execution trace is required")
    first = traces[0]
    for t in traces[1:]:
        if t.network is not first.network and t.network.n != first.network.n:
            raise ValueError("all traces must come from executions on the same network")
    return traces


def _node_times_i64(trace) -> np.ndarray:
    """A trace's node completion times as an int64 array (zero-copy when possible)."""
    getter = getattr(trace, "node_completion_array", None)
    if getter is not None:
        return getter()
    return np.asarray(trace.node_completion_times(), dtype=np.int64)


def _edge_times_i64(trace) -> np.ndarray:
    """A trace's edge completion times as an int64 array (zero-copy when possible)."""
    getter = getattr(trace, "edge_completion_array", None)
    if getter is not None:
        return getter()
    return np.asarray(trace.edge_completion_times(), dtype=np.int64)


def _expected_times(vectors: List[np.ndarray], length: int, trials: int) -> np.ndarray:
    """Element-wise mean of per-trial completion-time vectors (float64).

    Accumulates trial by trial and divides once — the same float64 operation
    order as the seed implementation, so the resulting vector is bit-identical
    to the pure-Python accumulation.
    """
    sums = np.zeros(length, dtype=np.float64)
    for times in vectors:
        sums += times
    sums /= trials
    return sums


def _expected_node_times(traces: List[ExecutionTrace]) -> np.ndarray:
    n = traces[0].network.n
    return _expected_times([_node_times_i64(t) for t in traces], n, len(traces))


def _expected_edge_times(traces: List[ExecutionTrace]) -> np.ndarray:
    m = traces[0].network.m
    return _expected_times([_edge_times_i64(t) for t in traces], m, len(traces))


def _quantile_pairs(
    expected: np.ndarray, quantiles: Sequence[float]
) -> Tuple[Tuple[float, float], ...]:
    """Validated ``(level, value)`` quantile pairs of an expected-time vector.

    The single quantile implementation shared by :func:`measure` and
    :func:`completion_time_quantiles`; empty vectors (e.g. edge quantiles on
    an edgeless graph) report 0.0 at every level.
    """
    levels = [float(q) for q in quantiles]
    if any(not 0.0 <= q <= 1.0 for q in levels):
        raise ValueError("quantile levels must lie in [0, 1]")
    if expected.size == 0:
        return tuple((q, 0.0) for q in levels)
    values = np.quantile(expected, levels)
    return tuple((q, float(value)) for q, value in zip(levels, values))


def _mean(expected: np.ndarray) -> float:
    return float(expected.mean()) if expected.size else 0.0


def _max(expected: np.ndarray) -> float:
    return float(expected.max()) if expected.size else 0.0


# ---------------------------------------------------------------------- #
# Definition 1
# ---------------------------------------------------------------------- #


def node_averaged_complexity(traces: "ExecutionTrace | Iterable[ExecutionTrace]") -> float:
    """``AVG_V``: average over nodes of the expected completion time."""
    return _mean(_expected_node_times(_as_list(traces)))


def edge_averaged_complexity(traces: "ExecutionTrace | Iterable[ExecutionTrace]") -> float:
    """``AVG_E``: average over edges of the expected completion time."""
    return _mean(_expected_edge_times(_as_list(traces)))


def worst_case_complexity(traces: "ExecutionTrace | Iterable[ExecutionTrace]") -> int:
    """Maximum completion time over all trials, nodes and edges."""
    ts = _as_list(traces)
    return max(trace.worst_case_rounds() for trace in ts)


# ---------------------------------------------------------------------- #
# Appendix A notions
# ---------------------------------------------------------------------- #


def weighted_node_averaged_complexity(
    traces: "ExecutionTrace | Iterable[ExecutionTrace]",
    weights: Optional[Mapping[int, float]] = None,
) -> float:
    """``AVG^w_V``: weighted average of expected node completion times.

    When ``weights`` is omitted the *worst-case* weight distribution is used:
    all weight is placed on the slowest node, which makes the weighted value
    coincide with the node expected complexity (the supremum over weight
    distributions, as in Appendix A).
    """
    ts = _as_list(traces)
    expected = _expected_node_times(ts)
    if expected.size == 0:
        return 0.0
    if weights is None:
        return _max(expected)
    w = np.zeros(expected.size, dtype=np.float64)
    for v, weight in weights.items():
        if 0 <= v < expected.size:
            w[v] = weight
    total = float(w.sum())
    if total <= 0:
        raise ValueError("weights must have positive total mass")
    return float(w @ expected) / total


def weighted_edge_averaged_complexity(
    traces: "ExecutionTrace | Iterable[ExecutionTrace]",
    weights: Optional[Mapping[Edge, float]] = None,
) -> float:
    """``AVG^w_E``: weighted average of expected edge completion times."""
    ts = _as_list(traces)
    expected = _expected_edge_times(ts)
    if expected.size == 0:
        return 0.0
    if weights is None:
        return _max(expected)
    edges = ts[0].network.edges
    w = np.zeros(expected.size, dtype=np.float64)
    for i, e in enumerate(edges):
        w[i] = weights.get(e, 0.0)
    total = float(w.sum())
    if total <= 0:
        raise ValueError("weights must have positive total mass")
    return float(w @ expected) / total


def node_expected_complexity(traces: "ExecutionTrace | Iterable[ExecutionTrace]") -> float:
    """``EXP_V``: maximum over nodes of the expected completion time."""
    return _max(_expected_node_times(_as_list(traces)))


def edge_expected_complexity(traces: "ExecutionTrace | Iterable[ExecutionTrace]") -> float:
    """``EXP_E``: maximum over edges of the expected completion time."""
    return _max(_expected_edge_times(_as_list(traces)))


def completion_time_quantiles(
    traces: "ExecutionTrace | Iterable[ExecutionTrace]",
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
    entity: str = "node",
) -> Dict[float, float]:
    """Quantiles of the expected completion-time distribution.

    ``entity`` selects the node (``"node"``) or edge (``"edge"``) vector; the
    quantiles are numpy's linear-interpolation quantiles over the expected
    (per-trial averaged) completion times.  Empty vectors (e.g. edge
    quantiles on an edgeless graph) report 0.0 at every level.
    """
    ts = _as_list(traces)
    if entity == "node":
        expected = _expected_node_times(ts)
    elif entity == "edge":
        expected = _expected_edge_times(ts)
    else:
        raise ValueError(f"entity must be 'node' or 'edge', got {entity!r}")
    return dict(_quantile_pairs(expected, quantiles))


# ---------------------------------------------------------------------- #
# Self-stabilisation recovery metrics
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class RecoveryTimeline:
    """Per-round recovery bookkeeping of one self-stabilising execution.

    Recorded by the engines for algorithms with
    ``self_stabilizing = True`` and attached to the trace as
    ``trace.recovery``.  Entry ``i`` of :attr:`pending` / :attr:`valid`
    describes the configuration **after executing round ``i + 1``**:

    * ``pending[i]`` — required outputs still undecided among the survivors
      (0 means the configuration is output-complete for the survivors),
    * ``valid[i]`` — whether the configuration is *strictly* valid on the
      induced survivor subnetwork (:meth:`~repro.core.problems.ProblemSpec.
      validate_induced`).  Always ``False`` while ``pending[i] > 0``;
      validity is only evaluated on survivor-complete configurations, and
      deliberately never credits commitments of crashed nodes — recovery
      must be earned by the survivors alone.

    :attr:`crash_rounds` lists the distinct (ascending) rounds at which
    crash faults landed; each opens a *fault epoch* that ends just before
    the next crash round (or at the end of the run).
    """

    crash_rounds: Tuple[int, ...]
    pending: Tuple[int, ...]
    valid: Tuple[bool, ...]

    def time_to_restabilize(self) -> Tuple[Optional[int], ...]:
        """Rounds needed to regain survivor-validity after each crash epoch.

        For a crash landing at round ``c`` (next crash at ``c'``), the
        recovery time is ``r - c`` for the first round ``r`` with
        ``c ≤ r < c'`` whose configuration is valid, or ``None`` when the
        epoch never restabilised before the next crash (or the run ended).
        A value of ``0`` means the configuration was already valid again at
        the end of the crash round itself.
        """
        out: List[Optional[int]] = []
        crash_rounds = self.crash_rounds
        horizon = len(self.valid) + 1  # rounds are 1-based; valid[r-1] = after round r
        for k, c in enumerate(crash_rounds):
            end = crash_rounds[k + 1] if k + 1 < len(crash_rounds) else horizon
            time: Optional[int] = None
            for r in range(c, end):
                if 1 <= r <= len(self.valid) and self.valid[r - 1]:
                    time = r - c
                    break
            out.append(time)
        return tuple(out)

    @property
    def epochs(self) -> int:
        """Number of fault epochs (distinct crash rounds)."""
        return len(self.crash_rounds)


# ---------------------------------------------------------------------- #
# Bundled measurement
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ComplexityMeasurement:
    """All complexity measures of one algorithm on one graph (over trials).

    The quantile fields are optional extras (filled when :func:`measure` is
    asked for them) and excluded from equality so that measurements with and
    without quantiles of the same execution still compare equal.  The
    recovery fields are filled only when the measured traces carry
    :class:`RecoveryTimeline` records (self-stabilising executions) and are
    likewise excluded from equality.
    """

    algorithm: str
    problem: str
    n: int
    m: int
    trials: int
    node_averaged: float
    edge_averaged: float
    node_expected: float
    edge_expected: float
    worst_case: int
    node_quantiles: Tuple[Tuple[float, float], ...] = field(default=(), compare=False)
    edge_quantiles: Tuple[Tuple[float, float], ...] = field(default=(), compare=False)
    #: Total fault epochs across all measured traces (None = no recovery data).
    recovery_epochs: Optional[int] = field(default=None, compare=False)
    #: Mean rounds-to-restabilise over the recovered epochs (None when no
    #: epoch recovered or no recovery data).
    mean_time_to_restabilize: Optional[float] = field(default=None, compare=False)
    #: Worst rounds-to-restabilise over the recovered epochs.
    max_time_to_restabilize: Optional[int] = field(default=None, compare=False)
    #: Epochs that never regained survivor-validity before the next crash
    #: (or the end of the run).
    unrecovered_epochs: Optional[int] = field(default=None, compare=False)

    def as_dict(self) -> Dict[str, object]:
        """Dictionary form, convenient for table rendering."""
        record: Dict[str, object] = {
            "algorithm": self.algorithm,
            "problem": self.problem,
            "n": self.n,
            "m": self.m,
            "trials": self.trials,
            "node_averaged": round(self.node_averaged, 3),
            "edge_averaged": round(self.edge_averaged, 3),
            "node_expected": round(self.node_expected, 3),
            "edge_expected": round(self.edge_expected, 3),
            "worst_case": self.worst_case,
        }
        for prefix, pairs in (("node_q", self.node_quantiles), ("edge_q", self.edge_quantiles)):
            for level, value in pairs:
                record[f"{prefix}{level:g}"] = round(value, 3)
        if self.recovery_epochs is not None:
            record["recovery_epochs"] = self.recovery_epochs
            record["unrecovered_epochs"] = self.unrecovered_epochs
            if self.mean_time_to_restabilize is not None:
                record["mean_time_to_restabilize"] = round(
                    self.mean_time_to_restabilize, 3
                )
            if self.max_time_to_restabilize is not None:
                record["max_time_to_restabilize"] = self.max_time_to_restabilize
        return record


def measure(
    traces: "ExecutionTrace | Iterable[ExecutionTrace]",
    quantiles: Optional[Sequence[float]] = None,
) -> ComplexityMeasurement:
    """Compute every complexity measure for a collection of traces.

    The expected completion-time vectors are computed once (as float64 numpy
    arrays) and shared by the averaged, expected and quantile measures — they
    are pure reductions of the same vectors, which matters when measuring
    million-node graphs.  Pass ``quantiles`` (e.g. ``DEFAULT_QUANTILES``) to
    additionally record completion-time quantiles in the measurement.
    """
    ts = _as_list(traces)
    first = ts[0]
    expected_nodes = _expected_node_times(ts)
    expected_edges = _expected_edge_times(ts)
    node_quantiles: Tuple[Tuple[float, float], ...] = ()
    edge_quantiles: Tuple[Tuple[float, float], ...] = ()
    if quantiles is not None:
        node_quantiles = _quantile_pairs(expected_nodes, quantiles)
        edge_quantiles = _quantile_pairs(expected_edges, quantiles)
    recovery_epochs = mean_restab = max_restab = unrecovered = None
    timelines = [
        timeline
        for timeline in (getattr(t, "recovery", None) for t in ts)
        if timeline is not None
    ]
    if timelines:
        times = [t for tl in timelines for t in tl.time_to_restabilize()]
        recovered = [t for t in times if t is not None]
        recovery_epochs = len(times)
        unrecovered = len(times) - len(recovered)
        if recovered:
            mean_restab = float(sum(recovered)) / len(recovered)
            max_restab = max(recovered)
    return ComplexityMeasurement(
        algorithm=first.algorithm_name,
        problem=first.problem.name,
        n=first.network.n,
        m=first.network.m,
        trials=len(ts),
        node_averaged=_mean(expected_nodes),
        edge_averaged=_mean(expected_edges),
        node_expected=_max(expected_nodes),
        edge_expected=_max(expected_edges),
        worst_case=worst_case_complexity(ts),
        node_quantiles=node_quantiles,
        edge_quantiles=edge_quantiles,
        recovery_epochs=recovery_epochs,
        mean_time_to_restabilize=mean_restab,
        max_time_to_restabilize=max_restab,
        unrecovered_epochs=unrecovered,
    )


def complexity_hierarchy(
    traces: "ExecutionTrace | Iterable[ExecutionTrace]",
    node_weights: Optional[Mapping[int, float]] = None,
) -> Dict[str, float]:
    """The Appendix A chain ``AVG_V ≤ AVG^w_V ≤ EXP_V ≤ WORST_V`` for node measures.

    Returns a dictionary with keys ``avg``, ``weighted_avg``, ``expected`` and
    ``worst``; with the default (worst-case) weighting, ``weighted_avg`` equals
    ``expected`` and the chain is guaranteed to be monotone.
    """
    ts = _as_list(traces)
    return {
        "avg": node_averaged_complexity(ts),
        "weighted_avg": weighted_node_averaged_complexity(ts, node_weights),
        "expected": node_expected_complexity(ts),
        "worst": float(worst_case_complexity(ts)),
    }
