"""Structured failure taxonomy for executions, cells, and sweeps.

Every way a trial or sweep cell can fail maps to one exception type here, so
the harness layers (:func:`repro.core.experiment.run_trials`,
:class:`repro.core.experiment.Experiment`, :func:`repro.analysis.sweep.sweep`)
can classify failures into structured failure rows instead of letting an
arbitrary exception abort a multi-hour sweep:

* :class:`RoundLimitExceeded` — an execution hit the runner/engine round cap
  in strict mode (moved here from ``repro.local.runner``, which re-exports it
  for compatibility).
* :class:`CellTimeout` — a cell exceeded its wall-clock budget (raised by
  :func:`cell_deadline`, the SIGALRM-based guard used by the resilient sweep
  workers and ``run_trials(timeout_s=...)``).
* :class:`WorkerCrashed` — a fork-pool worker died (e.g. OOM-killed) and the
  bounded same-seed serial retry failed as well.
* :class:`ValidationFailed` — an execution produced an invalid solution
  (raised by ``ExecutionTrace.require_valid``; subclasses ``AssertionError``
  so pre-taxonomy callers catching that keep working).

All types carry a stable machine-readable :attr:`ReproError.kind` slug — the
``kind`` field of the failure rows the sweep checkpoint records (schema
documented in ``benchmarks/README.md``).
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "ReproError",
    "RoundLimitExceeded",
    "CellTimeout",
    "WorkerCrashed",
    "ValidationFailed",
    "CheckpointLocked",
    "classify_failure",
    "is_retryable",
    "RETRYABLE_KINDS",
    "cell_deadline",
]


class ReproError(RuntimeError):
    """Base class of the harness failure taxonomy.

    Subclasses ``RuntimeError`` because the pre-taxonomy
    ``RoundLimitExceeded`` did; ``kind`` is the stable slug recorded in
    structured failure rows.
    """

    kind: str = "error"


class RoundLimitExceeded(ReproError):
    """Raised when an execution hits the round limit and ``strict`` is set."""

    kind = "round-limit"


class CellTimeout(ReproError):
    """Raised when a cell exceeds its wall-clock budget."""

    kind = "timeout"


class WorkerCrashed(ReproError):
    """A pool worker died running a cell and the serial retry failed too."""

    kind = "worker-crashed"


class ValidationFailed(ReproError, AssertionError):
    """An execution produced an invalid solution.

    Also an ``AssertionError``: ``require_valid`` raised that before the
    taxonomy existed, and callers catching it must keep working.
    """

    kind = "validation-failed"


class CheckpointLocked(ReproError):
    """A sweep checkpoint journal is already held by another live writer.

    Raised when a second writer opens a journal whose exclusive lock is
    held — two service workers interleaving rows into one journal would be
    silent corruption, so the collision is a clear, immediate error instead.
    The lock dies with its holder (``flock``, or a pid-checked sidecar), so
    a SIGKILLed worker never wedges the journal: the retry reopens and
    resumes cell-exactly.
    """

    kind = "checkpoint-locked"


def classify_failure(error: BaseException) -> str:
    """Stable ``kind`` slug for an arbitrary exception (for failure rows)."""
    if isinstance(error, ReproError):
        return error.kind
    if isinstance(error, AssertionError):
        return ValidationFailed.kind
    if isinstance(error, TimeoutError):
        return CellTimeout.kind
    return f"exception:{type(error).__name__}"


#: Failure kinds the experiment service's queue retries with backoff.
#: Transient, environment-shaped failures retry (a lost worker, an expired
#: wall-clock budget, a journal briefly held by a dying writer); everything
#: deterministic — an invalid solution, a round-limit overrun, an arbitrary
#: exception from the algorithm or factories — would fail identically on
#: every attempt (the per-cell seed schedule replays the exact execution)
#: and fails the job permanently instead.
RETRYABLE_KINDS = frozenset(
    {WorkerCrashed.kind, CellTimeout.kind, CheckpointLocked.kind}
)


def is_retryable(kind: str) -> bool:
    """Whether a :func:`classify_failure` slug warrants a retry with backoff."""
    return kind in RETRYABLE_KINDS


def _deadline_supported() -> bool:
    """Whether the SIGALRM wall-clock guard can be armed here.

    SIGALRM exists on Unix only and signal handlers can only be installed
    from the main thread; everywhere else :func:`cell_deadline` degrades to
    a no-op (documented best-effort behaviour — the resilient sweep's fork
    workers are Unix main threads, so the guard is always live where it
    matters).
    """
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def cell_deadline(seconds: Optional[float], what: str = "cell") -> Iterator[None]:
    """Raise :class:`CellTimeout` if the body runs longer than ``seconds``.

    ``None`` (or a non-positive value, or an unsupported platform/thread)
    disables the guard.  Uses ``signal.setitimer`` so fractional budgets
    work; the previous handler and timer are restored on exit, making the
    guard safe to nest under an outer deadline.
    """
    if seconds is None or seconds <= 0 or not _deadline_supported():
        yield
        return

    def _on_alarm(signum, frame):  # pragma: no cover - exercised via raise
        raise CellTimeout(f"{what} exceeded its {seconds:g}s wall-clock budget")

    previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
    previous_timer = signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, *previous_timer)
        signal.signal(signal.SIGALRM, previous_handler)
