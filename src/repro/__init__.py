"""repro — node and edge averaged complexities of local graph problems.

A reproduction of Balliu, Ghaffari, Kuhn, Olivetti, *Node and Edge Averaged
Complexities of Local Graph Problems* (PODC 2022): a synchronous
LOCAL/CONGEST simulator that tracks per-node and per-edge computation times,
the paper's averaged-complexity measures, implementations of its upper-bound
algorithms (MIS, ruling sets, maximal matching, sinkless orientation,
colouring) and the KMW-style lower-bound constructions (cluster trees, base
graphs, random lifts, the view-isomorphism Algorithm 1).

Quickstart::

    import networkx as nx
    from repro import Network, Runner, problems, measure
    from repro.algorithms.mis import LubyMIS

    network = Network.from_graph(nx.random_regular_graph(4, 100), id_scheme="permuted")
    trace = Runner().run(LubyMIS(), network, problems.MIS, seed=0)
    print(measure(trace))
"""

from repro.core import metrics, problems
from repro.core.experiment import evaluate, run_trials
from repro.core.metrics import (
    ComplexityMeasurement,
    complexity_hierarchy,
    edge_averaged_complexity,
    measure,
    node_averaged_complexity,
    worst_case_complexity,
)
from repro.core.trace import ExecutionTrace
from repro.local.algorithm import NodeAlgorithm
from repro.local.coroutine import CoroutineAlgorithm
from repro.local.network import Network
from repro.local.runner import Runner

__version__ = "1.0.0"

__all__ = [
    "Network",
    "Runner",
    "NodeAlgorithm",
    "CoroutineAlgorithm",
    "ExecutionTrace",
    "ComplexityMeasurement",
    "problems",
    "metrics",
    "measure",
    "evaluate",
    "run_trials",
    "node_averaged_complexity",
    "edge_averaged_complexity",
    "worst_case_complexity",
    "complexity_hierarchy",
    "__version__",
]
