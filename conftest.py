"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (e.g. in constrained environments without an editable install), and
registers the shared fixtures used by both the tests and the benchmarks.
"""

import pathlib
import sys

SRC = pathlib.Path(__file__).parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench_smoke: tiny perf-harness smoke run (select with `pytest -m bench_smoke`)",
    )
