"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (e.g. in constrained environments without an editable install).
Markers are registered declaratively in ``pytest.ini``.
"""

import pathlib
import sys

SRC = pathlib.Path(__file__).parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
