"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.local.network import Network
from repro.local.runner import Runner


@pytest.fixture
def runner() -> Runner:
    """A strict runner with a generous round limit."""
    return Runner(max_rounds=20_000)


@pytest.fixture
def small_graphs() -> dict:
    """A small zoo of workload graphs covering the paper's graph families."""
    return {
        "cycle": nx.cycle_graph(24),
        "path": nx.path_graph(17),
        "star": nx.star_graph(12),
        "grid": nx.convert_node_labels_to_integers(nx.grid_2d_graph(5, 5)),
        "gnp": nx.gnp_random_graph(40, 0.1, seed=3),
        "regular4": nx.random_regular_graph(4, 30, seed=4),
        "tree": nx.bfs_tree(nx.balanced_tree(2, 4), 0).to_undirected(),
        "two_triangles": nx.disjoint_union(nx.complete_graph(3), nx.complete_graph(3)),
        "isolated": nx.empty_graph(6),
    }


def make_network(graph: nx.Graph, seed: int = 0) -> Network:
    """Wrap a graph with permuted identifiers (the tests' default scheme)."""
    return Network.from_graph(graph, id_scheme="permuted", rng=random.Random(seed))


@pytest.fixture
def network_factory():
    """Factory fixture building networks with permuted identifiers."""
    return make_network
