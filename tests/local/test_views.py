"""Tests for r-hop view collection and view isomorphism helpers."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.local.views import (
    canonical_view_signature,
    ego_view,
    view_is_tree,
    views_isomorphic,
)


class TestEgoView:
    def test_radius_zero_is_single_node(self):
        view = ego_view(nx.cycle_graph(6), 0, 0)
        assert list(view.nodes()) == [0]
        assert view.nodes[0]["center"] is True

    def test_radius_one_excludes_boundary_edges(self):
        # In a triangle, the radius-1 view of a node contains all three nodes
        # but not the edge between the two distance-1 nodes.
        view = ego_view(nx.complete_graph(3), 0, 1)
        assert set(view.nodes()) == {0, 1, 2}
        assert view.has_edge(0, 1) and view.has_edge(0, 2)
        assert not view.has_edge(1, 2)

    def test_distances_recorded(self):
        view = ego_view(nx.path_graph(7), 0, 3)
        assert {v: view.nodes[v]["dist"] for v in view.nodes()} == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_radius_larger_than_graph(self):
        view = ego_view(nx.path_graph(4), 0, 10)
        assert view.number_of_nodes() == 4
        assert view.number_of_edges() == 3

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            ego_view(nx.path_graph(3), 0, -1)

    def test_view_is_tree_on_cycle(self):
        g = nx.cycle_graph(10)
        assert view_is_tree(g, 0, 4)
        assert not view_is_tree(g, 0, 10)


class TestViewIsomorphism:
    def test_cycle_nodes_have_isomorphic_views(self):
        g = nx.cycle_graph(12)
        assert views_isomorphic(g, 0, g, 5, radius=3)

    def test_different_degrees_not_isomorphic(self):
        star = nx.star_graph(4)
        path = nx.path_graph(5)
        assert not views_isomorphic(star, 0, path, 2, radius=1)

    def test_centre_must_map_to_centre(self):
        # A path: the views of an endpoint and of the middle node differ at radius 1.
        g = nx.path_graph(5)
        assert not views_isomorphic(g, 0, g, 2, radius=1)
        assert views_isomorphic(g, 1, g, 3, radius=1)

    def test_labelled_views(self):
        g = nx.path_graph(3)
        label_a = lambda u, v: "x"
        label_b = lambda u, v: "y"
        assert views_isomorphic(g, 1, g, 1, 1, edge_label_a=label_a, edge_label_b=label_a)
        assert not views_isomorphic(g, 1, g, 1, 1, edge_label_a=label_a, edge_label_b=label_b)

    def test_regular_graph_views_with_same_radius(self):
        g = nx.random_regular_graph(3, 14, seed=1)
        h = nx.random_regular_graph(3, 14, seed=2)
        # Radius-1 views of 3-regular graphs are all stars with three leaves.
        assert views_isomorphic(g, 0, h, 5, radius=1)


class TestCanonicalSignature:
    def test_equal_signatures_for_symmetric_positions(self):
        g = nx.cycle_graph(16)
        assert canonical_view_signature(g, 0, 3) == canonical_view_signature(g, 7, 3)

    def test_different_signatures_for_different_structures(self):
        path = nx.path_graph(9)
        assert canonical_view_signature(path, 0, 2) != canonical_view_signature(path, 4, 2)

    def test_signature_of_tree_views_is_tree_canonical(self):
        tree = nx.balanced_tree(2, 3)
        sig_root = canonical_view_signature(tree, 0, 2)
        sig_leaf = canonical_view_signature(tree, 14, 2)
        assert sig_root != sig_leaf

    def test_non_tree_views_get_coarse_signature(self):
        g = nx.complete_graph(5)
        sig = canonical_view_signature(g, 0, 2)
        assert sig[0] == "non-tree"

    def test_signatures_are_hashable(self):
        g = nx.cycle_graph(8)
        signatures = {canonical_view_signature(g, v, 2) for v in g.nodes()}
        assert len(signatures) == 1
