"""Tests for the vectorised array engine (`repro.local.engine`).

The engine follows the relaxed trace-identity story established for
``fast_gnp_edges``: exact RNG-stream parity with the per-node Mersenne path
is impossible, so the coroutine runner stays the exact reference and the
engine is pinned by

* validator-verified outputs on shared graphs (same verdicts from the CSR
  validators),
* identical round-stamp *semantics* (Luby joins at odd rounds / removals at
  even rounds; matching completions at rounds ``≡ 3 (mod 4)``),
* round-distribution agreement with the coroutine twin over exhaustive
  fixed-seed sweeps (statistical, like ``tests/graphs/test_fast_gnp.py``),
* a pinned fixed-seed execution so the documented PCG64 block seed schedule
  cannot silently drift.
"""

from __future__ import annotations

import statistics
from collections import Counter

import numpy as np
import pytest

from repro.algorithms.matching.randomized import (
    RandomizedMatchingArray,
    RandomizedMaximalMatching,
)
from repro.algorithms.mis.luby import LubyMIS, LubyMISArray, luby_joins
from repro.core import problems
from repro.core.experiment import Experiment, run_trials, trial_seed
from repro.graphs import generators as gen
from repro.local.engine import ArrayEngine, ArrayTopology
from repro.local.network import Network
from repro.local.runner import RoundLimitExceeded, Runner


@pytest.fixture
def engine():
    return ArrayEngine()


@pytest.fixture
def runner():
    return Runner()


def _tvd(a: Counter, b: Counter) -> float:
    total_a, total_b = sum(a.values()), sum(b.values())
    keys = set(a) | set(b)
    return sum(abs(a[k] / total_a - b[k] / total_b) for k in keys) / 2.0


class TestEngineBasics:
    def test_luby_trace_is_valid_and_array_backed(self, engine):
        net = Network.from_edge_list(*gen.cycle_edges(20))
        trace = engine.run(LubyMISArray(), net, problems.MIS, seed=0)
        assert trace.completed
        assert trace.validate()
        assert trace.algorithm_name == "luby-mis"
        # Filled through from_arrays: the dict views stay unmaterialised
        # until asked for.
        assert trace._node_outputs is None
        assert len(trace.node_outputs) == net.n

    def test_matching_trace_is_valid(self, engine):
        net = Network.from_edge_list(*gen.random_regular_edges(4, 30, seed=1))
        trace = engine.run(
            RandomizedMatchingArray(), net, problems.MAXIMAL_MATCHING, seed=0
        )
        assert trace.completed
        assert trace.validate()
        assert len(trace.edge_outputs) == net.m

    def test_edgeless_graphs_finish_in_round_zero(self, engine):
        net = Network.from_edges(5, [])
        mis = engine.run(LubyMISArray(), net, problems.MIS, seed=0)
        assert mis.rounds == 0 and mis.completed
        assert mis.node_outputs == {v: True for v in range(5)}
        assert mis.node_commit_round == {v: 0 for v in range(5)}
        matching = engine.run(
            RandomizedMatchingArray(), net, problems.MAXIMAL_MATCHING, seed=0
        )
        assert matching.rounds == 0 and matching.completed
        assert matching.edge_outputs == {}

    def test_isolated_nodes_commit_at_round_zero(self, engine):
        net = Network.from_edges(4, [(0, 1)])
        trace = engine.run(LubyMISArray(), net, problems.MIS, seed=3)
        assert trace.node_commit_round[2] == 0 and trace.node_commit_round[3] == 0
        assert trace.node_outputs[2] is True and trace.node_outputs[3] is True
        assert trace.validate()

    def test_same_seed_reproduces_the_trace_exactly(self, engine):
        net = Network.from_edge_list(*gen.erdos_renyi_edges(40, 4.0, seed=5))
        first = engine.run(LubyMISArray(), net, problems.MIS, seed=11)
        second = ArrayEngine().run(LubyMISArray(), net, problems.MIS, seed=11)
        assert first == second

    def test_different_seeds_usually_differ(self, engine):
        net = Network.from_edge_list(*gen.erdos_renyi_edges(40, 4.0, seed=5))
        traces = [engine.run(LubyMISArray(), net, problems.MIS, seed=s) for s in range(6)]
        outputs = {tuple(sorted(t.selected_nodes())) for t in traces}
        assert len(outputs) > 1

    def test_round_limit_strict_raises(self):
        net = Network.from_edge_list(*gen.cycle_edges(64))
        engine = ArrayEngine(max_rounds=1, strict=True)
        with pytest.raises(RoundLimitExceeded):
            engine.run(LubyMISArray(), net, problems.MIS, seed=0)

    def test_round_limit_lenient_returns_incomplete(self):
        net = Network.from_edge_list(*gen.cycle_edges(64))
        engine = ArrayEngine(max_rounds=1, strict=False)
        trace = engine.run(LubyMISArray(), net, problems.MIS, seed=0)
        assert not trace.completed
        assert trace.rounds == 1
        # Only round-1 joiners committed; everything else has no output.
        assert set(trace.node_commit_round.values()) == {1}
        assert all(value is True for value in trace.node_outputs.values())

    def test_invalid_max_rounds(self):
        with pytest.raises(ValueError):
            ArrayEngine(max_rounds=-1)

    def test_topology_is_pooled_per_network(self, engine):
        net = Network.from_edge_list(*gen.cycle_edges(10))
        engine.run(LubyMISArray(), net, problems.MIS, seed=0)
        topo = engine._topology(net)
        engine.run(LubyMISArray(), net, problems.MIS, seed=1)
        assert engine._topology(net) is topo

    def test_topology_cache_keeps_alternating_networks(self, engine):
        # Regression: the cache used to hold a single entry, so a sweep
        # alternating two networks rebuilt ArrayTopology on every call.
        nets = [Network.from_edge_list(*gen.cycle_edges(10 + i)) for i in range(4)]
        topos = [engine._topology(net) for net in nets]
        for net, topo in zip(nets, topos):
            assert engine._topology(net) is topo

    def test_topology_cache_evicts_least_recently_used(self, engine):
        cap = ArrayEngine._TOPOLOGY_CACHE_SIZE
        nets = [Network.from_edge_list(*gen.cycle_edges(8 + i)) for i in range(cap + 1)]
        topos = [engine._topology(net) for net in nets]
        # The oldest entry fell out; everything younger survived.
        assert len(engine._topology_cache) == cap
        assert engine._topology(nets[0]) is not topos[0]
        for net, topo in zip(nets[2:], topos[2:]):
            assert engine._topology(net) is topo

    def test_works_on_tuple_and_array_built_networks(self, engine):
        n, edges = gen.erdos_renyi_edges(50, 4.0, seed=9)
        tuple_net = Network.from_edges(n, edges)
        array_net = Network.from_endpoint_arrays(
            n,
            np.asarray([u for u, _ in edges], dtype=np.int64),
            np.asarray([v for _, v in edges], dtype=np.int64),
        )
        a = engine.run(LubyMISArray(), tuple_net, problems.MIS, seed=4)
        b = ArrayEngine().run(LubyMISArray(), array_net, problems.MIS, seed=4)
        # Same topology + identifiers + seed schedule → identical execution.
        assert a.node_outputs == b.node_outputs
        assert a.node_commit_round == b.node_commit_round
        assert a.rounds == b.rounds and a.total_messages == b.total_messages


class TestLubyArraySemantics:
    def test_commit_round_parity_matches_the_coroutine_timeline(self, engine):
        net = Network.from_edge_list(*gen.erdos_renyi_edges(80, 5.0, seed=3))
        trace = engine.run(LubyMISArray(), net, problems.MIS, seed=2)
        for v, value in trace.node_outputs.items():
            r = trace.node_commit_round[v]
            if value:
                # Joins happen at odd rounds (or round 0 for isolated nodes).
                assert r == 0 or r % 2 == 1
            else:
                assert r % 2 == 0 and r > 0

    def test_tie_breaking_uses_identifiers(self):
        net = Network.from_edges(3, [(0, 1), (1, 2)])
        topology = ArrayTopology(net)
        undecided = np.ones(3, dtype=bool)
        priorities = np.array([0.5, 0.5, 0.1])
        joins = luby_joins(priorities, undecided, topology)
        # Nodes 0 and 1 tie; the larger identifier (1) wins, exactly the
        # coroutine's (priority, identifier) tuple comparison.
        assert joins.tolist() == [False, True, False]
        flipped = luby_joins(
            priorities, undecided, topology, identifiers=np.array([5, 1, 0])
        )
        assert flipped.tolist() == [True, False, False]

    def test_lonely_undecided_node_joins(self):
        # A node whose undecided neighbourhood is empty joins like its
        # coroutine twin does on an empty inbox.
        net = Network.from_edges(2, [(0, 1)])
        topology = ArrayTopology(net)
        undecided = np.array([True, False])
        joins = luby_joins(np.array([0.0, 0.9]), undecided, topology)
        assert joins.tolist() == [True, False]

    def test_first_phase_message_count_matches_coroutine_exactly(self):
        # Message accounting is decision-dependent from phase 2 on, but the
        # first phase is deterministic: every node broadcasts in both of its
        # rounds, 2m messages each.  Cap the run at the first phase and the
        # two engines must agree exactly.
        net = Network.from_edge_list(*gen.cycle_edges(30))
        a = ArrayEngine(max_rounds=2, strict=False).run(
            LubyMISArray(), net, problems.MIS, seed=1
        )
        c = Runner(max_rounds=2, strict=False).run(
            LubyMIS(), net, problems.MIS, seed=1
        )
        assert a.total_messages == c.total_messages == 2 * (2 * net.m)


class TestMatchingArraySemantics:
    def test_completion_rounds_are_3_mod_4_on_both_engines(self, engine, runner):
        net = Network.from_edge_list(*gen.random_regular_edges(3, 20, seed=2))
        for seed in range(5):
            a = engine.run(
                RandomizedMatchingArray(), net, problems.MAXIMAL_MATCHING, seed=seed
            )
            c = runner.run(
                RandomizedMaximalMatching(), net, problems.MAXIMAL_MATCHING, seed=seed
            )
            assert a.rounds % 4 == 3
            assert c.rounds % 4 == 3

    def test_matched_edges_commit_before_removals_propagate(self, engine):
        net = Network.from_edge_list(*gen.erdos_renyi_edges(40, 3.0, seed=8))
        trace = engine.run(
            RandomizedMatchingArray(), net, problems.MAXIMAL_MATCHING, seed=1
        )
        # Every commit round is ≡ 3 (mod 4): the matched endpoint's commit,
        # never the other endpoint's round-4k duplicate.
        assert all(r % 4 == 3 for r in trace.edge_commit_round.values())

    def test_first_iteration_message_count_matches_coroutine_exactly(self):
        # Rounds 4k−3 / 4k−2 / 4k−1 each cost one message per direction of
        # every undecided edge; capped at round 3 the count is exactly 6m on
        # both engines (round 4k is the first decision-dependent count).
        net = Network.from_edge_list(*gen.cycle_edges(20))
        a = ArrayEngine(max_rounds=3, strict=False).run(
            RandomizedMatchingArray(), net, problems.MAXIMAL_MATCHING, seed=1
        )
        c = Runner(max_rounds=3, strict=False).run(
            RandomizedMaximalMatching(), net, problems.MAXIMAL_MATCHING, seed=1
        )
        assert a.total_messages == c.total_messages == 3 * (2 * net.m)

    def test_marking_factor_validated_and_forwarded(self):
        with pytest.raises(ValueError):
            RandomizedMatchingArray(marking_factor=0.0)
        twin = RandomizedMaximalMatching(marking_factor=2.5).as_array_algorithm()
        assert isinstance(twin, RandomizedMatchingArray)
        assert twin.marking_factor == 2.5


class TestDifferentialAgainstCoroutine:
    @pytest.mark.parametrize(
        "workload",
        [
            gen.cycle_edges(15),
            gen.random_regular_edges(4, 24, seed=1),
            gen.erdos_renyi_edges(50, 5.0, seed=2),
        ],
        ids=["cycle", "regular", "gnp"],
    )
    def test_verdicts_agree_on_shared_graphs(self, workload, engine, runner):
        net = Network.from_edge_list(*workload, id_scheme="permuted")
        for seed in range(4):
            mis_a = engine.run(LubyMISArray(), net, problems.MIS, seed=seed)
            mis_c = runner.run(LubyMIS(), net, problems.MIS, seed=seed)
            assert bool(mis_a.validate()) and bool(mis_c.validate())
            match_a = engine.run(
                RandomizedMatchingArray(), net, problems.MAXIMAL_MATCHING, seed=seed
            )
            match_c = runner.run(
                RandomizedMaximalMatching(), net, problems.MAXIMAL_MATCHING, seed=seed
            )
            assert bool(match_a.validate()) and bool(match_c.validate())

    def test_luby_round_distributions_agree_over_seed_sweep(self, engine, runner):
        """Exhaustive fixed-seed sweep: the two engines sample the same
        round-count distribution (deterministic test: fixed seeds)."""
        net = Network.from_edge_list(*gen.cycle_edges(12))
        seeds = range(300)
        dist_a = Counter(
            engine.run(LubyMISArray(), net, problems.MIS, seed=s).rounds for s in seeds
        )
        dist_c = Counter(
            runner.run(LubyMIS(), net, problems.MIS, seed=s).rounds for s in seeds
        )
        assert _tvd(dist_a, dist_c) < 0.15

    def test_luby_round_distributions_agree_on_gnp(self, engine, runner):
        net = Network.from_edge_list(*gen.erdos_renyi_edges(60, 5.0, seed=2))
        seeds = range(200)
        dist_a = Counter(
            engine.run(LubyMISArray(), net, problems.MIS, seed=s).rounds for s in seeds
        )
        dist_c = Counter(
            runner.run(LubyMIS(), net, problems.MIS, seed=s).rounds for s in seeds
        )
        assert _tvd(dist_a, dist_c) < 0.2

    def test_single_edge_matching_is_geometric_on_both_engines(self, engine, runner):
        """On K₂ the iteration count is exactly Geometric(1/8); both paths
        must land on its mean (8) within sampling tolerance."""
        net = Network.from_edges(2, [(0, 1)])
        seeds = range(1500)
        iters_a = [
            (engine.run(
                RandomizedMatchingArray(), net, problems.MAXIMAL_MATCHING, seed=s
            ).rounds + 1) // 4
            for s in seeds
        ]
        iters_c = [
            (runner.run(
                RandomizedMaximalMatching(), net, problems.MAXIMAL_MATCHING, seed=s
            ).rounds + 1) // 4
            for s in seeds
        ]
        assert abs(statistics.mean(iters_a) - 8.0) < 1.0
        assert abs(statistics.mean(iters_c) - 8.0) < 1.0

    def test_matching_mean_rounds_agree_over_seed_sweep(self, engine, runner):
        net = Network.from_edge_list(*gen.cycle_edges(12))
        seeds = range(800)
        mean_a = statistics.mean(
            engine.run(
                RandomizedMatchingArray(), net, problems.MAXIMAL_MATCHING, seed=s
            ).rounds
            for s in seeds
        )
        mean_c = statistics.mean(
            runner.run(
                RandomizedMaximalMatching(), net, problems.MAXIMAL_MATCHING, seed=s
            ).rounds
            for s in seeds
        )
        assert abs(mean_a - mean_c) / mean_c < 0.10

    def test_mis_sizes_agree_in_expectation(self, engine, runner):
        net = Network.from_edge_list(*gen.erdos_renyi_edges(60, 5.0, seed=2))
        seeds = range(200)
        mean_a = statistics.mean(
            len(engine.run(LubyMISArray(), net, problems.MIS, seed=s).selected_nodes())
            for s in seeds
        )
        mean_c = statistics.mean(
            len(runner.run(LubyMIS(), net, problems.MIS, seed=s).selected_nodes())
            for s in seeds
        )
        assert abs(mean_a - mean_c) / mean_c < 0.05


class TestPinnedSeedSchedule:
    """Fixed-seed executions pin the documented PCG64 block schedule.

    If these fail after a refactor, the engine's seed schedule drifted —
    that is a breaking change for reproducibility and must be deliberate
    (bump the documentation in ``repro/local/engine.py`` and
    ``benchmarks/README.md`` alongside).
    """

    def test_luby_on_cycle9_seed7(self):
        net = Network.from_edge_list(*gen.cycle_edges(9))
        trace = ArrayEngine().run(LubyMISArray(), net, problems.MIS, seed=7)
        assert trace.node_outputs == {
            0: False, 1: True, 2: False, 3: True, 4: False,
            5: True, 6: False, 7: True, 8: False,
        }
        assert trace.node_commit_round == {
            0: 2, 1: 1, 2: 2, 3: 3, 4: 2, 5: 1, 6: 2, 7: 1, 8: 2,
        }
        assert trace.rounds == 3
        assert trace.total_messages == 38

    def test_matching_on_cycle9_seed7(self):
        net = Network.from_edge_list(*gen.cycle_edges(9))
        trace = ArrayEngine().run(
            RandomizedMatchingArray(), net, problems.MAXIMAL_MATCHING, seed=7
        )
        assert trace.selected_edges() == [(0, 1), (3, 4), (5, 6), (7, 8)]
        assert trace.edge_commit_round == {
            (0, 1): 27, (0, 8): 19, (1, 2): 27, (2, 3): 51, (3, 4): 51,
            (4, 5): 3, (5, 6): 3, (6, 7): 3, (7, 8): 19,
        }
        assert trace.rounds == 51
        assert trace.total_messages == 414


class TestEngineRouting:
    def test_run_trials_engine_array_uses_the_engine(self):
        net = Network.from_edge_list(*gen.cycle_edges(16))
        traces = run_trials(
            LubyMIS, net, problems.MIS, trials=3, seed=5, engine="array"
        )
        expected = [
            ArrayEngine().run(LubyMISArray(), net, problems.MIS, seed=trial_seed(5, i))
            for i in range(3)
        ]
        assert [t.node_outputs for t in traces] == [t.node_outputs for t in expected]
        assert [t.rounds for t in traces] == [t.rounds for t in expected]

    def test_run_trials_engine_auto_picks_array_for_protocol_algorithms(self):
        net = Network.from_edge_list(*gen.cycle_edges(16))
        auto = run_trials(LubyMIS, net, problems.MIS, trials=2, seed=1, engine="auto")
        explicit = run_trials(
            LubyMIS, net, problems.MIS, trials=2, seed=1, engine="array"
        )
        assert [t.node_outputs for t in auto] == [t.node_outputs for t in explicit]

    def test_run_trials_engine_node_stays_on_the_coroutine_path(self):
        net = Network.from_edge_list(*gen.cycle_edges(16))
        node = run_trials(LubyMIS, net, problems.MIS, trials=2, seed=1, engine="node")
        reference = [
            Runner().run(LubyMIS(), net, problems.MIS, seed=trial_seed(1, i))
            for i in range(2)
        ]
        assert [t.node_outputs for t in node] == [t.node_outputs for t in reference]

    def test_engine_auto_falls_back_for_non_protocol_algorithms(self):
        from repro.algorithms.ruling_set.randomized import RandomizedTwoTwoRulingSet

        net = Network.from_edge_list(*gen.cycle_edges(12))
        problem = problems.ruling_set(2, 2)
        traces = run_trials(
            lambda: RandomizedTwoTwoRulingSet(),
            net,
            problem,
            trials=1,
            seed=0,
            engine="auto",
        )
        reference = Runner().run(RandomizedTwoTwoRulingSet(), net, problem, seed=0)
        assert traces[0].node_outputs == reference.node_outputs
        assert traces[0].rounds == reference.rounds

    def test_engine_array_rejects_non_protocol_algorithms(self):
        from repro.algorithms.ruling_set.randomized import RandomizedTwoTwoRulingSet

        net = Network.from_edge_list(*gen.cycle_edges(12))
        with pytest.raises(TypeError):
            run_trials(
                lambda: RandomizedTwoTwoRulingSet(),
                net,
                problems.ruling_set(2, 2),
                trials=1,
                engine="array",
            )

    def test_unknown_engine_rejected(self):
        net = Network.from_edge_list(*gen.cycle_edges(12))
        with pytest.raises(ValueError):
            run_trials(LubyMIS, net, problems.MIS, trials=1, engine="vectorised")
        with pytest.raises(ValueError):
            Experiment(
                problem=problems.MIS,
                algorithm=LubyMIS,
                graphs=net,
                trials=1,
                engine="vectorised",
            )

    def test_experiment_engine_auto_matches_manual_engine_runs(self):
        arrays = gen.fast_gnp_edges(300, 8.0 / 299, seed=11, as_arrays=True)
        result = Experiment(
            problem=problems.MIS,
            algorithm=LubyMIS,
            graphs=arrays,
            trials=2,
            id_scheme="sequential",
            engine="auto",
        ).run()
        run = result.run
        assert run.ok
        net = run.network
        expected = [
            ArrayEngine(max_rounds=20_000).run(
                LubyMISArray(), net, problems.MIS, seed=trial_seed(0, i)
            )
            for i in range(2)
        ]
        assert [t.node_outputs for t in run.traces] == [
            t.node_outputs for t in expected
        ]
        assert [t.rounds for t in run.traces] == [t.rounds for t in expected]

    def test_experiment_default_stays_bit_exact_on_the_node_path(self):
        arrays = gen.fast_gnp_edges(300, 8.0 / 299, seed=11, as_arrays=True)
        result = Experiment(
            problem=problems.MIS,
            algorithm=LubyMIS,
            graphs=arrays,
            trials=2,
            id_scheme="sequential",
        ).run()
        net = result.run.network
        reference = [
            Runner(max_rounds=20_000).run(
                LubyMIS(), net, problems.MIS, seed=trial_seed(0, i)
            )
            for i in range(2)
        ]
        assert [t.node_outputs for t in result.run.traces] == [
            t.node_outputs for t in reference
        ]

    def test_sweep_engine_array_produces_valid_measurements(self):
        from repro.analysis.sweep import sweep

        points = sweep(
            "n",
            [24, 36],
            lambda n: gen.cycle_edges(n, as_arrays=True),
            {
                "luby": (lambda net: LubyMIS(), lambda net: problems.MIS),
                "matching": (
                    lambda net: RandomizedMaximalMatching(),
                    lambda net: problems.MAXIMAL_MATCHING,
                ),
            },
            trials=2,
            seed=0,
            engine="auto",
        )
        assert len(points) == 4
        for point in points:
            assert point.measurement.worst_case >= 1
            assert point.measurement.trials == 2
