"""Batch-size invariance of :meth:`ArrayEngine.run_batch`.

The contract under test: stepping ``T`` trials together over ``(T, n)`` /
``(T, m)`` state arrays is a *layout* change, not a semantics change.  Trial
``t`` of a batch draws from its own ``PCG64(seeds[t])`` stream — the same
stream the single-trial engine uses — and completed trials stop mutating
state, stop accruing messages, and stop consuming randomness.  Every trace a
batch returns must therefore be bit-identical to the corresponding
single-trial run, for every batch size.
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.algorithms.matching.randomized import RandomizedMaximalMatching
from repro.algorithms.mis.luby import LubyMIS
from repro.core import problems
from repro.core.experiment import Experiment, run_trials, trial_seed
from repro.graphs import generators as gen
from repro.local.engine import ArrayEngine, batch_chunk
from repro.local.faults import FaultSchedule
from repro.local.network import Network
from repro.local.runner import Runner

engine_module = sys.modules["repro.local.engine"]

BATCH_SIZES = (1, 2, 7, 64)
SEEDS = list(range(100, 164))


def cycle_network(n: int = 48) -> Network:
    return Network.from_edges(n, [(i, (i + 1) % n) for i in range(n)])


def gnp_network(n: int = 40, seed: int = 5) -> Network:
    return Network.from_endpoint_arrays(
        *_gnp_arrays(n, seed), id_scheme="sequential"
    )


def _gnp_arrays(n: int, seed: int):
    rng = np.random.Generator(np.random.PCG64(seed))
    us, vs = np.triu_indices(n, k=1)
    keep = rng.random(us.size) < 0.12
    return n, us[keep], vs[keep]


ALGORITHMS = [
    ("luby", lambda: LubyMIS().as_array_algorithm(), problems.MIS),
    (
        "matching",
        lambda: RandomizedMaximalMatching().as_array_algorithm(),
        problems.MAXIMAL_MATCHING,
    ),
]


def assert_traces_identical(got, want):
    assert got.rounds == want.rounds
    assert got.completed == want.completed
    assert got.total_messages == want.total_messages
    assert bytes(got.node_completion_array().tobytes()) == bytes(
        want.node_completion_array().tobytes()
    )
    assert bytes(got.edge_completion_array().tobytes()) == bytes(
        want.edge_completion_array().tobytes()
    )
    assert got.node_outputs == want.node_outputs
    assert got.edge_outputs == want.edge_outputs


class TestBatchSizeInvariance:
    @pytest.mark.parametrize("name,factory,problem", ALGORITHMS)
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_batched_traces_match_single_trial_runs(
        self, name, factory, problem, batch_size
    ):
        network = gnp_network()
        engine = ArrayEngine()
        seeds = SEEDS[:batch_size]
        singles = [
            engine.run(factory(), network, problem, seed=seed) for seed in seeds
        ]
        batched = engine.run_batch(factory(), network, problem, seeds)
        assert len(batched) == batch_size
        for got, want in zip(batched, singles):
            assert_traces_identical(got, want)

    @pytest.mark.parametrize("name,factory,problem", ALGORITHMS)
    def test_batched_traces_validate(self, name, factory, problem):
        network = cycle_network()
        engine = ArrayEngine()
        for trace in engine.run_batch(factory(), network, problem, SEEDS[:8]):
            trace.require_valid()

    @pytest.mark.parametrize("name,factory,problem", ALGORITHMS)
    def test_trials_of_one_batch_are_independent(self, name, factory, problem):
        # The same seed at different batch positions produces the same trace:
        # position in the batch must not leak into any trial's randomness.
        network = gnp_network(seed=9)
        engine = ArrayEngine()
        lone = engine.run_batch(factory(), network, problem, [SEEDS[3]])[0]
        crowded = engine.run_batch(factory(), network, problem, SEEDS[:8])[3]
        assert_traces_identical(crowded, lone)


class TestRunBatchGuards:
    def test_fault_schedules_are_refused(self):
        engine = ArrayEngine()
        with pytest.raises(TypeError, match="fault schedules"):
            engine.run_batch(
                LubyMIS().as_array_algorithm(),
                cycle_network(8),
                problems.MIS,
                [1, 2],
                faults=FaultSchedule(crashes={0: 1}),
            )

    def test_algorithms_without_batched_twin_are_refused(self):
        algorithm = LubyMIS().as_array_algorithm()
        algorithm.supports_batch = False  # shadow the class attribute
        with pytest.raises(TypeError, match="no batched array implementation"):
            ArrayEngine().run_batch(algorithm, cycle_network(8), problems.MIS, [1])


class TestChunking:
    def test_batch_chunk_respects_budget(self):
        per_trial = 48 * (1000 + 2000)
        assert batch_chunk(1000, 2000, 10, budget_bytes=per_trial * 4) == 4
        assert batch_chunk(1000, 2000, 3, budget_bytes=per_trial * 4) == 3

    def test_batch_chunk_never_returns_zero(self):
        assert batch_chunk(10**6, 10**7, 100, budget_bytes=1) == 1
        assert batch_chunk(0, 0, 5) == 5

    @pytest.mark.parametrize("name,factory,problem", ALGORITHMS)
    def test_chunked_execution_is_invariant(
        self, name, factory, problem, monkeypatch
    ):
        # Force run_batch to split 10 seeds into chunks of 3; the per-trial
        # streams are independent, so the traces cannot change.
        network = gnp_network()
        engine = ArrayEngine()
        whole = engine.run_batch(factory(), network, problem, SEEDS[:10])
        monkeypatch.setattr(engine_module, "batch_chunk", lambda *a, **k: 3)
        chunked = engine.run_batch(factory(), network, problem, SEEDS[:10])
        for got, want in zip(chunked, whole):
            assert_traces_identical(got, want)


class TestBatchRouting:
    """run_trials / Experiment route multi-trial array cells through run_batch."""

    def test_run_trials_array_engine_matches_per_trial_calls(self):
        network = cycle_network(30)
        runner = Runner(max_rounds=10_000)
        batched = run_trials(
            LubyMIS,
            network,
            problems.MIS,
            trials=5,
            seed=11,
            runner=runner,
            engine="array",
        )
        for trial, trace in enumerate(batched):
            single = run_trials(
                LubyMIS,
                network,
                problems.MIS,
                trials=1,
                seed=trial_seed(11, trial),
                runner=runner,
                engine="array",
            )[0]
            assert_traces_identical(trace, single)

    def test_run_trials_invokes_factory_once_per_trial(self):
        calls = []

        def factory():
            calls.append(1)
            return LubyMIS()

        run_trials(
            factory,
            cycle_network(16),
            problems.MIS,
            trials=4,
            seed=2,
            runner=Runner(max_rounds=10_000),
            engine="auto",
        )
        assert len(calls) == 4

    def test_experiment_auto_engine_matches_node_free_batching(self):
        network = cycle_network(24)
        batched = Experiment(
            problem=problems.MIS,
            algorithm=LubyMIS,
            graphs=network,
            trials=4,
            seed=7,
            engine="array",
        ).run()
        singles = [
            Experiment(
                problem=problems.MIS,
                algorithm=LubyMIS,
                graphs=network,
                seeds=[trial_seed(7, trial)],
                engine="array",
            ).run()
            for trial in range(4)
        ]
        assert batched.ok
        for trial, trace in enumerate(batched.run.traces):
            assert_traces_identical(trace, singles[trial].run.traces[0])
