"""Tests for fault injection (`repro.local.faults`) through both engines.

The cross-engine parity contract under faults is deliberately layered:

* **fault events and crash sets** come from the engine-independent
  :class:`FaultSchedule` (PCG64 keyed by ``(seed, round)``), so both engines
  record literally identical events for the rounds they execute — pinned
  here on the common round prefix;
* **committed outputs** only coincide where the adversary forces them (a
  crashed neighbour silencing a K2, a drop-everything schedule): the two
  engines draw algorithm randomness from different documented streams, so
  generic executions diverge while both stay valid on the surviving
  subgraph;
* **validity on the surviving subgraph** is engine-invariant for crash-only
  Luby schedules (announcements never mislead under crash-stop), and is
  checked per engine elsewhere.  Under message drops, invalid outputs are a
  legitimate recorded outcome (two neighbours can both join when both
  announcement directions drop), so no cross-engine validity invariant is
  asserted there.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.local.faults as faults_module
from repro.algorithms.matching.randomized import RandomizedMaximalMatching
from repro.algorithms.mis.luby import LubyMIS
from repro.core import problems
from repro.core.errors import classify_failure
from repro.core.problems import (
    MISSING,
    csr_is_surviving_coloring,
    csr_is_surviving_maximal_matching,
    csr_is_surviving_mis,
    csr_is_surviving_ruling_set,
    csr_is_surviving_sinkless_orientation,
)
from repro.graphs import generators as gen
from repro.local.algorithm import Broadcast
from repro.local.coroutine import CoroutineAlgorithm
from repro.local.engine import ArrayAlgorithm, ArrayEngine, ArrayState
from repro.local.faults import FaultSchedule
from repro.local.network import Network
from repro.local.runner import Runner


def k2() -> Network:
    return Network.from_edge_list(2, [(0, 1)])


def p3() -> Network:
    return Network.from_edge_list(3, [(0, 1), (1, 2)])


def pinned_network() -> Network:
    """The n=12, m=19 G(n, p) instance all pinned fault executions use."""
    return Network.from_edge_list(
        *gen.erdos_renyi_edges(12, 3.0, seed=7), id_scheme="permuted"
    )


def run_both(algorithm, net, problem, seed, faults, max_rounds=200):
    runner_trace = Runner(strict=False, max_rounds=max_rounds).run(
        algorithm, net, problem, seed=seed, faults=faults
    )
    array_trace = ArrayEngine(strict=False, max_rounds=max_rounds).run(
        algorithm.as_array_algorithm(), net, problem, seed=seed, faults=faults
    )
    return runner_trace, array_trace


class TestFaultScheduleValidation:
    def test_rejects_bad_crash_vertex(self):
        with pytest.raises(ValueError, match="crash vertex"):
            FaultSchedule(crashes={-1: 3})

    def test_rejects_bad_crash_round(self):
        with pytest.raises(ValueError, match="crash round"):
            FaultSchedule(crashes={0: 0})

    @pytest.mark.parametrize("rates", [(-0.1, 0.0), (1.5, 0.0), (0.0, -0.2), (0.0, 2.0)])
    def test_rejects_out_of_range_rates(self, rates):
        drop, delay = rates
        with pytest.raises(ValueError):
            FaultSchedule(drop_rate=drop, delay_rate=delay)

    def test_rejects_rate_sum_above_one(self):
        with pytest.raises(ValueError, match="must not exceed 1"):
            FaultSchedule(drop_rate=0.6, delay_rate=0.6)

    def test_crash_queries(self):
        fs = FaultSchedule(crashes={4: 2, 1: 2, 7: 5})
        assert fs.crashes_at(2) == (1, 4)
        assert fs.crashes_at(3) == ()
        assert fs.crashed_by(4) == (1, 4)
        assert fs.crashed_by(5) == (1, 4, 7)
        assert fs.crashed_within(1) == ()
        alive = fs.alive_mask(2, 8)
        assert not alive[1] and not alive[4] and alive[7]

    def test_directed_fates_are_deterministic_and_round_keyed(self):
        fs = FaultSchedule(drop_rate=0.3, delay_rate=0.2, seed=11)
        again = FaultSchedule(drop_rate=0.3, delay_rate=0.2, seed=11)
        for r in (1, 2, 7):
            assert (fs.directed_fates(r, 10) == again.directed_fates(r, 10)).all()
        # Different rounds draw different blocks.
        assert (fs.directed_fates(1, 10) != fs.directed_fates(2, 10)).any()
        # No message faults => no mask at all.
        assert FaultSchedule(crashes={0: 1}).directed_fates(1, 10) is None

    def test_round_events_skip_crashed_endpoints_and_keep_order(self):
        net = pinned_network()
        us, vs = net.edge_endpoints()
        fs = FaultSchedule(crashes={3: 2, 8: 4}, drop_rate=0.2, seed=5)
        crash_events = [e for e in fs.round_events(2, us, vs) if e[0] == "crash"]
        assert crash_events == [("crash", 2, 3)]
        for r in (2, 3, 4):
            for event in fs.round_events(r, us, vs):
                if event[0] == "crash":
                    continue
                _, _, source, target = event
                assert source not in fs.crashed_by(r)
                assert target not in fs.crashed_by(r)


class TestForcedParity:
    """Adversaries strong enough to force identical outputs on both engines."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_k2_crash_silences_the_neighbour(self, seed):
        fs = FaultSchedule(crashes={1: 1})
        for trace in run_both(LubyMIS(), k2(), problems.MIS, seed, fs):
            assert dict(trace.node_outputs) == {0: True}
            assert trace.rounds == 1
            assert trace.completed
            assert trace.crashed == (1,)
            assert trace.fault_events == (("crash", 1, 1),)
            assert trace.validate().valid

    @pytest.mark.parametrize("seed", [0, 5])
    def test_p3_middle_crash_isolates_the_endpoints(self, seed):
        fs = FaultSchedule(crashes={1: 1})
        for trace in run_both(LubyMIS(), p3(), problems.MIS, seed, fs):
            assert dict(trace.node_outputs) == {0: True, 2: True}
            assert trace.rounds == 1
            assert trace.validate().valid

    @pytest.mark.parametrize("seed", [0, 7])
    def test_k2_total_drop_makes_both_join(self, seed):
        """With every message dropped, both K2 nodes see silence and join.

        The resulting outputs are *invalid* as an MIS — a legitimate
        recorded outcome of the adversary, identical on both engines.
        """
        fs = FaultSchedule(drop_rate=1.0, seed=3)
        for trace in run_both(LubyMIS(), k2(), problems.MIS, seed, fs):
            assert dict(trace.node_outputs) == {0: True, 1: True}
            assert trace.rounds == 1
            assert trace.fault_events == (("drop", 1, 0, 1), ("drop", 1, 1, 0))
            assert not trace.validate().valid

    def test_k2_matching_crash_excuses_the_edge(self):
        fs = FaultSchedule(crashes={1: 1})
        for trace in run_both(
            RandomizedMaximalMatching(), k2(), problems.MAXIMAL_MATCHING, 0, fs
        ):
            assert dict(trace.edge_outputs) == {}
            assert trace.rounds == 1
            assert trace.completed
            assert trace.validate().valid

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_empty_schedule_is_bit_identical_to_no_faults(self, seed):
        """``FaultSchedule()`` must not perturb either engine in any way."""
        net = Network.from_edge_list(
            *gen.erdos_renyi_edges(10, 2.5, seed=3), id_scheme="permuted"
        )
        fs = FaultSchedule()
        plain = Runner(max_rounds=500).run(LubyMIS(), net, problems.MIS, seed=seed)
        faulted = Runner(max_rounds=500).run(
            LubyMIS(), net, problems.MIS, seed=seed, faults=fs
        )
        assert plain == faulted
        assert faulted.fault_events == ()
        assert faulted.crashed == ()
        engine = ArrayEngine(max_rounds=500)
        array_plain = engine.run(
            LubyMIS().as_array_algorithm(), net, problems.MIS, seed=seed
        )
        array_faulted = engine.run(
            LubyMIS().as_array_algorithm(), net, problems.MIS, seed=seed, faults=fs
        )
        assert array_plain == array_faulted


class TestPinnedFaultedExecutions:
    """Fixed-seed pins so neither the fault schedule nor either engine drifts."""

    LUBY_FAULTS = dict(crashes={3: 2, 8: 4}, drop_rate=0.2, seed=5)

    COMMON_EVENTS = (
        ("drop", 1, 9, 0),
        ("drop", 1, 5, 1),
        ("drop", 1, 7, 2),
        ("drop", 1, 6, 7),
        ("crash", 2, 3),
        ("drop", 2, 0, 7),
        ("drop", 2, 0, 9),
        ("drop", 2, 9, 0),
        ("drop", 2, 11, 0),
        ("drop", 2, 2, 7),
        ("drop", 3, 2, 0),
        ("drop", 3, 0, 7),
        ("drop", 3, 7, 0),
        ("drop", 3, 0, 11),
        ("drop", 3, 2, 1),
        ("drop", 3, 2, 7),
        ("drop", 3, 7, 2),
        ("drop", 3, 7, 6),
        ("drop", 3, 6, 10),
        ("drop", 3, 7, 8),
        ("drop", 3, 8, 7),
    )

    def test_runner_luby_crash_and_drop_pin(self):
        fs = FaultSchedule(**self.LUBY_FAULTS)
        trace = Runner(strict=False, max_rounds=200).run(
            LubyMIS(), pinned_network(), problems.MIS, seed=1, faults=fs
        )
        assert dict(trace.node_outputs) == {
            0: False, 1: True, 2: False, 4: True, 5: False, 6: False,
            7: False, 8: True, 9: True, 10: True, 11: False,
        }
        assert trace.rounds == 3
        assert trace.total_messages == 74
        # Node 8's crash is scheduled for round 4, after this run finished.
        assert trace.crashed == (3,)
        assert trace.fault_events == self.COMMON_EVENTS
        assert trace.validate().valid

    def test_array_luby_crash_and_drop_pin(self):
        fs = FaultSchedule(**self.LUBY_FAULTS)
        trace = ArrayEngine(strict=False, max_rounds=200).run(
            LubyMIS().as_array_algorithm(),
            pinned_network(),
            problems.MIS,
            seed=1,
            faults=fs,
        )
        assert dict(trace.node_outputs) == {
            0: False, 1: True, 2: False, 3: True, 4: False, 5: False,
            6: False, 7: True, 8: True, 9: True, 10: True, 11: True,
        }
        assert trace.rounds == 4
        assert trace.total_messages == 102
        assert trace.crashed == (3, 8)
        assert trace.fault_events == self.COMMON_EVENTS + (
            ("crash", 4, 8),
            ("drop", 4, 2, 0),
            ("drop", 4, 7, 0),
            ("drop", 4, 1, 2),
            ("drop", 4, 1, 5),
            ("drop", 4, 6, 1),
            ("drop", 4, 2, 7),
        )
        assert trace.validate().valid

    def test_matching_crash_pin_both_engines(self):
        fs = FaultSchedule(crashes={0: 3})
        runner_trace, array_trace = run_both(
            RandomizedMaximalMatching(),
            pinned_network(),
            problems.MAXIMAL_MATCHING,
            2,
            fs,
            max_rounds=400,
        )
        assert runner_trace.rounds == 67
        assert array_trace.rounds == 39
        for trace in (runner_trace, array_trace):
            assert trace.completed
            assert trace.crashed == (0,)
            assert trace.validate().valid
        matched = {e for e, flag in runner_trace.edge_outputs.items() if flag}
        assert matched == {(1, 5), (2, 6), (3, 9), (4, 11), (7, 8)}
        array_matched = {e for e, flag in array_trace.edge_outputs.items() if flag}
        assert array_matched == {(1, 5), (2, 3), (4, 11), (6, 10), (7, 8)}


class TestCrossEngineContract:
    """The engine-invariant parts of faulted executions, over seed sweeps."""

    @pytest.mark.parametrize("seed", range(10))
    def test_crash_only_luby_is_always_surviving_valid(self, seed):
        net = pinned_network()
        fs = FaultSchedule(crashes={seed % net.n: 1 + seed % 3, (seed + 5) % net.n: 2})
        for trace in run_both(LubyMIS(), net, problems.MIS, seed, fs):
            assert trace.completed
            verdict = trace.validate()
            assert verdict.valid, verdict.reason

    @pytest.mark.parametrize("seed", range(6))
    def test_fault_events_agree_on_the_common_round_prefix(self, seed):
        """Both engines record the schedule's events for the rounds they ran."""
        net = pinned_network()
        fs = FaultSchedule(crashes={2: 2}, drop_rate=0.15, seed=seed)
        runner_trace, array_trace = run_both(LubyMIS(), net, problems.MIS, seed, fs)
        common = min(runner_trace.rounds, array_trace.rounds)
        runner_prefix = tuple(e for e in runner_trace.fault_events if e[1] <= common)
        array_prefix = tuple(e for e in array_trace.fault_events if e[1] <= common)
        assert runner_prefix == array_prefix
        for trace in (runner_trace, array_trace):
            assert trace.crashed == fs.crashed_within(trace.rounds)

    def test_unsupported_array_algorithm_is_rejected(self):
        class Opaque(ArrayAlgorithm):
            name = "opaque"

            def init_arrays(self, topology, rng):
                return ArrayState(topology.n, topology.m, nodes=True, edges=False)

            def step(self, round_index, state, topology, rng):
                state.node_values[:] = True
                state.node_rounds[:] = round_index
                state.halted[:] = True

        with pytest.raises(TypeError, match="no fault-aware array implementation"):
            ArrayEngine().run(
                Opaque(), k2(), problems.MIS, seed=0, faults=FaultSchedule(crashes={0: 1})
            )

    def test_array_engine_accepts_delays(self):
        """Delay schedules run on the array engine (late carry masks)."""
        trace = ArrayEngine(strict=False, max_rounds=200).run(
            LubyMIS().as_array_algorithm(),
            pinned_network(),
            problems.MIS,
            seed=0,
            faults=FaultSchedule(delay_rate=0.1, seed=2),
        )
        assert trace.completed
        assert any(e[0] == "delay" for e in trace.fault_events)


class TestSurvivingValidators:
    def test_mis_adjacent_joins_excused_only_via_crashes(self):
        net = p3()
        values = [True, True, False]
        assert not csr_is_surviving_mis(net, values, frozenset()).valid
        # Crashing one endpoint of the violating edge excuses it...
        assert csr_is_surviving_mis(net, values, frozenset({0})).valid
        # ...but an unrelated crash does not.
        assert not csr_is_surviving_mis(net, values, frozenset({2})).valid

    def test_mis_coverage_may_come_from_a_crashed_true_neighbour(self):
        net = p3()
        values = [True, False, False]
        # Node 2 is uncovered: no True neighbour, crashed or not.
        assert not csr_is_surviving_mis(net, values, frozenset()).valid
        # A crashed-but-committed True neighbour covers it exactly.
        covered = [True, False, True]
        assert csr_is_surviving_mis(net, covered, frozenset({2})).valid

    def test_matching_crashed_node_cannot_be_matched_twice(self):
        net = p3()
        both_matched = [True, True]
        verdict = csr_is_surviving_maximal_matching(net, both_matched, frozenset({1}))
        assert not verdict.valid
        assert "not a matching" in verdict.reason

    def test_matching_maximality_excuses_crashed_endpoints(self):
        net = p3()
        nothing_matched = [False, False]
        assert not csr_is_surviving_maximal_matching(net, nothing_matched, frozenset()).valid
        # Edge (0, 1) is excused by node 0's crash; (1, 2) still addable.
        assert not csr_is_surviving_maximal_matching(
            net, nothing_matched, frozenset({0})
        ).valid
        # Crashing the middle node excuses both edges.
        assert csr_is_surviving_maximal_matching(
            net, nothing_matched, frozenset({1})
        ).valid

    def test_matching_match_towards_crashed_node_justifies_false_edges(self):
        net = p3()
        values = [True, False]
        assert csr_is_surviving_maximal_matching(net, values, frozenset({0})).valid
        assert csr_is_surviving_maximal_matching(net, values, frozenset()).valid

    def test_missing_values_count_as_unmatched(self):
        net = p3()
        values = [MISSING, False]
        verdict = csr_is_surviving_maximal_matching(net, values, frozenset())
        assert not verdict.valid

    def test_coloring_monochromatic_only_on_surviving_edges(self):
        net = p3()
        values = [0, 0, 1]
        assert not csr_is_surviving_coloring(net, values, frozenset()).valid
        # Crashing one endpoint of the clashing edge removes it from the
        # surviving subgraph...
        assert csr_is_surviving_coloring(net, values, frozenset({0})).valid
        # ...but an unrelated crash leaves the clash in force.
        assert not csr_is_surviving_coloring(net, values, frozenset({2})).valid

    def test_coloring_palette_only_binds_survivors(self):
        net = p3()
        values = [0, 5, 1]
        assert not csr_is_surviving_coloring(net, values, frozenset(), num_colors=2).valid
        # The out-of-palette colour belongs to a corpse: not held against
        # the surviving configuration.
        assert csr_is_surviving_coloring(net, values, frozenset({1}), num_colors=2).valid

    def test_coloring_spec_registers_the_surviving_validator(self):
        spec = problems.coloring(2)
        verdict = spec.validate_surviving(net := p3(), {0: 0, 2: 1}, {}, crashed=[1])
        assert verdict.valid
        assert not spec.validate_surviving(net, {0: 0, 1: 0, 2: 1}, {}, crashed=[]).valid

    def p4(self):
        return Network.from_edge_list(4, [(0, 1), (1, 2), (2, 3)])

    def test_ruling_set_domination_respects_the_horizon(self):
        net = self.p4()
        values = [True, False, False, False]
        # Node 3 is at distance 3 > beta=2 from the only ruler.
        assert not csr_is_surviving_ruling_set(net, values, frozenset(), 2, 2).valid
        # Crashing it removes the only uncovered survivor.
        assert csr_is_surviving_ruling_set(net, values, frozenset({3}), 2, 2).valid

    def test_ruling_set_relays_must_be_alive(self):
        net = self.p4()
        values = [True, False, False, False]
        # With 1 crashed, node 2's only path to the ruler relays through a
        # corpse: coverage is gone even though dist(0, 2)=2 pre-crash.
        assert not csr_is_surviving_ruling_set(
            net, values, frozenset({1, 3}), 2, 2
        ).valid

    def test_ruling_set_crashed_committed_ruler_still_dominates(self):
        net = self.p4()
        values = [False, True, False, False]
        # Ruler 1 died after committing: nodes 0 and 2 keep their coverage,
        # and node 3 is reached through the *live* relay 2.
        assert csr_is_surviving_ruling_set(net, values, frozenset({1}), 2, 2).valid

    def test_ruling_set_independence_measured_through_survivors(self):
        net = p3()
        values = [True, False, True]
        # alpha=3: rulers 0 and 2 are at distance 2 < 3 through node 1.
        assert not csr_is_surviving_ruling_set(net, values, frozenset(), 3, 3).valid
        # Once node 1 crashes, no surviving path connects them.
        assert csr_is_surviving_ruling_set(net, values, frozenset({1}), 3, 3).valid

    def test_ruling_set_spec_registers_the_surviving_validator(self):
        spec = problems.ruling_set(2, 2)
        net = self.p4()
        assert spec.validate_surviving(
            net, {0: True, 1: False, 2: False}, {}, crashed=[3]
        ).valid

    def star4(self):
        return Network.from_edge_list(4, [(0, 1), (0, 2), (0, 3)])

    def test_sinkless_sink_check_skips_crashed_nodes(self):
        net = self.star4()
        inward = [0, 0, 0]  # every edge points at the degree-3 centre
        assert not csr_is_surviving_sinkless_orientation(net, inward, frozenset()).valid
        assert csr_is_surviving_sinkless_orientation(net, inward, frozenset({0})).valid

    def test_sinkless_outgoing_edge_towards_a_corpse_counts(self):
        net = self.star4()
        values = [1, 0, 0]  # centre's only outgoing edge points at node 1
        assert csr_is_surviving_sinkless_orientation(net, values, frozenset({1})).valid
        # If that commitment is missing (the edge died undecided), the
        # surviving centre is a sink.
        assert not csr_is_surviving_sinkless_orientation(
            net, [MISSING, 0, 0], frozenset({1})
        ).valid

    def test_sinkless_malformed_head_fails_regardless_of_crashes(self):
        net = self.star4()
        assert not csr_is_surviving_sinkless_orientation(
            net, [7, 0, 0], frozenset({1})
        ).valid

    def test_sinkless_spec_registers_the_surviving_validator(self):
        spec = problems.SINKLESS_ORIENTATION
        net = self.star4()
        verdict = spec.validate_surviving(
            net, {}, {(0, 1): 1, (0, 2): 0, (0, 3): 0}, crashed=[1]
        )
        assert verdict.valid


class _GossipMax(CoroutineAlgorithm):
    """Delay-tolerant probe: flood the maximum identifier for a fixed horizon.

    Every round sends the same message type, so one-round-late stragglers are
    processed like any other message — the delay fault model's clean case.
    """

    name = "gossip-max"

    def __init__(self, rounds: int) -> None:
        self.rounds = rounds

    def run(self, node):
        best = node.identifier
        for _ in range(self.rounds):
            inbox = yield Broadcast(best)
            for value in inbox.values():
                if value > best:
                    best = value
        node.commit(best)


_GOSSIP = problems.ProblemSpec(
    name="gossip-max",
    labels_nodes=True,
    labels_edges=False,
    validator=lambda graph, nodes_out, edges_out: problems.ValidationResult(True),
)


class _GossipMaxArray(ArrayAlgorithm):
    """Array twin of :class:`_GossipMax` with a one-round delay carry buffer.

    Deterministic (no RNG), single message type: the engines' outputs must be
    **bit-identical** under any crash+drop+delay schedule, which makes this
    the exact-parity leg of the delay-port differential tests.  The carry
    buffer holds each node's previous-round payload; a late ``u → v``
    arrival applies ``max`` with that stale payload.  (Gossip payloads only
    grow, so fresh-overwrites-stale never changes the ``max`` — the carry
    needs no overwrite bookkeeping here, unlike phase-alternating Luby.)
    """

    name = "gossip-max"
    labels_nodes = True
    supports_faults = True

    def __init__(self, rounds: int) -> None:
        self.rounds = rounds

    def init_arrays(self, topology, rng):
        state = ArrayState(topology.n, topology.m, nodes=True, edges=False)
        state.node_values = topology.identifiers.copy()
        state.extra["best"] = topology.identifiers.copy()
        state.extra["prev_sent"] = None
        return state

    def step(self, round_index, state, topology, rng, faults=None):
        best = state.extra["best"]
        us, vs = topology.edge_us, topology.edge_vs
        sent_now = best.copy()
        if faults is None:
            np.maximum.at(best, vs, sent_now[us])
            np.maximum.at(best, us, sent_now[vs])
            state.messages += int(2 * topology.m)
        else:
            dlv_uv, dlv_vu = faults.deliver_uv, faults.deliver_vu
            np.maximum.at(best, vs[dlv_uv], sent_now[us[dlv_uv]])
            np.maximum.at(best, us[dlv_vu], sent_now[vs[dlv_vu]])
            prev = state.extra["prev_sent"]
            if faults.late_uv is not None and prev is not None:
                late_uv, late_vu = faults.late_uv, faults.late_vu
                np.maximum.at(best, vs[late_uv], prev[us[late_uv]])
                np.maximum.at(best, us[late_vu], prev[vs[late_vu]])
            state.messages += int(
                topology.degrees[faults.alive].sum()
            )
        state.extra["prev_sent"] = sent_now
        if round_index == self.rounds:
            commit = (
                np.ones(topology.n, dtype=bool) if faults is None else faults.alive
            )
            state.node_values[commit] = best[commit]
            state.node_rounds[commit] = round_index
            state.halted |= commit


class TestDelays:
    def test_all_delay_shifts_information_flow_by_one_round(self):
        net = p3()
        fs = FaultSchedule(delay_rate=1.0, seed=0)
        fault_free = Runner(max_rounds=50).run(_GossipMax(2), net, _GOSSIP, seed=0)
        assert dict(fault_free.node_outputs) == {0: 2, 1: 2, 2: 2}
        # Under all-delay, round-r information arrives at round r+1: after
        # two rounds node 0 only knows node 1's *initial* value.
        delayed = Runner(max_rounds=50).run(
            _GossipMax(2), net, _GOSSIP, seed=0, faults=fs
        )
        assert dict(delayed.node_outputs) == {0: 1, 1: 2, 2: 2}
        # Two extra rounds recover exactly the fault-free fixpoint.
        recovered = Runner(max_rounds=50).run(
            _GossipMax(4), net, _GOSSIP, seed=0, faults=fs
        )
        assert dict(recovered.node_outputs) == {0: 2, 1: 2, 2: 2}
        assert recovered.rounds == 4
        # Every directed message of every executed round was delayed.
        assert len(recovered.fault_events) == 16
        assert all(event[0] == "delay" for event in recovered.fault_events)
        assert delayed.fault_events == (
            ("delay", 1, 0, 1),
            ("delay", 1, 1, 0),
            ("delay", 1, 1, 2),
            ("delay", 1, 2, 1),
            ("delay", 2, 0, 1),
            ("delay", 2, 1, 0),
            ("delay", 2, 1, 2),
            ("delay", 2, 2, 1),
        )

    def test_cross_phase_straggler_is_a_classified_algorithm_failure(self):
        """Luby's message types alternate by phase, so a delayed announcement
        can land in a priority-round inbox — the documented structured
        failure mode of delay injection, surfaced as the algorithm's own
        exception (``exception:TypeError`` under the failure taxonomy)."""
        fs = FaultSchedule(drop_rate=0.1, delay_rate=0.3, seed=9)
        with pytest.raises(TypeError) as excinfo:
            Runner(strict=False, max_rounds=100).run(
                LubyMIS(), pinned_network(), problems.MIS, seed=4, faults=fs
            )
        assert classify_failure(excinfo.value) == "exception:TypeError"

    def test_array_cross_phase_straggler_raises_the_same_type(self):
        """The array twin mirrors the straggler failure structurally: a
        visible delayed announcement at a priority-round participant raises
        ``TypeError`` (the seed at which it fires is engine-specific)."""
        raised = 0
        for seed in range(30):
            fs = FaultSchedule(drop_rate=0.1, delay_rate=0.3, seed=seed)
            try:
                ArrayEngine(strict=False, max_rounds=100).run(
                    LubyMIS().as_array_algorithm(),
                    pinned_network(),
                    problems.MIS,
                    seed=seed,
                    faults=fs,
                )
            except TypeError as error:
                assert classify_failure(error) == "exception:TypeError"
                raised += 1
        assert raised > 0

    def test_round_faults_late_masks(self):
        net = pinned_network()
        us, vs = np.asarray(net.edge_endpoints()[0]), np.asarray(net.edge_endpoints()[1])
        fs = FaultSchedule(crashes={3: 2}, delay_rate=1.0, seed=0)
        first = fs.round_faults(1, net.n, net.m, us, vs)
        assert first.late_uv is None and first.late_vu is None
        second = fs.round_faults(2, net.n, net.m, us, vs)
        # Everything round 1 sent arrives late at round 2, except into the
        # round-2 crash (node 3 is dead when the straggler would land).
        assert (second.late_uv == (vs != 3)).all()
        assert (second.late_vu == (us != 3)).all()
        # From round 3 on, node 3 was already dead at send time too.
        third = fs.round_faults(3, net.n, net.m, us, vs)
        assert (third.late_uv == ((us != 3) & (vs != 3))).all()
        # Crash-only schedules never build late masks.
        crash_only = FaultSchedule(crashes={0: 1})
        assert crash_only.round_faults(2, net.n, net.m, us, vs).late_uv is None


class TestArrayDelayParity:
    """The tentpole differential tests for the array-engine delay port."""

    SCHEDULE = dict(crashes={2: 3, 9: 5}, drop_rate=0.1, delay_rate=0.15)

    @pytest.mark.parametrize("seed", range(25))
    def test_gossip_outputs_bit_identical_under_crash_drop_delay(self, seed):
        """Exact-parity leg: a deterministic single-message-type algorithm
        must produce identical outputs, rounds and events on both engines
        under any crash+drop+delay schedule."""
        net = pinned_network()
        fs = FaultSchedule(seed=seed, **self.SCHEDULE)
        runner_trace = Runner(strict=False, max_rounds=50).run(
            _GossipMax(8), net, _GOSSIP, seed=0, faults=fs
        )
        array_trace = ArrayEngine(strict=False, max_rounds=50).run(
            _GossipMaxArray(8), net, _GOSSIP, seed=0, faults=fs
        )
        assert dict(runner_trace.node_outputs) == dict(array_trace.node_outputs)
        assert runner_trace.rounds == array_trace.rounds
        assert runner_trace.completed and array_trace.completed
        assert runner_trace.fault_events == array_trace.fault_events
        assert runner_trace.crashed == array_trace.crashed

    def test_luby_fault_events_identical_across_twenty_seeds(self):
        """Acceptance pin: engine-identical ``fault_events`` on all common
        rounds of a crash+drop+delay schedule, over ≥ 20 fixed seeds.
        Seeds where either engine hits the documented cross-phase-straggler
        ``TypeError`` are skipped; at least 20 of the 40 must survive."""
        net = pinned_network()
        survived = 0
        for seed in range(40):
            fs = FaultSchedule(
                crashes={seed % net.n: 1 + seed % 4},
                drop_rate=0.05,
                delay_rate=0.05,
                seed=seed,
            )
            traces = []
            for run in (
                lambda: Runner(strict=False, max_rounds=200).run(
                    LubyMIS(), net, problems.MIS, seed=seed, faults=fs
                ),
                lambda: ArrayEngine(strict=False, max_rounds=200).run(
                    LubyMIS().as_array_algorithm(),
                    net,
                    problems.MIS,
                    seed=seed,
                    faults=fs,
                ),
            ):
                try:
                    traces.append(run())
                except TypeError:
                    traces.append(None)
            if None in traces:
                continue
            survived += 1
            runner_trace, array_trace = traces
            common = min(runner_trace.rounds, array_trace.rounds)
            runner_prefix = tuple(
                e for e in runner_trace.fault_events if e[1] <= common
            )
            array_prefix = tuple(
                e for e in array_trace.fault_events if e[1] <= common
            )
            assert runner_prefix == array_prefix, f"seed {seed}"
        assert survived >= 20, f"only {survived} of 40 seeds completed on both engines"


class TestMaskCacheLRU:
    def test_memory_stays_flat_over_ten_thousand_faulted_rounds(self):
        """Regression: the fate-mask cache is a bounded LRU, not one entry
        per executed round (satellite of the delay port)."""
        net = pinned_network()
        us, vs = np.asarray(net.edge_endpoints()[0]), np.asarray(net.edge_endpoints()[1])
        fs = FaultSchedule(drop_rate=0.1, delay_rate=0.1, seed=3)
        for r in range(1, 10_001):
            fs.round_faults(r, net.n, net.m, us, vs)
            assert len(fs._mask_cache) <= faults_module._MASK_CACHE_SIZE

    def test_eviction_recomputes_identical_fates(self):
        fs = FaultSchedule(drop_rate=0.2, delay_rate=0.2, seed=11)
        first = fs.directed_fates(1, 19).copy()
        for r in range(2, 2 + 4 * faults_module._MASK_CACHE_SIZE):
            fs.directed_fates(r, 19)
        assert (1, 19) not in fs._mask_cache
        assert (fs.directed_fates(1, 19) == first).all()

    def test_lru_keeps_recently_used_entries(self):
        fs = FaultSchedule(drop_rate=0.5, seed=0)
        for r in range(1, faults_module._MASK_CACHE_SIZE + 1):
            fs.directed_fates(r, 10)
        # Touch round 1 so it is the most recently used, then overflow once.
        fs.directed_fates(1, 10)
        fs.directed_fates(faults_module._MASK_CACHE_SIZE + 1, 10)
        assert (1, 10) in fs._mask_cache
        assert (2, 10) not in fs._mask_cache
