"""Tests for the synchronous runner, commit semantics, and coroutine wrapper.

The completion-time stamps produced here are the raw material of every
averaged-complexity measurement, so these tests pin down the exact semantics:
round-0 commits during ``init``, commits while processing round ``t`` are
stamped ``t``, halted nodes stop sending, and conflicting edge commits are
rejected.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core import problems
from repro.core.problems import ProblemSpec, ValidationResult
from repro.local.algorithm import Broadcast, NodeAlgorithm
from repro.local.coroutine import CoroutineAlgorithm
from repro.local.network import Network
from repro.local.node import CommitError
from repro.local.runner import Runner, RoundLimitExceeded, estimate_message_bits


def _always_valid(name: str, labels_nodes: bool = True, labels_edges: bool = False) -> ProblemSpec:
    return ProblemSpec(
        name=name,
        labels_nodes=labels_nodes,
        labels_edges=labels_edges,
        validator=lambda *_: ValidationResult(True),
    )


class CommitAtInit(NodeAlgorithm):
    name = "commit-at-init"

    def init(self, node):
        node.commit(node.identifier)


class CommitAfterOneRound(NodeAlgorithm):
    name = "commit-after-one-round"

    def send(self, node):
        return {u: node.identifier for u in node.neighbors}

    def receive(self, node, messages):
        node.commit(min([node.identifier, *messages.values()]))


class EchoDegree(CoroutineAlgorithm):
    name = "echo-degree"

    def run(self, node):
        inbox = yield {u: "ping" for u in node.neighbors}
        node.commit(len(inbox))


class CommitEdgesToSmallerId(CoroutineAlgorithm):
    name = "edge-committer"

    def run(self, node):
        inbox = yield {u: node.identifier for u in node.neighbors}
        for u, their_id in inbox.items():
            node.commit_edge(u, min(node.identifier, their_id))


class ConflictingEdgeCommitter(CoroutineAlgorithm):
    name = "conflicting-edges"

    def run(self, node):
        inbox = yield {u: node.identifier for u in node.neighbors}
        for u in inbox:
            node.commit_edge(u, node.identifier)  # endpoints commit different values


class NeverCommits(NodeAlgorithm):
    name = "never-commits"


class TestBasicExecution:
    def test_init_commits_are_round_zero(self, runner):
        net = Network.from_graph(nx.path_graph(5))
        trace = runner.run(CommitAtInit(), net, _always_valid("p"), seed=0)
        assert trace.rounds == 0
        assert all(r == 0 for r in trace.node_commit_round.values())

    def test_one_round_commit_stamps_round_one(self, runner):
        net = Network.from_graph(nx.cycle_graph(6))
        trace = runner.run(CommitAfterOneRound(), net, _always_valid("p"), seed=0)
        assert trace.rounds == 1
        assert set(trace.node_commit_round.values()) == {1}

    def test_callback_and_coroutine_styles_agree(self, runner):
        net = Network.from_graph(nx.cycle_graph(6))
        a = runner.run(CommitAfterOneRound(), net, _always_valid("p"), seed=0)
        b = runner.run(EchoDegree(), net, _always_valid("p"), seed=0)
        assert a.rounds == b.rounds == 1

    def test_degree_counted_from_messages(self, runner):
        net = Network.from_graph(nx.star_graph(5))
        trace = runner.run(EchoDegree(), net, _always_valid("p"), seed=0)
        assert trace.node_outputs[0] == 5
        assert all(trace.node_outputs[v] == 1 for v in range(1, 6))

    def test_message_count_tracked(self, runner):
        net = Network.from_graph(nx.cycle_graph(10))
        trace = runner.run(EchoDegree(), net, _always_valid("p"), seed=0)
        assert trace.total_messages == 20  # every node messages both neighbours once

    def test_edge_commits_collected_consistently(self, runner):
        net = Network.from_graph(nx.cycle_graph(8))
        problem = _always_valid("edges", labels_nodes=False, labels_edges=True)
        trace = runner.run(CommitEdgesToSmallerId(), net, problem, seed=0)
        assert len(trace.edge_outputs) == net.m
        for (u, v), value in trace.edge_outputs.items():
            assert value == min(net.identifier(u), net.identifier(v))

    def test_conflicting_edge_commits_raise(self, runner):
        net = Network.from_graph(nx.path_graph(3))
        problem = _always_valid("edges", labels_nodes=False, labels_edges=True)
        with pytest.raises(CommitError):
            runner.run(ConflictingEdgeCommitter(), net, problem, seed=0)

    def test_round_limit_strict_raises(self):
        net = Network.from_graph(nx.path_graph(4))
        runner = Runner(max_rounds=5, strict=True)
        with pytest.raises(RoundLimitExceeded):
            runner.run(NeverCommits(), net, _always_valid("p"), seed=0)

    def test_round_limit_lenient_returns_incomplete(self):
        net = Network.from_graph(nx.path_graph(4))
        runner = Runner(max_rounds=5, strict=False)
        trace = runner.run(NeverCommits(), net, _always_valid("p"), seed=0)
        assert not trace.completed
        assert trace.rounds == 5
        # Uncommitted nodes are charged the full execution length.
        assert all(t == 5 for t in trace.node_completion_times())

    def test_sending_to_non_neighbor_rejected(self, runner):
        class BadSender(NodeAlgorithm):
            name = "bad-sender"

            def send(self, node):
                return {node.vertex + 100: "boom"}

        net = Network.from_graph(nx.path_graph(4))
        with pytest.raises(ValueError):
            runner.run(BadSender(), net, _always_valid("p"), seed=0)

    def test_determinism_with_equal_seed(self, runner):
        from repro.algorithms.mis.luby import LubyMIS

        net = Network.from_graph(nx.gnp_random_graph(30, 0.15, seed=2))
        a = runner.run(LubyMIS(), net, problems.MIS, seed=42)
        b = runner.run(LubyMIS(), net, problems.MIS, seed=42)
        assert a.node_outputs == b.node_outputs
        assert a.node_commit_round == b.node_commit_round

    @pytest.mark.parametrize("algorithm_key", ["luby", "matching", "orientation"])
    def test_full_trace_determinism_across_runner_instances(self, algorithm_key):
        """Equal seeds give identical traces — outputs, commit rounds, messages.

        Runs each seed through a *shared* runner (which reuses its node pool
        between runs) and a *fresh* runner (which builds nodes from scratch);
        the two code paths must agree exactly, for node- and edge-labelling
        problems alike.
        """
        from repro.algorithms.matching.randomized import RandomizedMaximalMatching
        from repro.algorithms.mis.luby import LubyMIS
        from repro.algorithms.orientation.randomized import RandomizedSinklessOrientation

        make, problem, graph = {
            "luby": (LubyMIS, problems.MIS, nx.gnp_random_graph(40, 0.15, seed=3)),
            "matching": (
                RandomizedMaximalMatching,
                problems.MAXIMAL_MATCHING,
                nx.random_regular_graph(4, 40, seed=4),
            ),
            "orientation": (
                RandomizedSinklessOrientation,
                problems.SINKLESS_ORIENTATION,
                nx.random_regular_graph(4, 30, seed=5),
            ),
        }[algorithm_key]
        net = Network.from_graph(graph, id_scheme="permuted")
        shared = Runner(max_rounds=20_000)
        for seed in (0, 7, 123):
            traces = [
                shared.run(make(), net, problem, seed=seed),
                shared.run(make(), net, problem, seed=seed),  # pooled re-run
                Runner(max_rounds=20_000).run(make(), net, problem, seed=seed),
            ]
            first = traces[0]
            for other in traces[1:]:
                assert other.node_outputs == first.node_outputs
                assert other.node_commit_round == first.node_commit_round
                assert other.edge_outputs == first.edge_outputs
                assert other.edge_commit_round == first.edge_commit_round
                assert other.rounds == first.rounds
                assert other.completed == first.completed
                assert other.total_messages == first.total_messages

    def test_different_seeds_usually_differ(self, runner):
        from repro.algorithms.mis.luby import LubyMIS

        net = Network.from_graph(nx.gnp_random_graph(40, 0.2, seed=2))
        a = runner.run(LubyMIS(), net, problems.MIS, seed=1)
        b = runner.run(LubyMIS(), net, problems.MIS, seed=2)
        assert a.node_outputs != b.node_outputs

    def test_recommitting_same_value_is_noop(self, runner):
        class DoubleCommit(NodeAlgorithm):
            name = "double-commit"

            def init(self, node):
                node.commit(1)
                node.commit(1)

        net = Network.from_graph(nx.path_graph(3))
        trace = runner.run(DoubleCommit(), net, _always_valid("p"), seed=0)
        assert set(trace.node_outputs.values()) == {1}

    def test_recommitting_different_value_raises(self, runner):
        class Flaky(NodeAlgorithm):
            name = "flaky"

            def init(self, node):
                node.commit(1)
                node.commit(2)

        net = Network.from_graph(nx.path_graph(3))
        with pytest.raises(CommitError):
            runner.run(Flaky(), net, _always_valid("p"), seed=0)

    def test_invalid_max_rounds(self):
        with pytest.raises(ValueError):
            Runner(max_rounds=-1)


class TestBroadcast:
    def test_broadcast_equals_explicit_neighbor_dict(self, runner):
        class DictSender(CoroutineAlgorithm):
            name = "dict-sender"

            def run(self, node):
                inbox = yield {u: node.identifier for u in node.neighbors}
                node.commit(min([node.identifier, *inbox.values()]))

        class BroadcastSender(CoroutineAlgorithm):
            name = "broadcast-sender"

            def run(self, node):
                inbox = yield Broadcast(node.identifier)
                node.commit(min([node.identifier, *inbox.values()]))

        net = Network.from_graph(nx.gnp_random_graph(25, 0.2, seed=8))
        a = runner.run(DictSender(), net, _always_valid("p"), seed=0)
        b = runner.run(BroadcastSender(), net, _always_valid("p"), seed=0)
        assert a.node_outputs == b.node_outputs
        assert a.node_commit_round == b.node_commit_round
        assert a.total_messages == b.total_messages

    def test_broadcast_from_callback_send(self, runner):
        class CallbackBroadcaster(NodeAlgorithm):
            name = "callback-broadcast"

            def send(self, node):
                return Broadcast("ping")

            def receive(self, node, messages):
                node.commit(len(messages))

        net = Network.from_graph(nx.star_graph(5))
        trace = runner.run(CallbackBroadcaster(), net, _always_valid("p"), seed=0)
        assert trace.node_outputs[0] == 5
        assert all(trace.node_outputs[v] == 1 for v in range(1, 6))
        assert trace.total_messages == 10


class TestMessageSizeEstimates:
    @pytest.mark.parametrize(
        "payload, minimum",
        [
            (None, 1),
            (True, 1),
            (7, 3),
            (3.5, 64),
            ("abc", 24),
            ((1, 2, 3), 6),
            ({"a": 1}, 8),
        ],
    )
    def test_estimates_are_positive_and_sane(self, payload, minimum):
        assert estimate_message_bits(payload) >= minimum

    def test_congest_tracking(self):
        net = Network.from_graph(nx.cycle_graph(6))
        runner = Runner(track_message_bits=True)
        trace = runner.run(EchoDegree(), net, _always_valid("p"), seed=0)
        assert trace.max_message_bits is not None
        assert trace.max_message_bits < 64  # "ping" strings are tiny


class TestCoroutineWrapper:
    def test_returning_immediately_halts_node(self, runner):
        class InstantReturn(CoroutineAlgorithm):
            name = "instant"

            def run(self, node):
                node.commit("done")
                return
                yield {}  # pragma: no cover

        net = Network.from_graph(nx.path_graph(4))
        trace = runner.run(InstantReturn(), net, _always_valid("p"), seed=0)
        assert trace.rounds == 0

    def test_yield_without_messages_keeps_listening(self, runner):
        class Listener(CoroutineAlgorithm):
            name = "listener"

            def run(self, node):
                inbox = yield {}
                node.commit(len(inbox))

        class Talker(CoroutineAlgorithm):
            name = "talker"

            def run(self, node):
                inbox = yield {u: "hello" for u in node.neighbors}
                node.commit(len(inbox))

        net = Network.from_graph(nx.path_graph(3))
        silent = runner.run(Listener(), net, _always_valid("p"), seed=0)
        chatty = runner.run(Talker(), net, _always_valid("p"), seed=0)
        assert all(v == 0 for v in silent.node_outputs.values())
        assert chatty.node_outputs[1] == 2


class TestEdgeHotPathLaziness:
    """ISSUE-5 regressions: edge-labelling runs resolve edge slots through
    the packed-key int index, so array-built networks never materialise a
    tuple per edge (neither the `edges` view nor the tuple-keyed map) on the
    runner hot path."""

    def _array_network(self, n=60, seed=4):
        from repro.graphs.generators import fast_gnp_edges

        arrays = fast_gnp_edges(n, 5.0 / (n - 1), seed=seed, as_arrays=True)
        return Network.from_endpoint_arrays(n, arrays.src, arrays.dst)

    def test_matching_run_keeps_edge_tuples_lazy(self):
        from repro.algorithms.matching.randomized import RandomizedMaximalMatching

        net = self._array_network()
        runner = Runner(max_rounds=5000)
        trace = runner.run(
            RandomizedMaximalMatching(), net, problems.MAXIMAL_MATCHING, seed=0
        )
        assert trace.completed
        # Tracker + trace collection went through the packed int index:
        assert net._edges_cache is None, "edge tuple view was materialised"
        assert net._edge_index is None, "tuple-keyed edge map was built"
        assert net._rows is not None  # the per-node simulator does need rows

    def test_packed_collection_matches_tuple_network_run(self):
        from repro.algorithms.matching.randomized import RandomizedMaximalMatching
        from repro.graphs.generators import erdos_renyi_edges

        n, edges = erdos_renyi_edges(50, 4.0, seed=7)
        tuple_net = Network.from_edges(n, edges)
        array_net = Network.from_endpoint_arrays(
            n, [u for u, _ in edges], [v for _, v in edges]
        )
        runner = Runner(max_rounds=5000)
        a = runner.run(
            RandomizedMaximalMatching(), tuple_net, problems.MAXIMAL_MATCHING, seed=3
        )
        b = Runner(max_rounds=5000).run(
            RandomizedMaximalMatching(), array_net, problems.MAXIMAL_MATCHING, seed=3
        )
        assert a.edge_outputs == b.edge_outputs
        assert a.edge_commit_round == b.edge_commit_round
        assert a.rounds == b.rounds and a.total_messages == b.total_messages

    def test_commits_towards_non_neighbours_still_ignored(self, runner):
        class StrayCommitter(CoroutineAlgorithm):
            name = "stray-committer"

            def run(self, node):
                # Commit the real incident edges plus a fake far-away one.
                for u in node.neighbors:
                    node.commit_edge(u, True)
                node.commit_edge(node.vertex + 10_000, True)
                return
                yield {}

        net = Network.from_graph(nx.path_graph(4))
        problem = _always_valid("edges", labels_nodes=False, labels_edges=True)
        trace = runner.run(StrayCommitter(), net, problem, seed=0)
        assert set(trace.edge_outputs) == set(net.edges)
        assert all(value is True for value in trace.edge_outputs.values())

    def test_out_of_range_commits_do_not_alias_packed_keys(self, runner):
        # n=5: a commit towards vertex 7 from vertex 0 packs to the same
        # key as the real edge (1, 2); it must be ignored, not mark (1, 2)
        # decided (premature completion) or leak into the trace.
        class AliasingCommitter(CoroutineAlgorithm):
            name = "aliasing-committer"

            def run(self, node):
                if node.vertex == 0:
                    node.commit_edge(7, True)
                inbox = yield {}
                for u in node.neighbors:
                    node.commit_edge(u, False)
                return

        net = Network.from_edges(5, [(1, 2), (0, 3)])
        problem = _always_valid("edges", labels_nodes=False, labels_edges=True)
        trace = runner.run(AliasingCommitter(), net, problem, seed=0)
        assert trace.edge_outputs == {(0, 3): False, (1, 2): False}
        assert trace.edge_commit_round == {(0, 3): 1, (1, 2): 1}


class TestFactoryInvocationCount:
    def test_run_trials_calls_the_factory_once_per_trial(self):
        from repro.algorithms.mis.luby import LubyMIS
        from repro.core.experiment import run_trials

        net = Network.from_graph(nx.cycle_graph(12))
        for engine in ("node", "array", "auto"):
            calls = []

            def factory():
                calls.append(1)
                return LubyMIS()

            run_trials(factory, net, problems.MIS, trials=3, seed=0, engine=engine)
            assert len(calls) == 3, f"engine={engine} called the factory {len(calls)}x"
