"""Tests for the self-stabilising recovery layer.

Self-stabilising algorithms never treat a commit as final: when a neighbour
crashes, affected survivors revoke their outputs and locally recompute, and
both engines keep executing until the fault schedule's last crash has landed
so every fault epoch is observed.  The invariants pinned here:

* after every crash wave the surviving subgraph re-reaches a *strictly*
  valid configuration (checked through :meth:`ProblemSpec.validate_induced`,
  never the lenient surviving validators);
* the per-round :class:`RecoveryTimeline` records one entry per executed
  round and its ``time_to_restabilize`` bookkeeping matches the definition
  "first strictly-valid round at or after the crash, within the epoch";
* fault *events* stay engine-identical on the common round prefix (the
  schedule is engine-independent; only algorithm randomness differs);
* revocation plumbing (``NodeRuntime.revoke`` / ``revoke_edge`` and the
  completion tracker's bookkeeping) keeps counts exact, so completion is
  never declared while a revoked output is outstanding;
* recovery metrics aggregate through ``measure()``, the ``Experiment``
  facade, and the sweep row protocol (including the JSON checkpoint round
  trip) without loss.
"""

from __future__ import annotations

import pytest

from repro.algorithms.mis.luby import LubyMIS
from repro.algorithms.selfstab import (
    SelfStabilizingLubyMIS,
    SelfStabilizingLubyMISArray,
    SelfStabilizingMatching,
)
from repro.core import problems
from repro.core.experiment import Experiment, run_trials
from repro.core.metrics import RecoveryTimeline, measure
from repro.graphs import generators as gen
from repro.local.algorithm import NodeAlgorithm
from repro.local.engine import ArrayEngine
from repro.local.faults import FaultSchedule
from repro.local.network import Network
from repro.local.node import NodeRuntime
from repro.local.runner import Runner


def er_network(n: int, seed: int) -> Network:
    return Network.from_edge_list(*gen.erdos_renyi_edges(n, 3.0, seed=seed))


def wave_schedule(n: int, seed: int, rounds=(2, 6)) -> FaultSchedule:
    """Crash six vertices spread across the given rounds (deterministic)."""
    import random

    rng = random.Random(seed)
    victims = rng.sample(range(n), 6)
    crashes = {v: rounds[i % len(rounds)] for i, v in enumerate(victims)}
    return FaultSchedule(crashes=crashes, seed=seed)


def assert_recovered(trace, problem, network) -> None:
    """The end state is strictly valid on the induced surviving subgraph."""
    assert trace.completed
    assert bool(trace.validate())
    assert bool(
        problem.validate_induced(
            network,
            trace._node_value_slots(),
            trace._edge_value_slots(),
            trace.crashed,
        )
    )
    timeline = trace.recovery
    assert timeline is not None
    assert len(timeline.pending) == trace.rounds
    assert len(timeline.valid) == trace.rounds
    times = timeline.time_to_restabilize()
    assert len(times) == timeline.epochs
    # The final epoch always restabilises (execution only completes once the
    # configuration is decided again, and decided implies checked-valid).
    if times:
        assert times[-1] is not None
        assert times[-1] >= 0


class TestRecoveryTimeline:
    def test_time_to_restabilize_within_epochs(self):
        # Crash at round 2 recovers immediately (entry for round 2 is valid);
        # crash at round 5 recovers one round later.
        timeline = RecoveryTimeline(
            crash_rounds=(2, 5),
            pending=(1, 0, 0, 1, 1, 0),
            valid=(False, True, False, False, False, True),
        )
        assert timeline.epochs == 2
        assert timeline.time_to_restabilize() == (0, 1)

    def test_epoch_never_recovering_is_none(self):
        timeline = RecoveryTimeline(
            crash_rounds=(1,), pending=(2, 2, 1), valid=(False, False, False)
        )
        assert timeline.time_to_restabilize() == (None,)

    def test_recovery_after_next_crash_does_not_credit_earlier_epoch(self):
        # Valid only at round 4, after the second crash at round 3: epoch 1
        # (crash at 1) never recovered inside [1, 3).
        timeline = RecoveryTimeline(
            crash_rounds=(1, 3),
            pending=(1, 1, 1, 0),
            valid=(False, False, False, True),
        )
        assert timeline.time_to_restabilize() == (None, 1)

    def test_empty_timeline(self):
        timeline = RecoveryTimeline(crash_rounds=(), pending=(), valid=())
        assert timeline.epochs == 0
        assert timeline.time_to_restabilize() == ()


class TestSelfStabDefaults:
    def test_plain_algorithms_are_not_self_stabilizing(self):
        assert NodeAlgorithm.self_stabilizing is False
        assert LubyMIS().self_stabilizing is False

    def test_neighbor_crashed_default_is_a_no_op(self):
        algorithm = LubyMIS()
        assert algorithm.neighbor_crashed(object(), 3) is None

    def test_selfstab_algorithms_declare_the_flag(self):
        assert SelfStabilizingLubyMIS().self_stabilizing
        assert SelfStabilizingLubyMISArray().self_stabilizing
        assert SelfStabilizingMatching().self_stabilizing
        assert SelfStabilizingLubyMIS().as_array_algorithm().self_stabilizing


class TestSelfStabLubyRecovery:
    @pytest.mark.parametrize("seed", range(8))
    def test_coroutine_recovers_after_every_wave(self, seed):
        network = er_network(24 + seed, seed)
        faults = wave_schedule(network.n, seed)
        trace = Runner(max_rounds=500).run(
            SelfStabilizingLubyMIS(), network, problems.MIS, seed=seed, faults=faults
        )
        assert_recovered(trace, problems.MIS, network)

    @pytest.mark.parametrize("seed", range(8))
    def test_array_engine_recovers_after_every_wave(self, seed):
        network = er_network(24 + seed, seed)
        faults = wave_schedule(network.n, seed)
        trace = ArrayEngine(max_rounds=500).run(
            SelfStabilizingLubyMISArray(),
            network,
            problems.MIS,
            seed=seed,
            faults=faults,
        )
        assert_recovered(trace, problems.MIS, network)

    @pytest.mark.parametrize("seed", range(4))
    def test_fault_events_agree_on_the_common_round_prefix(self, seed):
        network = er_network(20, seed)
        faults = wave_schedule(network.n, seed)
        runner_trace = Runner(max_rounds=500).run(
            SelfStabilizingLubyMIS(), network, problems.MIS, seed=seed, faults=faults
        )
        array_trace = ArrayEngine(max_rounds=500).run(
            SelfStabilizingLubyMISArray(),
            network,
            problems.MIS,
            seed=seed,
            faults=faults,
        )
        common = min(runner_trace.rounds, array_trace.rounds)
        runner_prefix = tuple(e for e in runner_trace.fault_events if e[1] <= common)
        array_prefix = tuple(e for e in array_trace.fault_events if e[1] <= common)
        assert runner_prefix == array_prefix

    def test_execution_waits_for_the_final_crash(self):
        # Luby on a path finishes in a couple of rounds, but a crash is
        # scheduled at round 12: a self-stabilising run must keep executing
        # (and observing) until that last fault epoch has landed.
        network = Network.from_edge_list(4, [(0, 1), (1, 2), (2, 3)])
        faults = FaultSchedule(crashes={1: 12}, seed=0)
        for trace in (
            Runner(max_rounds=100).run(
                SelfStabilizingLubyMIS(), network, problems.MIS, seed=3, faults=faults
            ),
            ArrayEngine(max_rounds=100).run(
                SelfStabilizingLubyMISArray(),
                network,
                problems.MIS,
                seed=3,
                faults=faults,
            ),
        ):
            assert trace.rounds >= 12
            assert trace.recovery.crash_rounds == (12,)
            assert_recovered(trace, problems.MIS, network)

    def test_non_selfstab_runs_carry_no_timeline(self):
        network = er_network(16, 1)
        faults = FaultSchedule(crashes={0: 2}, seed=1)
        trace = Runner(max_rounds=500).run(
            LubyMIS(), network, problems.MIS, seed=1, faults=faults
        )
        assert trace.recovery is None


class TestSelfStabMatching:
    @pytest.mark.parametrize("seed", range(8))
    def test_recovers_after_crash_waves(self, seed):
        network = er_network(24 + seed, 100 + seed)
        faults = wave_schedule(network.n, seed, rounds=(2, 8))
        trace = Runner(max_rounds=3000).run(
            SelfStabilizingMatching(),
            network,
            problems.MAXIMAL_MATCHING,
            seed=seed,
            faults=faults,
        )
        assert_recovered(trace, problems.MAXIMAL_MATCHING, network)

    @pytest.mark.parametrize("seed", range(4))
    def test_widow_rematches_on_a_path(self, seed):
        # P4 with the inner vertex 1 crashing late: whoever had matched
        # across a (0,1)/(1,2) edge revokes, and the surviving path 2-3 must
        # re-reach a maximal matching (the crash-adjacent edges are excused).
        network = Network.from_edge_list(4, [(0, 1), (1, 2), (2, 3)])
        faults = FaultSchedule(crashes={1: 10}, seed=seed)
        trace = Runner(max_rounds=3000).run(
            SelfStabilizingMatching(),
            network,
            problems.MAXIMAL_MATCHING,
            seed=seed,
            faults=faults,
        )
        assert_recovered(trace, problems.MAXIMAL_MATCHING, network)
        # Edge (2, 3) is between two degree-1 survivors post-crash, so a
        # maximal matching must contain it.
        assert trace.edge_outputs.get((2, 3)) is True


class _RecordingObserver:
    def __init__(self):
        self.events = []

    def node_committed(self, vertex):
        pass

    def edge_committed(self, vertex, neighbor):
        pass

    def node_revoked(self, vertex):
        self.events.append(("node", vertex))

    def edge_revoked(self, vertex, neighbor):
        self.events.append(("edge", vertex, neighbor))


class TestRevocationPlumbing:
    def _node(self, observer=None) -> NodeRuntime:
        import random

        return NodeRuntime(0, 17, (1, 2), random.Random(0), observer=observer)

    def test_revoke_before_commit_is_a_no_op(self):
        observer = _RecordingObserver()
        node = self._node(observer)
        node.revoke()
        assert observer.events == []

    def test_revoke_clears_output_and_notifies(self):
        observer = _RecordingObserver()
        node = self._node(observer)
        node._current_round = 3
        node.commit(True)
        node.revoke()
        assert node._output is None and node._output_round is None
        assert not node.has_committed
        assert observer.events == [("node", 0)]

    def test_revoke_edge_only_removes_own_record(self):
        observer = _RecordingObserver()
        node = self._node(observer)
        node._current_round = 2
        node.commit_edge(1, True)
        node.revoke_edge(2)  # never committed: no-op
        assert observer.events == []
        node.revoke_edge(1)
        assert 1 not in node._edge_outputs
        assert observer.events == [("edge", 0, 1)]

    def test_recommit_after_revoke_is_allowed(self):
        node = self._node()
        node._current_round = 1
        node.commit(True)
        node.revoke()
        node._current_round = 4
        node.commit(False)
        assert node._output is False and node._output_round == 4


class TestRecoveryMetrics:
    def _selfstab_traces(self, count=3):
        network = er_network(20, 5)
        faults = wave_schedule(network.n, 5)
        runner = Runner(max_rounds=500)
        return [
            runner.run(
                SelfStabilizingLubyMIS(),
                network,
                problems.MIS,
                seed=seed,
                faults=faults,
            )
            for seed in range(count)
        ]

    def test_measure_aggregates_recovery(self):
        traces = self._selfstab_traces()
        measurement = measure(traces)
        flat = [
            t
            for trace in traces
            for t in trace.recovery.time_to_restabilize()
        ]
        recovered = [t for t in flat if t is not None]
        assert measurement.recovery_epochs == len(flat)
        assert measurement.unrecovered_epochs == len(flat) - len(recovered)
        assert measurement.max_time_to_restabilize == max(recovered)
        assert measurement.mean_time_to_restabilize == pytest.approx(
            sum(recovered) / len(recovered)
        )
        row = measurement.as_dict()
        assert row["recovery_epochs"] == len(flat)
        assert "mean_time_to_restabilize" in row

    def test_measure_without_recovery_leaves_fields_none(self):
        network = er_network(12, 2)
        trace = Runner().run(LubyMIS(), network, problems.MIS, seed=0)
        measurement = measure([trace])
        assert measurement.recovery_epochs is None
        assert "recovery_epochs" not in measurement.as_dict()


class TestFacadeThreading:
    def test_run_trials_auto_routes_selfstab_to_the_array_engine(self):
        network = er_network(18, 3)
        faults = wave_schedule(network.n, 3)
        traces = run_trials(
            SelfStabilizingLubyMIS,
            network,
            problems.MIS,
            trials=2,
            seed=0,
            engine="auto",
            faults=faults,
        )
        direct = ArrayEngine(max_rounds=Runner().max_rounds).run(
            SelfStabilizingLubyMISArray(), network, problems.MIS, seed=0, faults=faults
        )
        assert traces[0] == direct  # routed to the array engine, same schedule
        assert traces[0].recovery is not None

    def test_experiment_reports_recovery_fields(self):
        faults = FaultSchedule(crashes={1: 2, 4: 2, 9: 5}, seed=7)
        result = Experiment(
            problem=problems.MIS,
            algorithm=SelfStabilizingLubyMIS,
            graphs=gen.erdos_renyi_edges(30, 3.0, seed=1),
            trials=3,
            engine="auto",
            faults=faults,
        ).run()
        row = result.run.as_row()
        assert result.ok
        assert row["recovery_epochs"] > 0
        assert row["unrecovered_epochs"] == 0

    def test_sweep_checkpoint_round_trips_recovery(self, tmp_path):
        from repro.analysis.sweep import sweep

        faults = FaultSchedule(crashes={1: 2, 4: 2}, seed=7)
        path = str(tmp_path / "ckpt.jsonl")
        algorithms = {
            "selfstab-luby": (
                lambda network: SelfStabilizingLubyMIS(),
                lambda network: problems.MIS,
            )
        }

        def graphs(n):
            return gen.erdos_renyi_edges(n, 3.0, seed=n)

        first = sweep(
            "n", [20, 26], graphs, algorithms, trials=2, faults=faults,
            checkpoint=path, on_error="record",
        )
        resumed = sweep(
            "n", [20, 26], graphs, algorithms, trials=2, faults=faults,
            checkpoint=path, on_error="record",
        )
        assert first.ok and resumed.ok
        for a, b in zip(first, resumed):
            assert a.measurement.as_dict() == b.measurement.as_dict()
            assert a.measurement.recovery_epochs is not None
