"""Tests for the static network topology and identifier handling."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.local import ids
from repro.local.network import Network, canonical_edge


class TestCanonicalEdge:
    def test_orders_endpoints(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            canonical_edge(3, 3)


class TestNetworkConstruction:
    def test_basic_counts(self):
        net = Network.from_graph(nx.cycle_graph(10))
        assert net.n == 10
        assert net.m == 10
        assert net.max_degree() == 2
        assert net.min_degree() == 2

    def test_neighbors_are_sorted_and_symmetric(self):
        net = Network.from_graph(nx.gnp_random_graph(30, 0.2, seed=1))
        for v in net.vertices:
            assert list(net.neighbors(v)) == sorted(net.neighbors(v))
            for u in net.neighbors(v):
                assert v in net.neighbors(u)

    def test_edges_are_canonical_and_indexed(self):
        net = Network.from_graph(nx.gnp_random_graph(25, 0.2, seed=2))
        for i, (u, v) in enumerate(net.edges):
            assert u < v
            assert net.edge_index(u, v) == i
            assert net.edge_index(v, u) == i
            assert net.has_edge(u, v)

    def test_has_edge_negative(self):
        net = Network.from_graph(nx.path_graph(5))
        assert not net.has_edge(0, 4)
        assert not net.has_edge(2, 2)

    def test_incident_edges(self):
        net = Network.from_graph(nx.star_graph(4))
        centre_edges = net.incident_edges(0)
        assert len(centre_edges) == 4
        assert all(0 in e for e in centre_edges)

    def test_rejects_directed_graph(self):
        with pytest.raises(ValueError):
            Network(nx.DiGraph([(0, 1)]))

    def test_rejects_self_loops(self):
        g = nx.Graph()
        g.add_edge(0, 0)
        with pytest.raises(ValueError):
            Network(g)

    def test_from_edges(self):
        net = Network.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert net.n == 4
        assert net.m == 3

    def test_from_edges_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Network.from_edges(3, [(0, 5)])

    def test_non_integer_labels_are_relabelled(self):
        g = nx.Graph([("a", "b"), ("b", "c")])
        net = Network.from_graph(g)
        assert set(net.vertices) == {0, 1, 2}
        assert {net.original_label(v) for v in net.vertices} == {"a", "b", "c"}

    def test_to_networkx_round_trip(self):
        g = nx.gnp_random_graph(20, 0.3, seed=5)
        net = Network.from_graph(g)
        exported = net.to_networkx()
        assert exported.number_of_nodes() == g.number_of_nodes()
        assert exported.number_of_edges() == g.number_of_edges()

    def test_subnetwork_preserves_identifiers(self):
        net = Network.from_graph(nx.cycle_graph(8), id_scheme="adversarial")
        sub = net.subnetwork([0, 1, 2, 3])
        assert sub.n == 4
        original_ids = {net.identifier(v) for v in [0, 1, 2, 3]}
        assert set(sub.identifiers) == original_ids

    def test_subnetwork_preserves_identifiers_and_adjacency(self):
        g = nx.gnp_random_graph(40, 0.15, seed=9)
        net = Network.from_graph(g, id_scheme="permuted", rng=random.Random(3))
        kept = [3, 7, 8, 11, 12, 19, 23, 24, 30, 31, 38]
        sub = net.subnetwork(kept)

        # Identifier of kept vertex i (in sorted order) carries over.
        assert [sub.identifier(i) for i in range(sub.n)] == [net.identifier(v) for v in kept]

        # Adjacency matches the induced subgraph, edge for edge.
        index = {v: i for i, v in enumerate(kept)}
        expected = nx.Graph(g.subgraph(kept))
        expected_edges = sorted(
            tuple(sorted((index[u], index[v]))) for u, v in expected.edges()
        )
        assert list(sub.edges) == expected_edges
        for v in kept:
            expected_neighbors = sorted(index[u] for u in expected.neighbors(v))
            assert list(sub.neighbors(index[v])) == expected_neighbors

    def test_csr_arrays_describe_the_adjacency(self):
        net = Network.from_graph(nx.gnp_random_graph(25, 0.25, seed=4))
        indptr, indices = net.indptr, net.indices
        assert len(indptr) == net.n + 1
        assert len(indices) == 2 * net.m
        assert indptr[0] == 0 and indptr[net.n] == 2 * net.m
        for v in net.vertices:
            row = list(indices[indptr[v] : indptr[v + 1]])
            assert row == sorted(row) == list(net.neighbors(v))
            assert len(row) == net.degree(v)

    def test_cached_degree_statistics_match_adjacency(self):
        net = Network.from_graph(nx.gnp_random_graph(30, 0.2, seed=6))
        degrees = [net.degree(v) for v in net.vertices]
        assert net.max_degree() == max(degrees)
        assert net.min_degree() == min(degrees)
        assert net.id_bit_length() == max(int(i).bit_length() for i in net.identifiers)

    def test_empty_graph(self):
        net = Network.from_graph(nx.empty_graph(5))
        assert net.m == 0
        assert net.max_degree() == 0


class TestIdentifierSchemes:
    @pytest.mark.parametrize("scheme", ["sequential", "random", "permuted", "adversarial"])
    def test_schemes_give_unique_ids(self, scheme):
        net = Network.from_graph(
            nx.cycle_graph(20), id_scheme=scheme, rng=random.Random(1)
        )
        assert len(set(net.identifiers)) == 20

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            Network.from_graph(nx.cycle_graph(4), id_scheme="nope")

    def test_sequential_ids(self):
        assert ids.sequential_ids([7, 8, 9]) == {7: 0, 8: 1, 9: 2}

    def test_random_ids_fit_in_polynomial_space(self):
        vertices = list(range(50))
        assignment = ids.random_ids(vertices, random.Random(3))
        assert len(set(assignment.values())) == 50
        assert max(assignment.values()) < 8 * 50 * 50

    def test_permuted_ids_are_a_permutation(self):
        vertices = list(range(30))
        assignment = ids.permuted_ids(vertices, random.Random(4))
        assert sorted(assignment.values()) == vertices

    def test_adversarial_ids_spacing(self):
        assignment = ids.adversarial_interval_ids(list(range(5)), gap=100)
        assert sorted(assignment.values()) == [0, 100, 200, 300, 400]

    def test_adversarial_rejects_bad_gap(self):
        with pytest.raises(ValueError):
            ids.adversarial_interval_ids([0, 1], gap=0)

    def test_validate_ids_detects_duplicates(self):
        with pytest.raises(ValueError):
            ids.validate_ids({0: 1, 1: 1}, [0, 1])

    def test_validate_ids_detects_missing(self):
        with pytest.raises(ValueError):
            ids.validate_ids({0: 1}, [0, 1])

    def test_validate_ids_detects_negative(self):
        with pytest.raises(ValueError):
            ids.validate_ids({0: -1, 1: 2}, [0, 1])

    def test_id_bit_length(self):
        assert ids.id_bit_length({0: 0, 1: 255}) == 8
        assert ids.id_bit_length({}) == 0

    def test_with_identifiers(self):
        net = Network.from_graph(nx.path_graph(3))
        renamed = net.with_identifiers({0: 10, 1: 20, 2: 30})
        assert renamed.identifier(2) == 30
        assert renamed.m == net.m
