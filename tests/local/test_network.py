"""Tests for the static network topology and identifier handling."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.local import ids
from repro.local.network import Network, canonical_edge


class TestCanonicalEdge:
    def test_orders_endpoints(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            canonical_edge(3, 3)


class TestNetworkConstruction:
    def test_basic_counts(self):
        net = Network.from_graph(nx.cycle_graph(10))
        assert net.n == 10
        assert net.m == 10
        assert net.max_degree() == 2
        assert net.min_degree() == 2

    def test_neighbors_are_sorted_and_symmetric(self):
        net = Network.from_graph(nx.gnp_random_graph(30, 0.2, seed=1))
        for v in net.vertices:
            assert list(net.neighbors(v)) == sorted(net.neighbors(v))
            for u in net.neighbors(v):
                assert v in net.neighbors(u)

    def test_edges_are_canonical_and_indexed(self):
        net = Network.from_graph(nx.gnp_random_graph(25, 0.2, seed=2))
        for i, (u, v) in enumerate(net.edges):
            assert u < v
            assert net.edge_index(u, v) == i
            assert net.edge_index(v, u) == i
            assert net.has_edge(u, v)

    def test_has_edge_negative(self):
        net = Network.from_graph(nx.path_graph(5))
        assert not net.has_edge(0, 4)
        assert not net.has_edge(2, 2)

    def test_incident_edges(self):
        net = Network.from_graph(nx.star_graph(4))
        centre_edges = net.incident_edges(0)
        assert len(centre_edges) == 4
        assert all(0 in e for e in centre_edges)

    def test_rejects_directed_graph(self):
        with pytest.raises(ValueError):
            Network(nx.DiGraph([(0, 1)]))

    def test_rejects_self_loops(self):
        g = nx.Graph()
        g.add_edge(0, 0)
        with pytest.raises(ValueError):
            Network(g)

    def test_from_edges(self):
        net = Network.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert net.n == 4
        assert net.m == 3

    def test_from_edges_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Network.from_edges(3, [(0, 5)])

    def test_non_integer_labels_are_relabelled(self):
        g = nx.Graph([("a", "b"), ("b", "c")])
        net = Network.from_graph(g)
        assert set(net.vertices) == {0, 1, 2}
        assert {net.original_label(v) for v in net.vertices} == {"a", "b", "c"}

    def test_to_networkx_round_trip(self):
        g = nx.gnp_random_graph(20, 0.3, seed=5)
        net = Network.from_graph(g)
        exported = net.to_networkx()
        assert exported.number_of_nodes() == g.number_of_nodes()
        assert exported.number_of_edges() == g.number_of_edges()

    def test_subnetwork_preserves_identifiers(self):
        net = Network.from_graph(nx.cycle_graph(8), id_scheme="adversarial")
        sub = net.subnetwork([0, 1, 2, 3])
        assert sub.n == 4
        original_ids = {net.identifier(v) for v in [0, 1, 2, 3]}
        assert set(sub.identifiers) == original_ids

    def test_subnetwork_preserves_identifiers_and_adjacency(self):
        g = nx.gnp_random_graph(40, 0.15, seed=9)
        net = Network.from_graph(g, id_scheme="permuted", rng=random.Random(3))
        kept = [3, 7, 8, 11, 12, 19, 23, 24, 30, 31, 38]
        sub = net.subnetwork(kept)

        # Identifier of kept vertex i (in sorted order) carries over.
        assert [sub.identifier(i) for i in range(sub.n)] == [net.identifier(v) for v in kept]

        # Adjacency matches the induced subgraph, edge for edge.
        index = {v: i for i, v in enumerate(kept)}
        expected = nx.Graph(g.subgraph(kept))
        expected_edges = sorted(
            tuple(sorted((index[u], index[v]))) for u, v in expected.edges()
        )
        assert list(sub.edges) == expected_edges
        for v in kept:
            expected_neighbors = sorted(index[u] for u in expected.neighbors(v))
            assert list(sub.neighbors(index[v])) == expected_neighbors

    def test_csr_arrays_describe_the_adjacency(self):
        net = Network.from_graph(nx.gnp_random_graph(25, 0.25, seed=4))
        indptr, indices = net.indptr, net.indices
        assert len(indptr) == net.n + 1
        assert len(indices) == 2 * net.m
        assert indptr[0] == 0 and indptr[net.n] == 2 * net.m
        for v in net.vertices:
            row = list(indices[indptr[v] : indptr[v + 1]])
            assert row == sorted(row) == list(net.neighbors(v))
            assert len(row) == net.degree(v)

    def test_cached_degree_statistics_match_adjacency(self):
        net = Network.from_graph(nx.gnp_random_graph(30, 0.2, seed=6))
        degrees = [net.degree(v) for v in net.vertices]
        assert net.max_degree() == max(degrees)
        assert net.min_degree() == min(degrees)
        assert net.id_bit_length() == max(int(i).bit_length() for i in net.identifiers)

    def test_empty_graph(self):
        net = Network.from_graph(nx.empty_graph(5))
        assert net.m == 0
        assert net.max_degree() == 0


class TestIdentifierSchemes:
    @pytest.mark.parametrize("scheme", ["sequential", "random", "permuted", "adversarial"])
    def test_schemes_give_unique_ids(self, scheme):
        net = Network.from_graph(
            nx.cycle_graph(20), id_scheme=scheme, rng=random.Random(1)
        )
        assert len(set(net.identifiers)) == 20

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            Network.from_graph(nx.cycle_graph(4), id_scheme="nope")

    def test_sequential_ids(self):
        assert ids.sequential_ids([7, 8, 9]) == {7: 0, 8: 1, 9: 2}

    def test_random_ids_fit_in_polynomial_space(self):
        vertices = list(range(50))
        assignment = ids.random_ids(vertices, random.Random(3))
        assert len(set(assignment.values())) == 50
        assert max(assignment.values()) < 8 * 50 * 50

    def test_permuted_ids_are_a_permutation(self):
        vertices = list(range(30))
        assignment = ids.permuted_ids(vertices, random.Random(4))
        assert sorted(assignment.values()) == vertices

    def test_adversarial_ids_spacing(self):
        assignment = ids.adversarial_interval_ids(list(range(5)), gap=100)
        assert sorted(assignment.values()) == [0, 100, 200, 300, 400]

    def test_adversarial_rejects_bad_gap(self):
        with pytest.raises(ValueError):
            ids.adversarial_interval_ids([0, 1], gap=0)

    def test_validate_ids_detects_duplicates(self):
        with pytest.raises(ValueError):
            ids.validate_ids({0: 1, 1: 1}, [0, 1])

    def test_validate_ids_detects_missing(self):
        with pytest.raises(ValueError):
            ids.validate_ids({0: 1}, [0, 1])

    def test_validate_ids_detects_negative(self):
        with pytest.raises(ValueError):
            ids.validate_ids({0: -1, 1: 2}, [0, 1])

    def test_id_bit_length(self):
        assert ids.id_bit_length({0: 0, 1: 255}) == 8
        assert ids.id_bit_length({}) == 0

    def test_with_identifiers(self):
        net = Network.from_graph(nx.path_graph(3))
        renamed = net.with_identifiers({0: 10, 1: 20, 2: 30})
        assert renamed.identifier(2) == 30
        assert renamed.m == net.m


class TestFromEndpointArrays:
    """The vectorised numpy CSR construction path (Network.from_endpoint_arrays)."""

    def _assert_indistinguishable(self, a: Network, b: Network) -> None:
        np = pytest.importorskip("numpy")
        assert (a.n, a.m) == (b.n, b.m)
        assert a.edges == b.edges
        assert [a.neighbors(v) for v in a.vertices] == [b.neighbors(v) for v in b.vertices]
        assert a.identifiers == b.identifiers
        assert (a.max_degree(), a.min_degree()) == (b.max_degree(), b.min_degree())
        assert a.id_bit_length() == b.id_bit_length()
        assert np.array_equal(np.asarray(a.indptr), np.asarray(b.indptr))
        assert np.array_equal(np.asarray(a.indices), np.asarray(b.indices))
        ea, eb = a.edge_endpoints(), b.edge_endpoints()
        assert np.array_equal(ea[0], eb[0]) and np.array_equal(ea[1], eb[1])

    def test_matches_tuple_path_on_random_workload(self):
        from repro.graphs.generators import random_regular_edges

        n, edges = random_regular_edges(4, 200, seed=1)
        identifiers = ids.permuted_ids(list(range(n)), random.Random(7))
        tuple_net = Network.from_edges(n, edges, identifiers)
        array_net = Network.from_endpoint_arrays(
            n, [u for u, _ in edges], [v for _, v in edges], identifiers
        )
        self._assert_indistinguishable(tuple_net, array_net)

    def test_endpoint_orientation_is_free(self):
        swapped = Network.from_endpoint_arrays(4, [1, 3, 2], [0, 2, 1])
        assert swapped.edges == ((0, 1), (1, 2), (2, 3))

    def test_duplicate_edges_removed(self):
        net = Network.from_endpoint_arrays(3, [0, 1, 1, 0], [1, 0, 2, 1])
        assert net.m == 2
        assert net.edges == ((0, 1), (1, 2))

    def test_rows_and_edges_are_lazy_until_asked(self):
        net = Network.from_endpoint_arrays(4, [0, 1, 2], [1, 2, 3])
        assert net._rows is None and net._edges_cache is None
        # flat consumers never materialise them
        assert len(net.indices) == 2 * net.m
        assert net._rows is None and net._edges_cache is None
        # a per-node consumer derives them on demand, as plain-int tuples
        assert net.neighbors(1) == (0, 2)
        assert all(type(u) is int for u in net.neighbors(1))
        assert net.edges[0] == (0, 1)
        assert all(type(x) is int for x in net.edges[0])

    def test_self_loops_rejected_with_canonical_error(self):
        with pytest.raises(ValueError, match="self-loops"):
            Network.from_endpoint_arrays(3, [0, 1], [1, 1])

    def test_out_of_range_endpoints_rejected(self):
        with pytest.raises(ValueError, match="outside 0"):
            Network.from_endpoint_arrays(3, [0], [3])
        with pytest.raises(ValueError, match="outside 0"):
            Network.from_endpoint_arrays(3, [-1], [1])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            Network.from_endpoint_arrays(3, [0, 1], [1])

    def test_empty_and_edgeless_graphs(self):
        empty = Network.from_endpoint_arrays(0, [], [])
        assert empty.n == 0 and empty.m == 0 and empty.edges == ()
        edgeless = Network.from_endpoint_arrays(5, [], [])
        assert edgeless.m == 0
        assert edgeless.max_degree() == 0 and edgeless.min_degree() == 0
        assert [edgeless.neighbors(v) for v in edgeless.vertices] == [()] * 5

    def test_id_scheme_parity_with_from_edge_list(self):
        from repro.graphs.generators import cycle_edges

        n, edges = cycle_edges(40)
        arrays = cycle_edges(40, as_arrays=True)
        via_list = Network.from_edge_list(n, edges, id_scheme="permuted", rng=random.Random(3))
        via_arrays = Network.from_endpoint_arrays(
            n, arrays.src, arrays.dst, id_scheme="permuted", rng=random.Random(3)
        )
        self._assert_indistinguishable(via_list, via_arrays)

    def test_identifiers_and_id_scheme_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            Network.from_endpoint_arrays(
                3, [0], [1], identifiers={0: 0, 1: 1, 2: 2}, id_scheme="sequential"
            )

    def test_sequential_default_matches_explicit_sequential(self):
        default = Network.from_endpoint_arrays(4, [0, 1], [1, 2])
        explicit = Network.from_endpoint_arrays(
            4, [0, 1], [1, 2], identifiers=ids.sequential_ids(list(range(4)))
        )
        assert default.identifiers == explicit.identifiers == (0, 1, 2, 3)
        assert default.id_bit_length() == explicit.id_bit_length() == 2

    def test_from_edge_arrays_consumes_the_interchange(self):
        from repro.graphs.edgelist import EdgeArrays

        arrays = EdgeArrays(n=4, src=[0, 1, 2], dst=[1, 2, 3])
        net = Network.from_edge_arrays(arrays)
        assert net.edges == ((0, 1), (1, 2), (2, 3))
        assert net.identifiers == (0, 1, 2, 3)

    def test_with_identifiers_on_array_built_network(self):
        net = Network.from_endpoint_arrays(3, [0, 1], [1, 2])
        renamed = net.with_identifiers({0: 5, 1: 6, 2: 7})
        assert renamed.identifiers == (5, 6, 7)
        assert renamed.edges == net.edges

    def test_subnetwork_on_array_built_network(self):
        net = Network.from_endpoint_arrays(5, [0, 1, 2, 3], [1, 2, 3, 4])
        sub = net.subnetwork([1, 2, 3])
        assert sub.n == 3
        assert sub.edges == ((0, 1), (1, 2))
        assert sub.identifiers == (1, 2, 3)

    def test_original_labels_are_identity(self):
        net = Network.from_endpoint_arrays(3, [0], [1])
        assert net.original_label(2) == 2
        with pytest.raises(IndexError):
            net.original_label(3)

    def test_traces_identical_across_construction_paths(self):
        """Seed-for-seed trace identity: the acceptance invariant of the array path."""
        from repro.algorithms.mis.luby import LubyMIS
        from repro.core import problems
        from repro.graphs.generators import random_regular_edges
        from repro.local.runner import Runner

        n, edges = random_regular_edges(4, 120, seed=2)
        identifiers = ids.permuted_ids(list(range(n)), random.Random(9))
        tuple_net = Network.from_edges(n, edges, identifiers)
        array_net = Network.from_endpoint_arrays(
            n, [u for u, _ in edges], [v for _, v in edges], identifiers
        )
        runner = Runner(max_rounds=500)
        for seed in (0, 1):
            a = runner.run(LubyMIS(), tuple_net, problems.MIS, seed=seed)
            b = runner.run(LubyMIS(), array_net, problems.MIS, seed=seed)
            assert a.node_outputs == b.node_outputs
            assert a.node_commit_round == b.node_commit_round
            assert a.rounds == b.rounds
            assert a.total_messages == b.total_messages


class TestHotPathLaziness:
    """Regressions for the ISSUE-5 hot-path bugfixes: array-built networks
    must not materialise their lazy per-edge/per-row tuple views on the
    subnetwork or edge-index paths."""

    def _gnp_array_network(self, n=200, seed=3):
        from repro.graphs.generators import fast_gnp_edges

        arrays = fast_gnp_edges(n, 6.0 / (n - 1), seed=seed, as_arrays=True)
        return Network.from_endpoint_arrays(n, arrays.src, arrays.dst)

    def test_subnetwork_keeps_rows_lazy_on_array_built_networks(self):
        net = self._gnp_array_network()
        sub = net.subnetwork(range(0, net.n, 3))
        assert net._rows is None, "subnetwork materialised all adjacency rows"
        assert net._edges_cache is None
        assert sub.n == len(range(0, net.n, 3))

    def test_csr_subnetwork_matches_the_tuple_path(self):
        from repro.graphs.generators import erdos_renyi_edges

        n, edges = erdos_renyi_edges(60, 5.0, seed=4)
        identifiers = ids.permuted_ids(list(range(n)), random.Random(2))
        tuple_net = Network.from_edges(n, edges, identifiers)
        array_net = Network.from_endpoint_arrays(
            n, [u for u, _ in edges], [v for _, v in edges], identifiers
        )
        kept = [1, 4, 5, 9, 13, 14, 20, 21, 33, 40, 41, 55, 59]
        sub_tuple = tuple_net.subnetwork(kept)
        sub_array = array_net.subnetwork(kept)
        assert sub_array.n == sub_tuple.n
        assert sub_array.edges == sub_tuple.edges
        assert sub_array._adjacency == sub_tuple._adjacency
        assert sub_array.identifiers == sub_tuple.identifiers

    def test_csr_subnetwork_edge_cases(self):
        net = self._gnp_array_network(n=30)
        empty = net.subnetwork([])
        assert empty.n == 0 and empty.m == 0
        singleton = net.subnetwork([7])
        assert singleton.n == 1 and singleton.m == 0
        assert singleton.identifiers == (7,)
        with pytest.raises(IndexError):
            net.subnetwork([0, 30])

    def test_packed_edge_index_avoids_the_tuple_views(self):
        net = self._gnp_array_network()
        us, vs = net.edge_endpoints()
        u, v = int(us[0]), int(vs[0])
        assert net.has_edge(u, v) and net.has_edge(v, u)
        assert net.edge_index(u, v) == 0
        with pytest.raises(KeyError):
            net.edge_index(u, u + 1 if not net.has_edge(u, u + 1) else u + 2)
        # Resolving edge slots went through the packed int index: neither
        # the tuple edge view nor the tuple-keyed map was built.
        assert net._edges_cache is None
        assert net._edge_index is None

    def test_packed_and_tuple_edge_index_agree(self):
        net = Network.from_graph(nx.gnp_random_graph(40, 0.2, seed=1))
        packed = net._packed_edge_index()
        legacy = net._edge_index_map()
        assert len(packed) == len(legacy) == net.m
        for (u, v), slot in legacy.items():
            assert packed[u * net.n + v] == slot

    def test_out_of_range_lookups_do_not_alias_packed_keys(self):
        # n=5: the out-of-range pair (0, 7) packs to 0*5+7 == 1*5+2, the
        # key of the real edge (1, 2) — the lookup must range-check first.
        net = Network.from_edges(5, [(1, 2), (0, 3)])
        assert not net.has_edge(0, 7)
        assert not net.has_edge(-5, 3)
        with pytest.raises(KeyError):
            net.edge_index(0, 7)
        assert net.has_edge(1, 2) and net.edge_index(1, 2) == 1
