"""Regression tests for the unified ``strict=False`` round-cap contract.

Both engines must expose the *same* partial-trace semantics when an
execution is cut off at ``max_rounds``:

* ``completed`` is ``False`` and ``rounds`` equals the cap (the loop runs to
  the cap; it never exits early on an empty active set),
* the raw commit-round arrays are exactly the full run's commits restricted
  to rounds ``<= cap``, with uncommitted slots marked ``-1``,
* the censored completion times clamp uncommitted slots to ``rounds``,
* the output dicts omit uncommitted slots (never placeholder values),
* ``strict=True`` raises the shared :class:`repro.core.errors.
  RoundLimitExceeded` — one class, re-exported by ``repro.local.runner``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.matching.randomized import RandomizedMaximalMatching
from repro.algorithms.mis.luby import LubyMIS
from repro.core import problems
from repro.core.errors import RoundLimitExceeded
from repro.graphs import generators as gen
from repro.local import runner as runner_module
from repro.local.engine import ArrayEngine
from repro.local.network import Network
from repro.local.runner import Runner

CAPS = (0, 1, 2, 3, 4, 7, 8)


def cycle12() -> Network:
    return Network.from_edge_list(*gen.cycle_edges(12), id_scheme="permuted")


CASES = [
    ("luby", LubyMIS, problems.MIS),
    ("matching", RandomizedMaximalMatching, problems.MAXIMAL_MATCHING),
]


def commit_rounds(trace, problem) -> np.ndarray:
    raw = (
        trace.node_commit_rounds()
        if problem.labels_nodes
        else trace.edge_commit_rounds()
    )
    return np.frombuffer(raw, dtype=np.int64)


def completion_times(trace, problem):
    return (
        trace.node_completion_times()
        if problem.labels_nodes
        else trace.edge_completion_times()
    )


def outputs(trace, problem):
    return trace.node_outputs if problem.labels_nodes else trace.edge_outputs


def slot_keys(network, problem):
    return list(range(network.n)) if problem.labels_nodes else list(network.edges)


def engines_for(algorithm_factory, strict, cap):
    """(run callable, engine label) pairs covering both engines."""
    runner = Runner(strict=strict, max_rounds=cap)
    engine = ArrayEngine(strict=strict, max_rounds=cap)
    return [
        (lambda net, problem, seed: runner.run(algorithm_factory(), net, problem, seed=seed), "runner"),
        (
            lambda net, problem, seed: engine.run(
                algorithm_factory().as_array_algorithm(), net, problem, seed=seed
            ),
            "array",
        ),
    ]


class TestPartialTraces:
    @pytest.mark.parametrize("label,factory,problem", CASES, ids=[c[0] for c in CASES])
    def test_capped_traces_are_prefixes_of_the_full_run(self, label, factory, problem):
        net = cycle12()
        full = {
            "runner": Runner(max_rounds=20_000).run(factory(), net, problem, seed=5),
            "array": ArrayEngine(max_rounds=20_000).run(
                factory().as_array_algorithm(), net, problem, seed=5
            ),
        }
        for cap in CAPS:
            for run, engine in engines_for(factory, strict=False, cap=cap):
                trace = run(net, problem, 5)
                reference = commit_rounds(full[engine], problem)
                partial = commit_rounds(trace, problem)
                finished = cap >= full[engine].rounds
                assert trace.completed == finished
                assert trace.rounds == (full[engine].rounds if finished else cap)
                # Raw commit rounds: the full run's commits at rounds <= cap,
                # -1 everywhere else — identical rule on both engines.
                expected = np.where(
                    (reference >= 0) & (reference <= cap), reference, -1
                )
                assert (partial == expected).all(), (engine, cap)
                # Censored completion times clamp uncommitted slots to
                # `rounds` (the standard censoring convention of the
                # measurement layer).
                times = completion_times(trace, problem)
                assert times == [
                    int(r) if r >= 0 else trace.rounds for r in partial
                ], (engine, cap)
                # Output dicts omit exactly the uncommitted slots.
                out = outputs(trace, problem)
                keys = slot_keys(net, problem)
                assert set(out) == {
                    key for key, r in zip(keys, partial) if r >= 0
                }, (engine, cap)
                full_out = outputs(full[engine], problem)
                assert all(full_out[key] == value for key, value in out.items())

    @pytest.mark.parametrize("label,factory,problem", CASES, ids=[c[0] for c in CASES])
    def test_cap_zero_commits_nothing_on_a_cycle(self, label, factory, problem):
        net = cycle12()
        for run, engine in engines_for(factory, strict=False, cap=0):
            trace = run(net, problem, 5)
            assert not trace.completed
            assert trace.rounds == 0
            assert outputs(trace, problem) == {}
            assert (commit_rounds(trace, problem) == -1).all()


class TestStrictMode:
    def test_round_limit_exceeded_is_one_shared_class(self):
        assert runner_module.RoundLimitExceeded is RoundLimitExceeded

    @pytest.mark.parametrize("label,factory,problem", CASES, ids=[c[0] for c in CASES])
    def test_both_engines_raise_the_shared_class(self, label, factory, problem):
        net = cycle12()
        for run, engine in engines_for(factory, strict=True, cap=2):
            with pytest.raises(RoundLimitExceeded, match="did not finish"):
                run(net, problem, 5)
