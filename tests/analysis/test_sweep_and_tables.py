"""Tests for the sweep harness and table rendering used by the benchmarks."""

from __future__ import annotations

import networkx as nx

from repro.algorithms.mis import LubyMIS
from repro.algorithms.ruling_set import RandomizedTwoTwoRulingSet
from repro.analysis import format_sweep, format_table, network_from, sweep
from repro.core import problems


class TestSweep:
    def test_sweep_runs_all_combinations(self):
        points = sweep(
            parameter="n",
            values=[20, 40],
            graph_factory=lambda n: nx.gnp_random_graph(n, 0.15, seed=1),
            algorithms={
                "luby": (lambda net: LubyMIS(), lambda net: problems.MIS),
                "ruling": (lambda net: RandomizedTwoTwoRulingSet(), lambda net: problems.ruling_set(2, 2)),
            },
            trials=2,
            seed=0,
        )
        assert len(points) == 4
        assert {p.measurement.algorithm for p in points} == {"luby", "ruling"}
        assert {p.value for p in points} == {20, 40}
        for point in points:
            assert point.measurement.node_averaged <= point.measurement.worst_case

    def test_sweep_rows_contain_measurements(self):
        points = sweep(
            parameter="degree",
            values=[3],
            graph_factory=lambda d: nx.random_regular_graph(d, 20, seed=2),
            algorithms={"luby": (lambda net: LubyMIS(), lambda net: problems.MIS)},
            trials=1,
        )
        row = points[0].as_row()
        assert row["parameter"] == "degree" and row["value"] == 3
        assert "node_averaged" in row and "worst_case" in row

    def test_network_from_uses_permuted_ids(self):
        net = network_from(nx.path_graph(10), seed=3)
        assert sorted(net.identifiers) == list(range(10))

    def test_parallel_sweep_matches_serial_exactly(self):
        kwargs = dict(
            parameter="n",
            values=[15, 25, 35],
            graph_factory=lambda n: nx.gnp_random_graph(n, 0.2, seed=n),
            algorithms={
                "luby": (lambda net: LubyMIS(), lambda net: problems.MIS),
                "ruling": (
                    lambda net: RandomizedTwoTwoRulingSet(),
                    lambda net: problems.ruling_set(2, 2),
                ),
            },
            trials=2,
            seed=11,
        )
        serial = sweep(**kwargs)
        parallel = sweep(**kwargs, parallel=2)
        assert serial == parallel

    def test_parallel_flag_values_accept_serial_fallbacks(self):
        kwargs = dict(
            parameter="n",
            values=[12],
            graph_factory=lambda n: nx.cycle_graph(n),
            algorithms={"luby": (lambda net: LubyMIS(), lambda net: problems.MIS)},
            trials=1,
            seed=2,
        )
        baseline = sweep(**kwargs)
        for flag in (None, False, 1):
            assert sweep(**kwargs, parallel=flag) == baseline


class TestTables:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert format_table([]) == ""
        assert format_table([], title="t") == "t\n"

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_floats(self):
        rows = [{"x": 1.23456}]
        assert "1.235" in format_table(rows)

    def test_format_sweep_output(self):
        points = sweep(
            parameter="n",
            values=[15],
            graph_factory=lambda n: nx.cycle_graph(n),
            algorithms={"luby": (lambda net: LubyMIS(), lambda net: problems.MIS)},
            trials=1,
        )
        text = format_sweep(points, title="E0")
        assert "E0" in text and "luby" in text and "node_averaged" in text


class TestEdgeArraysWorkloads:
    """sweep/network_from accept EdgeArrays everywhere tuple pairs work."""

    def test_network_from_edge_arrays_equals_pair_and_graph_forms(self):
        from repro.graphs import generators as gen

        pair = gen.random_regular_edges(4, 60, seed=1)
        arrays = gen.random_regular_edges(4, 60, seed=1, as_arrays=True)
        graph = gen.random_regular_graph(4, 60, seed=1)
        from_pair = network_from(pair, seed=5)
        from_arrays = network_from(arrays, seed=5)
        from_graph = network_from(graph, seed=5)
        assert from_pair.edges == from_arrays.edges == from_graph.edges
        assert from_pair.identifiers == from_arrays.identifiers == from_graph.identifiers

    def test_sweep_identical_for_edge_arrays_and_tuple_factories(self):
        from repro.graphs import generators as gen

        algorithms = {"luby": (lambda net: LubyMIS(), lambda net: problems.MIS)}
        tuple_points = sweep(
            "n", [20, 30],
            lambda n: gen.cycle_edges(n),
            algorithms, trials=2, seed=3,
        )
        array_points = sweep(
            "n", [20, 30],
            lambda n: gen.cycle_edges(n, as_arrays=True),
            algorithms, trials=2, seed=3,
        )
        assert [p.measurement for p in tuple_points] == [
            p.measurement for p in array_points
        ]
