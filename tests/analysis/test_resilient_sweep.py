"""Tests for the crash-safe sweep layer (checkpointing, failure rows, lost
workers) in `repro.analysis.sweep`.

The invariant under test throughout: resilience must never change results.
A sweep that is checkpointed, interrupted and resumed, fanned across a pool,
or recovered from a SIGKILLed worker produces measurements identical to the
plain serial sweep, because every ``(value, algorithm, trial)`` cell derives
its seed from the same deterministic schedule.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sys
import time

import pytest

from repro.algorithms.mis.luby import LubyMIS
from repro.core import problems
from repro.core.errors import WorkerCrashed
from repro.core.experiment import trial_seed
from repro.graphs import generators as gen
from repro.local.faults import FaultSchedule

# ``repro.analysis.sweep`` the *module*: the package __init__ rebinds the
# attribute ``sweep`` to the function, so ``import repro.analysis.sweep as x``
# would hand back the function instead.
import repro.analysis.sweep  # noqa: F401  (loads the module into sys.modules)

sweepmod = sys.modules["repro.analysis.sweep"]
sweep = sweepmod.sweep


def luby_algorithms():
    return {"luby": (lambda net: LubyMIS(), lambda net: problems.MIS)}


def run_sweep(**overrides):
    settings = dict(
        parameter="n",
        values=[8, 10],
        graph_factory=gen.cycle_edges,
        algorithms=luby_algorithms(),
        trials=2,
        seed=3,
    )
    settings.update(overrides)
    return sweep(**settings)


@pytest.fixture
def row_hook(monkeypatch):
    """Install a checkpoint-row hook; returns the list of observed rows."""

    def install(callback):
        monkeypatch.setattr(sweepmod, "_test_hook", callback)

    return install


class TestResultShape:
    def test_resilient_serial_path_matches_the_fast_path(self):
        fast = run_sweep()
        resilient = run_sweep(on_error="record")
        assert resilient == fast  # SweepResult is list-compatible
        assert resilient.ok
        assert resilient.failures == []

    def test_single_cell_sweeps_stay_serial_even_when_parallel(self):
        # 1 cell fails the cells > 1 gate: no pool is spun up, results match.
        serial = run_sweep(values=[8], trials=1)
        parallel = run_sweep(values=[8], trials=1, parallel=2)
        assert parallel == serial


class TestCheckpointing:
    def test_full_run_resume_recomputes_nothing(self, tmp_path, row_hook):
        path = str(tmp_path / "sweep.jsonl")
        first = run_sweep(checkpoint=path)
        recomputed = []
        row_hook(recomputed.append)
        second = run_sweep(checkpoint=path)
        assert second == first
        assert recomputed == []

    def test_checkpoint_file_has_header_and_ok_rows(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        run_sweep(checkpoint=path)
        lines = [json.loads(line) for line in open(path, encoding="utf-8")]
        header, rows = lines[0], lines[1:]
        assert header["format"] == sweepmod.CHECKPOINT_FORMAT
        assert header["parameter"] == "n"
        assert header["algorithms"] == ["luby"]
        assert len(rows) == 2 * 2  # values x trials
        assert all(row["status"] == "ok" for row in rows)
        assert all(isinstance(row["node_times"], list) for row in rows)

    def test_interrupted_sweep_resumes_to_identical_results(self, tmp_path, row_hook):
        baseline = run_sweep()
        path = str(tmp_path / "sweep.jsonl")

        written = []

        def interrupt_after_two(row):
            written.append(row)
            if len(written) == 2:
                raise KeyboardInterrupt

        row_hook(interrupt_after_two)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(checkpoint=path)
        assert len(written) == 2

        row_hook(written.append)
        resumed = run_sweep(checkpoint=path)
        assert resumed == baseline
        # Only the two unfinished cells were recomputed.
        assert len(written) == 4

    def test_keyboard_interrupt_in_parallel_sweep_flushes_and_reraises(
        self, tmp_path, row_hook
    ):
        baseline = run_sweep()
        path = str(tmp_path / "sweep.jsonl")

        def interrupt_immediately(row):
            raise KeyboardInterrupt

        row_hook(interrupt_immediately)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(checkpoint=path, parallel=2)
        # The flushed journal holds the interrupting cell; resuming serially
        # from it reproduces the uninterrupted sweep.
        lines = open(path, encoding="utf-8").read().splitlines()
        assert len(lines) >= 2  # header + at least the recorded row
        row_hook(lambda row: None)
        resumed = run_sweep(checkpoint=path)
        assert resumed == baseline

    def test_checkpoint_of_a_different_sweep_is_rejected(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        run_sweep(checkpoint=path)
        with pytest.raises(ValueError, match="different sweep"):
            run_sweep(checkpoint=path, seed=4)

    def test_truncated_trailing_line_is_ignored(self, tmp_path):
        baseline = run_sweep()
        path = str(tmp_path / "sweep.jsonl")
        run_sweep(checkpoint=path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"status": "ok", "index": 1, "na')  # killed mid-write
        assert run_sweep(checkpoint=path) == baseline


class TestFailureRows:
    def test_record_converts_broken_cells_into_failure_rows(self):
        algorithms = dict(luby_algorithms())

        def broken_factory(net):
            raise RuntimeError("factory exploded")

        algorithms["broken"] = (broken_factory, lambda net: problems.MIS)
        result = run_sweep(algorithms=algorithms, on_error="record")
        assert not result.ok
        # The healthy algorithm still produced one point per value...
        assert [p.measurement.algorithm for p in result] == ["luby", "luby"]
        assert result == run_sweep()  # ...identical to a luby-only sweep.
        # ...and every broken cell became a classified, reproducible row.
        assert len(result.failures) == 2 * 2
        for failure in result.failures:
            assert failure.algorithm == "broken"
            assert failure.kind == "exception:RuntimeError"
            assert "factory exploded" in failure.message
        first = result.failures[0]
        assert first.seed == trial_seed(3 + 1000 * 0, first.trial)

    def test_raise_propagates_the_first_broken_cell(self):
        def broken_factory(net):
            raise RuntimeError("factory exploded")

        with pytest.raises(RuntimeError, match="factory exploded"):
            run_sweep(
                algorithms={"broken": (broken_factory, lambda net: problems.MIS)},
                on_error="raise",
            )

    def test_round_limit_overruns_are_recorded(self):
        result = run_sweep(values=[12], max_rounds=1, on_error="record")
        assert result == []
        assert len(result.failures) == 2
        assert all(f.kind == "round-limit" for f in result.failures)

    def test_failure_rows_checkpoint_and_are_retried_on_resume(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        result = run_sweep(values=[12], max_rounds=1, on_error="record", checkpoint=path)
        assert len(result.failures) == 2
        # The same sweep with a workable round budget retries the recorded
        # failures (only ok rows are skipped) and succeeds.
        healthy = run_sweep(values=[12], on_error="record", checkpoint=path)
        assert healthy.ok
        assert healthy == run_sweep(values=[12])


class TestCellTimeouts:
    def test_expired_cells_record_timeout_rows(self):
        def slow_factory(net):
            time.sleep(5.0)
            return LubyMIS()  # pragma: no cover - the deadline fires first

        result = run_sweep(
            values=[8],
            algorithms={"slow": (slow_factory, lambda net: problems.MIS)},
            cell_timeout=0.2,
            on_error="record",
        )
        assert result == []
        assert len(result.failures) == 2
        for failure in result.failures:
            assert failure.kind == "timeout"
            assert "wall-clock budget" in failure.message

    def test_generous_timeout_changes_nothing(self):
        assert run_sweep(cell_timeout=60.0) == run_sweep()


def _kill_if_pool_worker():
    if multiprocessing.parent_process() is not None:
        os.kill(os.getpid(), signal.SIGKILL)


class TestParallelResilience:
    def test_parallel_with_checkpoint_equals_serial(self, tmp_path, row_hook):
        serial = run_sweep()
        path = str(tmp_path / "sweep.jsonl")
        parallel = run_sweep(parallel=2, checkpoint=path)
        assert parallel == serial
        # Cross-path resume: the parallel-written journal seeds a serial
        # resume that recomputes nothing.
        recomputed = []
        row_hook(recomputed.append)
        resumed = run_sweep(checkpoint=path)
        assert resumed == serial
        assert recomputed == []

    def test_sigkilled_workers_are_detected_and_rerun_serially(self, monkeypatch):
        monkeypatch.setattr(sweepmod, "_DEFAULT_STALL_TIMEOUT", 2.0)

        def fragile_factory(net):
            _kill_if_pool_worker()  # every worker dies; the parent survives
            return LubyMIS()

        result = run_sweep(
            algorithms={"luby": (fragile_factory, lambda net: problems.MIS)},
            parallel=2,
        )
        assert result.ok
        assert result == run_sweep()  # serial rerun used the original seeds

    def test_worker_crash_with_failing_retry_records_rows(self, monkeypatch):
        monkeypatch.setattr(sweepmod, "_DEFAULT_STALL_TIMEOUT", 2.0)

        def doomed_factory(net):
            _kill_if_pool_worker()
            raise RuntimeError("still broken in the parent")

        result = run_sweep(
            values=[8],
            algorithms={"doomed": (doomed_factory, lambda net: problems.MIS)},
            parallel=2,
            on_error="record",
        )
        assert result == []
        assert len(result.failures) == 2
        for failure in result.failures:
            assert failure.kind == "worker-crashed"
            assert "worker was lost" in failure.message
            assert "still broken in the parent" in failure.message

    def test_worker_crash_with_failing_retry_raises_by_default(self, monkeypatch):
        monkeypatch.setattr(sweepmod, "_DEFAULT_STALL_TIMEOUT", 2.0)

        def doomed_factory(net):
            _kill_if_pool_worker()
            raise RuntimeError("still broken in the parent")

        with pytest.raises(WorkerCrashed, match="worker was lost"):
            run_sweep(
                values=[8],
                algorithms={"doomed": (doomed_factory, lambda net: problems.MIS)},
                parallel=2,
            )


class TestFaultedSweeps:
    def test_faulted_sweep_is_parallel_invariant(self):
        faults = FaultSchedule(crashes={0: 2, 3: 1})
        serial = run_sweep(faults=faults)
        parallel = run_sweep(faults=faults, parallel=2)
        assert parallel == serial

    def test_faulted_sweep_checkpoints_and_resumes(self, tmp_path, row_hook):
        faults = FaultSchedule(crashes={0: 2}, drop_rate=0.1, seed=6)
        baseline = run_sweep(faults=faults, validate=False)
        path = str(tmp_path / "sweep.jsonl")
        first = run_sweep(faults=faults, validate=False, checkpoint=path)
        assert first == baseline
        recomputed = []
        row_hook(recomputed.append)
        assert run_sweep(faults=faults, validate=False, checkpoint=path) == baseline
        assert recomputed == []
