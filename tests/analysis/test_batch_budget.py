"""Tests for the batch memory-budget override threaded through the stack.

``batch_budget_bytes`` reaches the array engine from every entry point —
``run_trials`` / ``evaluate`` / ``Experiment`` / ``sweep`` — and batch-size
invariance guarantees it is a pure throughput knob: results are identical
under every budget.  The chosen budget is recorded as provenance in the
sweep checkpoint header (and, one layer up, in the service result store).
"""

from __future__ import annotations

import sys

from repro.algorithms.mis.luby import LubyMIS
from repro.core import problems
from repro.core.experiment import Experiment, evaluate, run_trials, seed_schedule
from repro.graphs import generators as gen

import repro.analysis.sweep  # noqa: F401  (loads the module into sys.modules)

sweepmod = sys.modules["repro.analysis.sweep"]
sweep = sweepmod.sweep
network_from = sweepmod.network_from


def luby_algorithms():
    return {"luby": (lambda net: LubyMIS(), lambda net: problems.MIS)}


def cycle_network(n=12, seed=5):
    return network_from(gen.cycle_edges(n, as_arrays=True), seed=seed)


class TestRunTrialsBudget:
    def test_tiny_budget_matches_default(self):
        # A 1-byte budget degenerates to chunks of one trial; batch-size
        # invariance says the traces must still be identical.
        network = cycle_network()
        settings = dict(
            trials=4, seed=9, validate=True, engine="array"
        )
        default = run_trials(
            lambda: LubyMIS(), network, problems.MIS, **settings
        )
        tiny = run_trials(
            lambda: LubyMIS(), network, problems.MIS,
            batch_budget_bytes=1, **settings,
        )
        assert [dict(t.node_commit_round) for t in tiny] == (
            [dict(t.node_commit_round) for t in default]
        )
        assert [t.rounds for t in tiny] == [t.rounds for t in default]

    def test_evaluate_accepts_the_budget(self):
        network = cycle_network()
        default = evaluate(
            lambda: LubyMIS(), network, problems.MIS,
            trials=3, seed=2, engine="array",
        )
        tiny = evaluate(
            lambda: LubyMIS(), network, problems.MIS,
            trials=3, seed=2, engine="array", batch_budget_bytes=64,
        )
        assert tiny == default

    def test_experiment_accepts_the_budget(self):
        default = Experiment(
            problem=problems.MIS, algorithm=LubyMIS,
            graphs=cycle_network(), trials=3, seed=2, engine="array",
        ).run()
        tiny = Experiment(
            problem=problems.MIS, algorithm=LubyMIS,
            graphs=cycle_network(), trials=3, seed=2, engine="array",
            batch_budget_bytes=128,
        ).run()
        assert [r.measurement for r in tiny.runs] == (
            [r.measurement for r in default.runs]
        )


class TestSweepBudget:
    def sweep_settings(self, **overrides):
        settings = dict(
            parameter="n",
            values=[8, 10],
            graph_factory=gen.cycle_edges,
            algorithms=luby_algorithms(),
            trials=2,
            seed=3,
            engine="array",
        )
        settings.update(overrides)
        return settings

    def test_sweep_results_are_budget_invariant(self):
        default = sweep(**self.sweep_settings())
        tiny = sweep(**self.sweep_settings(), batch_budget_bytes=1)
        big = sweep(**self.sweep_settings(), batch_budget_bytes=1 << 30)
        assert tiny == default
        assert big == default

    def test_header_records_the_budget(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        sweep(**self.sweep_settings(), checkpoint=path, batch_budget_bytes=4096)
        header, rows = sweepmod.read_checkpoint(path)
        assert header["batch_budget"] == 4096
        assert len(rows) == 4

    def test_header_budget_is_provenance_not_identity(self, tmp_path):
        # A journal written under one budget resumes under another: the
        # budget is deliberately absent from the header-mismatch list.
        path = str(tmp_path / "journal.jsonl")

        class Stop(Exception):
            pass

        calls = []

        def hook(row):
            calls.append(row)
            if len(calls) == 2:
                raise Stop()

        sweepmod._test_hook = hook
        try:
            try:
                sweep(
                    **self.sweep_settings(),
                    checkpoint=path,
                    batch_budget_bytes=4096,
                )
            except Stop:
                pass
        finally:
            sweepmod._test_hook = None
        resumed = sweep(
            **self.sweep_settings(), checkpoint=path, batch_budget_bytes=1
        )
        assert resumed == sweep(**self.sweep_settings())


class TestSeedSchedule:
    def test_seed_schedule_is_the_sweep_convention(self):
        assert seed_schedule(3, 3) == [3, 4, 5]
        assert seed_schedule(1003, 2) == [1003, 1004]

    def test_schedule_matches_run_trials_traces(self):
        network = cycle_network()
        batch = run_trials(
            lambda: LubyMIS(), network, problems.MIS,
            trials=3, seed=7, engine="array",
        )
        singles = [
            run_trials(
                lambda: LubyMIS(), network, problems.MIS,
                trials=1, seed=s, engine="array",
            )[0]
            for s in seed_schedule(7, 3)
        ]
        assert [dict(t.node_commit_round) for t in batch] == (
            [dict(t.node_commit_round) for t in singles]
        )
        assert [t.rounds for t in batch] == [t.rounds for t in singles]
