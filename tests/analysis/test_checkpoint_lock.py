"""Tests for the checkpoint journal's single-writer guarantee.

Two concurrent sweeps pointed at one journal must not silently interleave
rows: the second writer gets a clean ``CheckpointLocked`` error.  The lock
must also die with its holder (flock) or be stealable (stale pid sidecar),
so a SIGKILLed writer never wedges the journal for the resuming retry.
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.algorithms.mis.luby import LubyMIS
from repro.core import problems
from repro.core.errors import CheckpointLocked, is_retryable
from repro.graphs import generators as gen

import repro.analysis.sweep  # noqa: F401  (loads the module into sys.modules)

sweepmod = sys.modules["repro.analysis.sweep"]
sweep = sweepmod.sweep


def luby_algorithms():
    return {"luby": (lambda net: LubyMIS(), lambda net: problems.MIS)}


def sweep_settings(**overrides):
    settings = dict(
        parameter="n",
        values=[8, 10],
        graph_factory=gen.cycle_edges,
        algorithms=luby_algorithms(),
        trials=2,
        seed=3,
    )
    settings.update(overrides)
    return settings


def sweep_spec(**overrides):
    """The internal spec dict `_Checkpoint` validates its header against."""
    settings = sweep_settings(**overrides)
    return {
        "parameter": settings["parameter"],
        "values": settings["values"],
        "algorithms": settings["algorithms"],
        "trials": settings["trials"],
        "seed": settings["seed"],
        "engine": "node",  # sweep()'s default, so headers agree on resume
        "batch_budget": None,
    }


class TestExclusiveWriter:
    def test_second_writer_is_rejected(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        first = sweepmod._Checkpoint(path, sweep_spec())
        try:
            with pytest.raises(CheckpointLocked, match="distinct checkpoint"):
                sweepmod._Checkpoint(path, sweep_spec())
        finally:
            first.close()

    def test_lock_is_released_on_close(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        sweepmod._Checkpoint(path, sweep_spec()).close()
        second = sweepmod._Checkpoint(path, sweep_spec())
        second.close()

    def test_concurrent_sweep_raises_cleanly(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        holder = sweepmod._Checkpoint(path, sweep_spec())
        try:
            with pytest.raises(CheckpointLocked):
                sweep(**sweep_settings(), checkpoint=path)
        finally:
            holder.close()
        # The journal was not corrupted: the held journal still resumes.
        result = sweep(**sweep_settings(), checkpoint=path)
        assert result == sweep(**sweep_settings())

    def test_checkpoint_locked_is_retryable(self):
        # The service retries a locked journal (the holder may be a dying
        # predecessor whose lock the kernel is about to drop).
        assert is_retryable(CheckpointLocked.kind)


@pytest.fixture
def sidecar_mode(monkeypatch):
    """Force the non-POSIX O_EXCL pid-sidecar fallback."""
    monkeypatch.setattr(sweepmod, "fcntl", None)


class TestSidecarFallback:
    def test_sidecar_excludes_live_writers(self, tmp_path, sidecar_mode):
        path = str(tmp_path / "journal.jsonl")
        first = sweepmod._Checkpoint(path, sweep_spec())
        try:
            assert os.path.exists(path + ".lock")
            with pytest.raises(CheckpointLocked, match="live writer"):
                sweepmod._Checkpoint(path, sweep_spec())
        finally:
            first.close()
        assert not os.path.exists(path + ".lock")

    def test_stale_sidecar_is_stolen(self, tmp_path, sidecar_mode):
        path = str(tmp_path / "journal.jsonl")
        first = sweepmod._Checkpoint(path, sweep_spec())
        first.close()
        # Simulate a SIGKILLed writer: plant a sidecar owned by a pid that
        # cannot be alive.
        with open(path + ".lock", "w", encoding="utf-8") as fh:
            fh.write("999999999")
        second = sweepmod._Checkpoint(path, sweep_spec())
        second.close()

    def test_unreadable_sidecar_is_treated_as_stale(self, tmp_path, sidecar_mode):
        path = str(tmp_path / "journal.jsonl")
        with open(path + ".lock", "w", encoding="utf-8") as fh:
            fh.write("not-a-pid")
        checkpoint = sweepmod._Checkpoint(path, sweep_spec())
        checkpoint.close()


class TestLockAndResume:
    def test_lock_does_not_break_interrupt_resume(self, tmp_path, monkeypatch):
        """Interrupt a checkpointed sweep, then resume under the lock."""
        path = str(tmp_path / "journal.jsonl")

        class Stop(Exception):
            pass

        rows = []

        def hook(row):
            rows.append(row)
            if len(rows) == 2:
                raise Stop()

        monkeypatch.setattr(sweepmod, "_test_hook", hook)
        with pytest.raises(Stop):
            sweep(**sweep_settings(), checkpoint=path)
        monkeypatch.setattr(sweepmod, "_test_hook", None)
        resumed = sweep(**sweep_settings(), checkpoint=path)
        assert resumed == sweep(**sweep_settings())
