"""Shared-memory parallel sweeps and trial-batched sweep cells.

Covers the contracts the parallel rework introduced:

* workers reassemble networks zero-copy from shared CSR segments, and the
  parent unlinks every segment when the sweep returns — including when a
  worker was SIGKILLed mid-task;
* multi-trial cells on the array engines run as one batched group per
  ``(value, algorithm)`` and still journal one row per trial, so checkpoints
  written by batched sweeps resume cell-exactly (including mid-cell);
* a parallel request on a platform without ``fork`` warns instead of
  silently degrading, and the checkpoint header records the effective
  parallelism (as provenance only — never mismatch-enforced).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sys
import warnings
from multiprocessing import shared_memory

import pytest

from repro.algorithms.mis.luby import LubyMIS
from repro.core import problems
from repro.graphs import generators as gen

import repro.analysis.sweep  # noqa: F401  (loads the module into sys.modules)

sweepmod = sys.modules["repro.analysis.sweep"]
sweep = sweepmod.sweep


def luby_algorithms():
    return {"luby": (lambda net: LubyMIS(), lambda net: problems.MIS)}


def run_sweep(**overrides):
    settings = dict(
        parameter="n",
        values=[8, 10],
        graph_factory=gen.cycle_edges,
        algorithms=luby_algorithms(),
        trials=3,
        seed=3,
        engine="auto",
    )
    settings.update(overrides)
    return sweep(**settings)


def assert_last_segments_unlinked():
    names = list(sweepmod._LAST_SEGMENT_NAMES)
    assert names, "parallel sweep should have exported shared segments"
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestSharedMemoryLifecycle:
    def test_parallel_sweep_matches_serial_and_unlinks_segments(self):
        serial = run_sweep()
        parallel = run_sweep(parallel=2)
        assert parallel == serial
        assert_last_segments_unlinked()

    def test_segments_are_unlinked_after_sigkilled_workers(self, monkeypatch):
        monkeypatch.setattr(sweepmod, "_DEFAULT_STALL_TIMEOUT", 2.0)

        def fragile_factory(net):
            if multiprocessing.parent_process() is not None:
                os.kill(os.getpid(), signal.SIGKILL)
            return LubyMIS()

        result = run_sweep(
            algorithms={"luby": (fragile_factory, lambda net: problems.MIS)},
            parallel=2,
        )
        assert result.ok
        assert result == run_sweep()  # the serial retry reused the seeds
        assert_last_segments_unlinked()

    def test_shared_network_reassembles_identically(self):
        # Round-trip one network through the export/attach pair and compare
        # against the original on every topology view the engines consume.
        spec = {
            "graph_factory": gen.cycle_edges,
            "values": [12],
            "seed": 3,
        }
        manifest, segments, networks = sweepmod._export_shared_networks(spec, [0])

        def compare() -> None:
            # Runs in its own frame so every view into the shared mapping is
            # dropped before the segments are closed below.
            monkey_prev = sweepmod._SHARED_MANIFEST
            sweepmod._SHARED_MANIFEST = manifest
            try:
                attached = sweepmod._attach_shared_network(0)
            finally:
                sweepmod._SHARED_MANIFEST = monkey_prev
            original = networks[0]
            assert attached is not None
            assert attached.n == original.n and attached.m == original.m
            assert attached.identifiers == original.identifiers
            assert list(attached.indptr) == list(original.indptr)
            assert list(attached.indices) == list(original.indices)
            ous, ovs = original.edge_endpoints()
            aus, avs = attached.edge_endpoints()
            assert list(aus) == list(ous) and list(avs) == list(ovs)
            assert attached.max_degree() == original.max_degree()
            assert attached.edges == original.edges

        try:
            compare()
        finally:
            for entry in manifest.values():
                handle = sweepmod._WORKER_SEGMENTS.pop(str(entry["name"]), None)
                if handle is not None:
                    try:
                        handle.close()
                    except BufferError:  # a view outlived the frame; leak, don't fail
                        pass
            for segment in segments:
                segment.unlink()
                segment.close()


class TestBatchedCells:
    def test_batched_checkpoint_resumes_cell_exactly(self, tmp_path):
        baseline = run_sweep()
        path = str(tmp_path / "sweep.jsonl")
        first = run_sweep(checkpoint=path)
        assert first == baseline
        lines = open(path, encoding="utf-8").read().splitlines()
        # One row per trial even though the cells ran batched.
        assert len(lines) == 1 + 2 * 3
        recomputed = []
        sweepmod_hook_prev = sweepmod._test_hook
        sweepmod._test_hook = recomputed.append
        try:
            resumed = run_sweep(checkpoint=path)
        finally:
            sweepmod._test_hook = sweepmod_hook_prev
        assert resumed == baseline
        assert recomputed == []

    def test_mid_cell_resume_reruns_only_missing_trials(self, tmp_path):
        baseline = run_sweep()
        full_path = str(tmp_path / "full.jsonl")
        run_sweep(checkpoint=full_path)
        lines = open(full_path, encoding="utf-8").read().splitlines()
        # Keep trials 0 and 2 of every cell: the remaining trial set {1} is
        # non-contiguous with nothing, exercising the split-run path.
        kept = [lines[0]] + [
            line for line in lines[1:] if json.loads(line)["trial"] != 1
        ]
        partial_path = str(tmp_path / "partial.jsonl")
        with open(partial_path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(kept) + "\n")
        resumed = run_sweep(checkpoint=partial_path)
        assert resumed == baseline
        parallel_path = str(tmp_path / "parallel.jsonl")
        with open(parallel_path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(kept) + "\n")
        assert run_sweep(checkpoint=parallel_path, parallel=2) == baseline

    def test_grouped_failures_still_attribute_per_trial(self):
        def broken_factory(net):
            raise RuntimeError("factory exploded")

        result = run_sweep(
            algorithms={"broken": (broken_factory, lambda net: problems.MIS)},
            on_error="record",
        )
        assert result == []
        assert len(result.failures) == 2 * 3  # values x trials
        trials = sorted(f.trial for f in result.failures if f.value == 8)
        assert trials == [0, 1, 2]
        assert all(f.kind == "exception:RuntimeError" for f in result.failures)


class TestParallelProvenance:
    def test_fork_unavailable_warns_and_runs_serially(self, monkeypatch):
        monkeypatch.setattr(sweepmod, "_fork_available", lambda: False)
        with pytest.warns(RuntimeWarning, match="fork"):
            degraded = run_sweep(parallel=2)
        assert degraded == run_sweep()

    def test_serial_sweeps_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_sweep()

    def test_header_records_effective_parallelism(self, tmp_path, monkeypatch):
        parallel_path = str(tmp_path / "parallel.jsonl")
        run_sweep(parallel=2, checkpoint=parallel_path)
        header = json.loads(open(parallel_path, encoding="utf-8").readline())
        assert header["parallel"] is True

        serial_path = str(tmp_path / "serial.jsonl")
        run_sweep(checkpoint=serial_path)
        assert json.loads(open(serial_path, encoding="utf-8").readline())[
            "parallel"
        ] is False

        # Degraded parallel runs record the truth, not the request.
        monkeypatch.setattr(sweepmod, "_fork_available", lambda: False)
        degraded_path = str(tmp_path / "degraded.jsonl")
        with pytest.warns(RuntimeWarning):
            run_sweep(parallel=2, checkpoint=degraded_path)
        assert json.loads(open(degraded_path, encoding="utf-8").readline())[
            "parallel"
        ] is False

    def test_parallel_flag_is_not_mismatch_enforced(self, tmp_path):
        # A journal written parallel resumes serially (and vice versa): the
        # flag is provenance, not identity.
        path = str(tmp_path / "sweep.jsonl")
        first = run_sweep(parallel=2, checkpoint=path)
        assert run_sweep(checkpoint=path) == first

    def test_legacy_headers_without_the_flag_still_load(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        first = run_sweep(checkpoint=path)
        lines = open(path, encoding="utf-8").read().splitlines()
        header = json.loads(lines[0])
        del header["parallel"]
        lines[0] = json.dumps(header, sort_keys=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        assert run_sweep(checkpoint=path) == first


class TestExportErrorPath:
    # The orphaned segment object is collected with a CSR view still live
    # (the raising frame survives in the traceback); its __del__ close()
    # then raises BufferError.  Expected here: the unlink is the contract.
    @pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")
    def test_segments_created_before_a_failure_are_unlinked(self, monkeypatch):
        # Regression (REP005): an exception mid-export used to leak every
        # segment already created — the caller only unlinks segments it
        # *received*, and the raising call returned nothing.
        spec = {"graph_factory": gen.cycle_edges, "values": [12, 14], "seed": 3}
        created = []
        real_shm = shared_memory.SharedMemory

        def recording_shm(*args, **kwargs):
            segment = real_shm(*args, **kwargs)
            if kwargs.get("create"):
                created.append(segment.name)
            return segment

        calls = {"n": 0}
        real_arrays = sweepmod._network_csr_arrays

        def failing_arrays(network):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("export broke mid-loop")
            return real_arrays(network)

        monkeypatch.setattr(sweepmod.shared_memory, "SharedMemory", recording_shm)
        monkeypatch.setattr(sweepmod, "_network_csr_arrays", failing_arrays)
        with pytest.raises(RuntimeError, match="mid-loop"):
            sweepmod._export_shared_networks(spec, [0, 1])

        assert len(created) == 1  # the first value's segment was live...
        for name in created:  # ...and the error path reclaimed it
            with pytest.raises(FileNotFoundError):
                real_shm(name=name)
