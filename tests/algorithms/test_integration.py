"""Cross-cutting integration and property-based tests over the whole stack.

These tests exercise several packages together: graph generators feed the
simulator, multiple algorithms solve related problems on the same network,
and the structural identities the paper leans on (maximal matchings are MIS
of the line graph; an MIS of G^2 is a (3,2)-ruling set of G; every problem's
averaged complexity respects Definition 1's ordering) are checked end to end.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.matching import RandomizedMaximalMatching
from repro.algorithms.mis import LocalMinimumMIS, LubyMIS, sequential_greedy_mis
from repro.algorithms.ruling_set import RandomizedTwoTwoRulingSet
from repro.core import problems
from repro.core.metrics import measure
from repro.core.problems import is_maximal_independent_set, is_ruling_set
from repro.graphs.transforms import line_graph, power_graph
from repro.local.network import Network
from repro.local.runner import Runner


def _network(graph: nx.Graph, seed: int = 0) -> Network:
    return Network.from_graph(graph, id_scheme="permuted", rng=random.Random(seed))


class TestStructuralIdentities:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_simulated_matching_is_mis_of_line_graph(self, runner, seed):
        """Section 1.1: a maximal matching of G is exactly an MIS of its line graph."""
        g = nx.gnp_random_graph(30, 0.15, seed=seed)
        net = _network(g, seed=seed)
        trace = runner.run(RandomizedMaximalMatching(), net, problems.MAXIMAL_MATCHING, seed=seed)
        matching = set(trace.selected_edges())
        h, vertex_to_edge = line_graph(g)
        selected = {i: vertex_to_edge[i] in matching for i in h.nodes()}
        assert is_maximal_independent_set(h, selected)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_mis_of_square_graph_is_32_ruling_set(self, seed):
        """An MIS of G² is independent at distance... ≥ 2 in G² (so ≥ 1 in G) and dominates within 2."""
        g = nx.gnp_random_graph(40, 0.1, seed=seed)
        square = power_graph(g, 2)
        mis = sequential_greedy_mis(square)
        selected = {v: v in mis for v in g.nodes()}
        # Members are non-adjacent in G² hence at distance ≥ 3 in G; every node
        # has an MIS member within distance 2 in G.
        assert is_ruling_set(g, selected, alpha=3, beta=2)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mis_is_always_a_ruling_set(self, runner, seed):
        g = nx.random_regular_graph(4, 40, seed=seed)
        net = _network(g, seed=seed)
        trace = runner.run(LubyMIS(), net, problems.MIS, seed=seed)
        selected = {v: bool(trace.node_outputs[v]) for v in net.vertices}
        assert is_ruling_set(g, selected, alpha=2, beta=1)


class TestDefinitionOneOrdering:
    @pytest.mark.parametrize(
        "factory,problem_factory",
        [
            (LubyMIS, lambda net: problems.MIS),
            (LocalMinimumMIS, lambda net: problems.MIS),
            (RandomizedTwoTwoRulingSet, lambda net: problems.ruling_set(2, 2)),
            (RandomizedMaximalMatching, lambda net: problems.MAXIMAL_MATCHING),
        ],
    )
    def test_averages_never_exceed_worst_case(self, runner, factory, problem_factory):
        g = nx.gnp_random_graph(50, 0.12, seed=3)
        net = _network(g, seed=3)
        trace = runner.run(factory(), net, problem_factory(net), seed=1)
        m = measure(trace)
        assert m.node_averaged <= m.worst_case + 1e-9
        assert m.edge_averaged <= m.worst_case + 1e-9
        assert m.node_expected <= m.worst_case + 1e-9

    def test_node_problem_edge_average_at_least_node_average(self, runner):
        """For node-labelled problems edges wait for both endpoints, so AVG_E ≥ AVG_V
        can fail only through averaging artefacts on isolated nodes; on connected
        graphs it holds."""
        g = nx.random_regular_graph(3, 40, seed=4)
        net = _network(g, seed=4)
        trace = runner.run(LubyMIS(), net, problems.MIS, seed=2)
        m = measure(trace)
        assert m.edge_averaged >= m.node_averaged - 1e-9

    def test_edge_problem_node_average_at_least_edge_average(self, runner):
        g = nx.random_regular_graph(3, 40, seed=5)
        net = _network(g, seed=5)
        trace = runner.run(RandomizedMaximalMatching(), net, problems.MAXIMAL_MATCHING, seed=2)
        m = measure(trace)
        assert m.node_averaged >= m.edge_averaged - 1e-9


class TestRandomWorkloads:
    @given(
        n=st.integers(min_value=5, max_value=45),
        p=st.floats(min_value=0.05, max_value=0.3),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_luby_mis_valid_on_random_graphs(self, n, p, seed):
        g = nx.gnp_random_graph(n, p, seed=seed)
        net = _network(g, seed=seed)
        trace = Runner(max_rounds=5000).run(LubyMIS(), net, problems.MIS, seed=seed)
        assert trace.validate()

    @given(
        n=st.integers(min_value=5, max_value=40),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_matching_valid_on_random_trees(self, n, seed):
        g = nx.from_prufer_sequence([random.Random(seed).randrange(n) for _ in range(n - 2)]) if n > 2 else nx.path_graph(n)
        net = _network(g, seed=seed)
        trace = Runner(max_rounds=5000).run(
            RandomizedMaximalMatching(), net, problems.MAXIMAL_MATCHING, seed=seed
        )
        assert trace.validate()

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_ruling_set_valid_on_random_regular_graphs(self, seed):
        g = nx.random_regular_graph(4, 30, seed=seed)
        net = _network(g, seed=seed)
        trace = Runner(max_rounds=5000).run(
            RandomizedTwoTwoRulingSet(), net, problems.ruling_set(2, 2), seed=seed
        )
        assert trace.validate()
