"""Tests for the colouring algorithms and Cole–Vishkin primitives."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.coloring import (
    FINAL_COLOR_BOUND,
    RandomizedColoring,
    colors_after_step,
    cv_rounds_needed,
    cv_step,
)
from repro.core import problems
from repro.core.experiment import run_trials
from repro.core.metrics import node_averaged_complexity

GRAPH_NAMES = ["cycle", "path", "star", "grid", "gnp", "regular4", "tree", "isolated"]


class TestRandomizedColoring:
    @pytest.mark.parametrize("graph_name", GRAPH_NAMES)
    def test_produces_proper_coloring(self, graph_name, small_graphs, runner, network_factory):
        graph = small_graphs[graph_name]
        net = network_factory(graph, seed=1)
        problem = problems.coloring(net.max_degree() + 1)
        trace = runner.run(RandomizedColoring(), net, problem, seed=2)
        assert trace.validate(), trace.validate().reason

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_valid_across_seeds(self, seed, runner, network_factory):
        net = network_factory(nx.gnp_random_graph(60, 0.1, seed=5), seed=2)
        problem = problems.coloring(net.max_degree() + 1)
        trace = runner.run(RandomizedColoring(), net, problem, seed=seed)
        assert trace.validate()

    def test_uses_degree_plus_one_palette(self, runner, network_factory):
        net = network_factory(nx.star_graph(10), seed=3)
        trace = runner.run(RandomizedColoring(), net, problems.coloring(11), seed=0)
        # Leaves have degree 1 so their colours are 0 or 1.
        for leaf in range(1, 11):
            assert trace.node_outputs[leaf] in (0, 1)

    def test_section12_node_average_is_constant(self, runner, network_factory):
        """Section 1.2: random-colour (Δ+1)-colouring has O(1) node-averaged complexity."""
        averages = []
        for degree in (4, 12):
            net = network_factory(nx.random_regular_graph(degree, 60, seed=6), seed=4)
            traces = run_trials(
                RandomizedColoring, net, problems.coloring(degree + 1),
                trials=3, seed=0, runner=runner,
            )
            averages.append(node_averaged_complexity(traces))
        assert max(averages) <= 8.0


class TestColeVishkin:
    def test_single_step_example(self):
        # own=0b0110, parent=0b0100 differ in bit 1; bit 1 of own is 1 -> colour 3.
        assert cv_step(0b0110, 0b0100) == 3

    def test_step_requires_distinct_colors(self):
        with pytest.raises(ValueError):
            cv_step(5, 5)

    def test_step_rejects_negative(self):
        with pytest.raises(ValueError):
            cv_step(-1, 2)

    @given(st.integers(min_value=0, max_value=2**20), st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=100, deadline=None)
    def test_step_preserves_properness(self, a, b):
        """If two adjacent colours differ, they still differ after one step."""
        if a == b:
            return
        # Simulate parent-child relation both ways: child uses the parent's
        # colour; the parent itself steps against some third colour.
        child = cv_step(a, b)
        parent = cv_step(b, a)
        assert child != parent

    @given(st.integers(min_value=1, max_value=2**30))
    @settings(max_examples=100, deadline=None)
    def test_step_shrinks_large_colors(self, color):
        other = color ^ 1
        new = cv_step(color, other)
        assert new <= 2 * max(1, color.bit_length() - 1) + 1

    def test_colors_after_step_bound(self):
        assert colors_after_step(64) <= 8
        assert colors_after_step(8) <= 5
        assert colors_after_step(1) == 1

    @pytest.mark.parametrize("bits, max_rounds", [(1, 0), (3, 0), (8, 4), (16, 4), (64, 5), (1024, 6)])
    def test_schedule_length_is_log_star_like(self, bits, max_rounds):
        assert cv_rounds_needed(bits) <= max_rounds

    @given(st.integers(min_value=1, max_value=4096))
    @settings(max_examples=60, deadline=None)
    def test_schedule_reaches_constant_palette(self, bits):
        """Iterating the per-step bound for the scheduled number of rounds ends < 8."""
        rounds = cv_rounds_needed(bits)
        current = bits
        for _ in range(rounds):
            current = colors_after_step(current)
        assert 2**current >= 1
        assert current <= 3 or rounds == 0
        if bits <= 3:
            assert rounds == 0
        else:
            assert (1 << current) <= 2 * FINAL_COLOR_BOUND

    def test_chain_reduction_end_to_end(self):
        """Reduce colours along a long path and confirm properness and palette size."""
        n = 200
        colors = {v: v * 37 + 11 for v in range(n)}  # distinct initial colours
        rounds = cv_rounds_needed(max(colors.values()).bit_length())
        for _ in range(rounds):
            new_colors = {}
            for v in range(n):
                parent = v + 1 if v + 1 < n else None
                parent_color = colors[parent] if parent is not None else colors[v] ^ 1
                new_colors[v] = cv_step(colors[v], parent_color)
            colors = new_colors
        for v in range(n - 1):
            assert colors[v] != colors[v + 1]
        assert max(colors.values()) < FINAL_COLOR_BOUND
